//! The discrete-event queue.
//!
//! `EventQueue<W, E>` is a deterministic, single-threaded calendar over a
//! world state `W` and a typed event payload `E`. Hot layers post plain
//! `E` values with [`EventQueue::post_at`]/[`EventQueue::post_in`] — no
//! per-event heap allocation — and the world routes them through its
//! [`Dispatch`] implementation. Cold paths (tests, one-shot experiment
//! setup, periodic audits) may still schedule boxed closures via
//! [`EventQueue::schedule_at`] and friends; both kinds share one sequence
//! counter, so their interleaving is exactly the scheduling order.
//!
//! Two events at the same instant fire in scheduling order (FIFO), which —
//! together with integer [`SimTime`] — makes every run bit-reproducible for
//! a given seed.
//!
//! # Implementation: a bucketed timer wheel
//!
//! Pending events live in one of three places, partitioned by time:
//!
//! * the **active heap** — events inside the cursor slot (the current
//!   [`SLOT_WIDTH`] window), kept as a small binary heap ordered by
//!   `(time, seq)`;
//! * the **wheel** — [`SLOTS`] buckets of [`SLOT_WIDTH`] nanoseconds each
//!   (≈ 33.5 ms horizon), unordered within a bucket (ordering is imposed
//!   when the cursor reaches the bucket and heapifies it), with a bitmap
//!   for constant-time empty-slot skipping;
//! * the **overflow map** — a `BTreeMap` keyed by `(time, seq)` for events
//!   beyond the horizon, drained into the wheel as the cursor advances.
//!
//! Determinism argument: global execution order is exactly ascending
//! `(time, seq)`. The wheel partitions events by time window, so any event
//! in a later slot is strictly later than every event in an earlier slot;
//! within the cursor slot the active heap orders by `(time, seq)`; events
//! scheduled mid-drain into the current window join the active heap and
//! sort by the same key. This reproduces the total order of a single
//! global priority queue while touching only O(1) buckets per event.
//!
//! Cancellation is **eager**: [`EventQueue::cancel`] locates the entry via
//! its handle (which carries the scheduled time) and removes it on the
//! spot, so cancelled-but-unpopped entries never accumulate.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// log2 of the wheel slot width: slots are 2^13 ns = 8.192 µs wide.
const SLOT_BITS: u32 = 13;
/// Width of one wheel slot in nanoseconds.
const SLOT_WIDTH: u64 = 1 << SLOT_BITS;
/// Number of wheel slots (must be a power of two).
const SLOTS: usize = 4096;
/// Nanoseconds covered by the whole wheel (≈ 33.5 ms).
const HORIZON: u64 = (SLOTS as u64) << SLOT_BITS;
/// Words in the slot-occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// A boxed event handler: consumes itself, mutating the world and queue.
///
/// The closure form of scheduling. Kept for cold paths — experiment setup,
/// periodic audits, tests — where capturing environment beats defining an
/// event variant. Hot layers use typed events via [`EventQueue::post_at`].
pub type EventFn<W, E = NoEvent> = Box<dyn FnOnce(&mut W, &mut EventQueue<W, E>)>;

/// The uninhabited default event type: a queue over `NoEvent` is
/// closure-only, and every world trivially dispatches it (there are no
/// values to dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoEvent {}

/// How a world routes typed events to their handlers.
///
/// Implementations are a match over the event enum calling plain handler
/// functions — the typed replacement for allocating one boxed closure per
/// event. Every world dispatches [`NoEvent`] for free via a blanket impl,
/// so closure-only worlds (`EventQueue<W>` with the default `E`) need no
/// code at all.
pub trait Dispatch<E>: Sized {
    /// Handle one event. Runs with the queue clock at the event's instant.
    fn dispatch(&mut self, q: &mut EventQueue<Self, E>, ev: E);
}

impl<W> Dispatch<NoEvent> for W {
    fn dispatch(&mut self, _q: &mut EventQueue<Self, NoEvent>, ev: NoEvent) {
        match ev {}
    }
}

/// Handle to a scheduled event, usable for cancellation. Carries the
/// scheduled instant so cancellation can locate the entry's bucket
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    seq: u64,
    time: u64,
}

impl EventHandle {
    /// The handle's `(seq, time_ns)` pair, for checkpoint serialization.
    pub fn ckpt_parts(&self) -> (u64, u64) {
        (self.seq, self.time)
    }

    /// Rebuild a handle from checkpointed parts. Only meaningful for a seq
    /// that [`EventQueue::ckpt_restore`] re-inserted at the same time.
    pub fn from_ckpt_parts(seq: u64, time: u64) -> EventHandle {
        EventHandle { seq, time }
    }
}

enum Payload<W, E> {
    Typed(E),
    Boxed(EventFn<W, E>),
}

struct Entry<W, E> {
    time: u64,
    seq: u64,
    payload: Payload<W, E>,
}

impl<W, E> PartialEq for Entry<W, E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W, E> Eq for Entry<W, E> {}
impl<W, E> PartialOrd for Entry<W, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W, E> Ord for Entry<W, E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event calendar over world state `W` with typed
/// event payload `E` (default: closure-only, see [`NoEvent`]).
pub struct EventQueue<W, E = NoEvent> {
    /// Cursor-slot events, ordered by `(time, seq)`.
    active: BinaryHeap<Entry<W, E>>,
    /// The wheel buckets; the cursor slot's bucket is always empty (its
    /// contents live in `active`).
    slots: Vec<Vec<Entry<W, E>>>,
    /// Bit `i` set iff `slots[i]` is non-empty.
    occupancy: [u64; WORDS],
    /// Slot-aligned start of the cursor slot, nanoseconds.
    wheel_start: u64,
    /// Entries across all wheel buckets (excluding `active` and overflow).
    wheel_len: usize,
    /// Events beyond the wheel horizon, keyed by `(time, seq)`.
    overflow: BTreeMap<(u64, u64), Payload<W, E>>,
    /// Spare bucket swapped with the cursor slot on each advance, so bucket
    /// capacity is recycled instead of reallocated once per drained slot.
    bucket_scratch: Vec<Entry<W, E>>,
    now: SimTime,
    next_seq: u64,
    executed: u64,
}

impl<W, E> Default for EventQueue<W, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W, E> EventQueue<W, E> {
    /// An empty queue at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            active: BinaryHeap::new(),
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            occupancy: [0; WORDS],
            wheel_start: 0,
            wheel_len: 0,
            overflow: BTreeMap::new(),
            bucket_scratch: Vec::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.wheel_len + self.active.len() + self.overflow.len()
    }

    /// Entries physically retained by the queue. Cancellation reclaims
    /// storage eagerly, so this always equals [`EventQueue::pending`];
    /// the leak-regression suite asserts on it so a reintroduced
    /// tombstone scheme (cancelled entries left in place, subtracted from
    /// `pending`) cannot hide.
    pub fn stored(&self) -> usize {
        self.wheel_len + self.active.len() + self.overflow.len()
    }

    #[inline]
    fn insert(&mut self, at: SimTime, payload: Payload<W, E>) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let time = at.as_nanos();
        if time < self.wheel_start.saturating_add(SLOT_WIDTH) {
            self.active.push(Entry { time, seq, payload });
        } else if time < self.wheel_start.saturating_add(HORIZON) {
            let idx = ((time >> SLOT_BITS) as usize) & (SLOTS - 1);
            self.slots[idx].push(Entry { time, seq, payload });
            self.occupancy[idx >> 6] |= 1 << (idx & 63);
            self.wheel_len += 1;
        } else {
            self.overflow.insert((time, seq), payload);
        }
        EventHandle { seq, time }
    }

    /// Post a typed event at the absolute instant `at` — the zero-allocation
    /// hot path. The world's [`Dispatch`] impl routes it when it fires.
    /// Panics if `at` is in the past.
    pub fn post_at(&mut self, at: SimTime, ev: E) -> EventHandle {
        self.insert(at, Payload::Typed(ev))
    }

    /// Post a typed event after a relative delay.
    pub fn post_in(&mut self, delay: SimDuration, ev: E) -> EventHandle {
        self.post_at(self.now + delay, ev)
    }

    /// Schedule closure `f` at the absolute instant `at`. Panics if `at` is
    /// in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut EventQueue<W, E>) + 'static,
    ) -> EventHandle {
        self.insert(at, Payload::Boxed(Box::new(f)))
    }

    /// Schedule closure `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut EventQueue<W, E>) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule a repeating event: `f` fires first at `first`, then every
    /// `period` thereafter, until the run horizon is reached or the world
    /// stops the simulation. Returns the handle of the *first* firing only;
    /// stopping a repetition chain is done from inside `f` by returning
    /// control — use [`EventQueue::schedule_repeating_while`] for a
    /// self-terminating variant.
    pub fn schedule_repeating(
        &mut self,
        first: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut EventQueue<W, E>) + 'static,
    ) -> EventHandle {
        self.schedule_repeating_while(first, period, f, |_| true)
    }

    /// Like [`EventQueue::schedule_repeating`] but re-arms only while
    /// `keep_going(world)` holds after each firing.
    pub fn schedule_repeating_while(
        &mut self,
        first: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut EventQueue<W, E>) + 'static,
        keep_going: impl Fn(&W) -> bool + 'static,
    ) -> EventHandle {
        assert!(!period.is_zero(), "zero-period repeating event");
        fn arm<W, E, F, K>(
            q: &mut EventQueue<W, E>,
            at: SimTime,
            period: SimDuration,
            mut f: F,
            keep: K,
        ) -> EventHandle
        where
            F: FnMut(&mut W, &mut EventQueue<W, E>) + 'static,
            K: Fn(&W) -> bool + 'static,
        {
            q.schedule_at(at, move |w, q| {
                f(w, q);
                if keep(w) {
                    arm(q, q.now() + period, period, f, keep);
                }
            })
        }
        arm(self, first, period, f, keep_going)
    }

    /// Cancel a previously scheduled event, reclaiming its slot
    /// immediately. Cancelling an event that already fired (or was already
    /// cancelled) is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        if h.time >= self.wheel_start.saturating_add(HORIZON) {
            self.overflow.remove(&(h.time, h.seq));
        } else if h.time < self.wheel_start.saturating_add(SLOT_WIDTH) {
            // In the cursor slot (or already fired — retain is a no-op).
            self.active.retain(|e| e.seq != h.seq);
        } else {
            let idx = ((h.time >> SLOT_BITS) as usize) & (SLOTS - 1);
            let slot = &mut self.slots[idx];
            if let Some(pos) = slot.iter().position(|e| e.seq == h.seq) {
                // Bucket order is irrelevant (ordering is imposed at drain
                // time), so a swap_remove reclaims in O(1).
                slot.swap_remove(pos);
                self.wheel_len -= 1;
                if slot.is_empty() {
                    self.occupancy[idx >> 6] &= !(1 << (idx & 63));
                }
            }
        }
    }

    /// Circular distance (in slots, 1..SLOTS) from the cursor to the first
    /// occupied bucket, or `None` if the wheel is empty.
    fn first_occupied_distance(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let cursor = ((self.wheel_start >> SLOT_BITS) as usize) & (SLOTS - 1);
        // Scan the bitmap word-wise starting just past the cursor.
        let start = cursor + 1;
        for step in 0..=WORDS {
            let word_idx = ((start >> 6) + step) % WORDS;
            let mut word = self.occupancy[word_idx];
            if step == 0 {
                // Mask off bits at or before the start within its word.
                word &= !0u64 << (start & 63);
            }
            if step == WORDS {
                // Wrapped all the way around: only bits up to the cursor.
                word &= !(!0u64 << (start & 63));
            }
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let idx = (word_idx << 6) | bit;
                return Some((idx + SLOTS - cursor) & (SLOTS - 1));
            }
        }
        None
    }

    /// Move the cursor to the bucket holding the earliest pending event and
    /// heapify it into the active set — provided that event is at or before
    /// `end_ns`. Returns whether the active set gained events.
    fn advance_cursor(&mut self, end_ns: u64) -> bool {
        let target = match self.first_occupied_distance() {
            Some(d) => {
                let idx = (((self.wheel_start >> SLOT_BITS) as usize) + d) & (SLOTS - 1);
                match self.slots[idx].iter().map(|e| e.time).min() {
                    Some(t) => t,
                    None => return false,
                }
            }
            None => match self.overflow.first_key_value() {
                Some((&(t, _), _)) => t,
                None => return false,
            },
        };
        if target > end_ns {
            return false;
        }
        let new_start = target & !(SLOT_WIDTH - 1);
        if new_start > self.wheel_start {
            self.wheel_start = new_start;
            // The horizon moved: drain every overflow entry it now covers.
            let bound = new_start.saturating_add(HORIZON);
            while let Some((&(t, _), _)) = self.overflow.first_key_value() {
                if t >= bound {
                    break;
                }
                // powifi-lint: allow(R3) — first_key_value above proves non-empty
                let ((t, seq), payload) = self.overflow.pop_first().expect("checked non-empty");
                if t < new_start.saturating_add(SLOT_WIDTH) {
                    self.active.push(Entry {
                        time: t,
                        seq,
                        payload,
                    });
                } else {
                    let idx = ((t >> SLOT_BITS) as usize) & (SLOTS - 1);
                    self.slots[idx].push(Entry {
                        time: t,
                        seq,
                        payload,
                    });
                    self.occupancy[idx >> 6] |= 1 << (idx & 63);
                    self.wheel_len += 1;
                }
            }
        }
        // Heapify the (new) cursor bucket into the active set, leaving the
        // scratch buffer (with its capacity) in the slot for future refills.
        let idx = ((new_start >> SLOT_BITS) as usize) & (SLOTS - 1);
        if !self.slots[idx].is_empty() {
            let mut bucket = std::mem::replace(
                &mut self.slots[idx],
                std::mem::take(&mut self.bucket_scratch),
            );
            self.wheel_len -= bucket.len();
            self.occupancy[idx >> 6] &= !(1 << (idx & 63));
            for e in bucket.drain(..) {
                self.active.push(e);
            }
            self.bucket_scratch = bucket;
        }
        !self.active.is_empty()
    }

    /// Checkpoint the calendar's counters: `(now_ns, next_seq, executed)`.
    pub fn ckpt_counters(&self) -> (u64, u64, u64) {
        (self.now.as_nanos(), self.next_seq, self.executed)
    }

    /// Export every pending entry as `(time_ns, seq, &event)` in ascending
    /// `(time, seq)` order — the execution order an uninterrupted run would
    /// use. Fails with the offending seq if any pending payload is a boxed
    /// closure: closures cannot be serialized, so checkpointing requires an
    /// all-typed pending set (conformance audits and other
    /// `schedule_repeating` users are incompatible with `--checkpoint-every`).
    pub fn ckpt_pending(&self) -> Result<Vec<(u64, u64, &E)>, u64> {
        fn typed<W, E>(payload: &Payload<W, E>, seq: u64) -> Result<&E, u64> {
            match payload {
                Payload::Typed(ev) => Ok(ev),
                Payload::Boxed(_) => Err(seq),
            }
        }
        let mut out = Vec::with_capacity(self.pending());
        for e in self.active.iter() {
            out.push((e.time, e.seq, typed(&e.payload, e.seq)?));
        }
        for slot in &self.slots {
            for e in slot {
                out.push((e.time, e.seq, typed(&e.payload, e.seq)?));
            }
        }
        for (&(time, seq), payload) in &self.overflow {
            out.push((time, seq, typed(payload, seq)?));
        }
        out.sort_unstable_by_key(|&(t, s, _)| (t, s));
        Ok(out)
    }

    /// Rebuild the calendar from a checkpoint: clear everything, set the
    /// counters, and re-insert `entries` *preserving their original seqs* so
    /// same-instant FIFO ordering — and therefore the whole downstream event
    /// interleaving — is identical to the uninterrupted run. Entries must
    /// not be earlier than `now`.
    pub fn ckpt_restore(
        &mut self,
        now: SimTime,
        next_seq: u64,
        executed: u64,
        entries: Vec<(u64, u64, E)>,
    ) {
        self.active.clear();
        for s in &mut self.slots {
            s.clear();
        }
        self.occupancy = [0; WORDS];
        self.wheel_len = 0;
        self.overflow.clear();
        self.now = now;
        self.next_seq = next_seq;
        self.executed = executed;
        self.wheel_start = now.as_nanos() & !(SLOT_WIDTH - 1);
        for (time, seq, ev) in entries {
            assert!(
                time >= now.as_nanos(),
                "checkpointed event at {time} precedes restore time {now}"
            );
            assert!(seq < next_seq, "checkpointed seq {seq} >= next_seq");
            let payload = Payload::Typed(ev);
            if time < self.wheel_start.saturating_add(SLOT_WIDTH) {
                self.active.push(Entry { time, seq, payload });
            } else if time < self.wheel_start.saturating_add(HORIZON) {
                let idx = ((time >> SLOT_BITS) as usize) & (SLOTS - 1);
                self.slots[idx].push(Entry { time, seq, payload });
                self.occupancy[idx >> 6] |= 1 << (idx & 63);
                self.wheel_len += 1;
            } else {
                self.overflow.insert((time, seq), payload);
            }
        }
    }
}

impl<W: Dispatch<E>, E> EventQueue<W, E> {
    /// Run events in order until the queue is empty or `end` is reached.
    /// Events scheduled exactly at `end` *do* run; afterwards `now == end`
    /// if any event remains pending past it, else the time of the last event.
    pub fn run_until(&mut self, world: &mut W, end: SimTime) {
        let executed_before = self.executed;
        let end_ns = end.as_nanos();
        loop {
            while let Some(top) = self.active.peek() {
                if top.time > end_ns {
                    break;
                }
                // powifi-lint: allow(R3) — the peek above proves non-empty
                let entry = self.active.pop().expect("peeked entry");
                debug_assert!(
                    entry.time >= self.now.as_nanos(),
                    "event queue time went backwards"
                );
                self.now = SimTime::from_nanos(entry.time);
                self.executed += 1;
                let _prof = crate::obs::prof::span("sim.event");
                match entry.payload {
                    Payload::Typed(ev) => world.dispatch(self, ev),
                    Payload::Boxed(f) => f(world, self),
                }
            }
            if !self.active.is_empty() || !self.advance_cursor(end_ns) {
                break;
            }
        }
        if self.now < end {
            self.now = end;
        }
        crate::obs::metrics::counter(crate::obs::metrics::keys::SIM_EVENTS)
            .add(self.executed - executed_before);
    }

    /// Run until the queue is fully drained (use with care: repeating events
    /// never drain). Mostly useful in tests.
    pub fn run_to_completion(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(20), |w, q| {
            w.log.push((q.now().as_micros(), "b"))
        });
        q.schedule_at(SimTime::from_micros(10), |w, q| {
            w.log.push((q.now().as_micros(), "a"))
        });
        q.schedule_at(SimTime::from_micros(30), |w, q| {
            w.log.push((q.now().as_micros(), "c"))
        });
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            q.schedule_at(SimTime::from_micros(5), move |w, q| {
                w.log.push((q.now().as_micros(), name))
            });
        }
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(1), |_, q| {
            q.schedule_in(SimDuration::from_micros(4), |w, q| {
                w.log.push((q.now().as_micros(), "nested"));
            });
        });
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(5, "nested")]);
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        let h = q.schedule_at(SimTime::from_micros(10), |w, _| w.log.push((0, "no")));
        q.schedule_at(SimTime::from_micros(20), |w, _| w.log.push((0, "yes")));
        q.cancel(h);
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(0, "yes")]);
        // Double-cancel and cancel-after-fire are no-ops.
        q.cancel(h);
    }

    #[test]
    fn cancellation_reclaims_storage_eagerly() {
        let mut q = EventQueue::<World>::new();
        // One event per region: cursor slot, wheel, overflow.
        let a = q.schedule_at(SimTime::from_nanos(100), |_, _| {});
        let b = q.schedule_at(SimTime::from_millis(1), |_, _| {});
        let c = q.schedule_at(SimTime::from_secs(10), |_, _| {});
        assert_eq!(q.pending(), 3);
        assert_eq!(q.stored(), 3);
        q.cancel(b);
        assert_eq!(q.stored(), 2);
        q.cancel(a);
        q.cancel(c);
        assert_eq!(q.stored(), 0);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(10), |w, _| w.log.push((10, "in")));
        q.schedule_at(SimTime::from_micros(100), |w, _| w.log.push((100, "out")));
        q.run_until(&mut w, SimTime::from_micros(50));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(q.now(), SimTime::from_micros(50));
        assert_eq!(q.pending(), 1);
        q.run_until(&mut w, SimTime::from_micros(100));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn repeating_event_fires_on_period() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        let count = Rc::new(RefCell::new(0u64));
        let c2 = count.clone();
        q.schedule_repeating(
            SimTime::from_micros(10),
            SimDuration::from_micros(10),
            move |_, _| *c2.borrow_mut() += 1,
        );
        q.run_until(&mut w, SimTime::from_micros(55));
        assert_eq!(*count.borrow(), 5); // t = 10,20,30,40,50
    }

    #[test]
    fn repeating_while_stops_on_predicate() {
        struct W2 {
            n: u32,
        }
        let mut q = EventQueue::<W2>::new();
        let mut w = W2 { n: 0 };
        q.schedule_repeating_while(
            SimTime::from_micros(1),
            SimDuration::from_micros(1),
            |w, _| w.n += 1,
            |w| w.n < 3,
        );
        q.run_until(&mut w, SimTime::from_secs(1));
        assert_eq!(w.n, 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(10), |_, q| {
            q.schedule_at(SimTime::from_micros(5), |_, _| {});
        });
        q.run_to_completion(&mut w);
    }

    // ---- typed-event dispatch ----

    #[derive(Debug, PartialEq, Eq)]
    enum TestEvent {
        Mark(&'static str),
        Chain(u32),
    }

    #[derive(Default)]
    struct TypedWorld {
        log: Vec<(u64, String)>,
    }

    impl Dispatch<TestEvent> for TypedWorld {
        fn dispatch(&mut self, q: &mut EventQueue<Self, TestEvent>, ev: TestEvent) {
            match ev {
                TestEvent::Mark(s) => self.log.push((q.now().as_micros(), s.to_string())),
                TestEvent::Chain(n) => {
                    self.log.push((q.now().as_micros(), format!("chain{n}")));
                    if n > 0 {
                        q.post_in(SimDuration::from_micros(10), TestEvent::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_dispatch_in_order() {
        let mut q = EventQueue::<TypedWorld, TestEvent>::new();
        let mut w = TypedWorld::default();
        q.post_at(SimTime::from_micros(20), TestEvent::Mark("late"));
        q.post_at(SimTime::from_micros(5), TestEvent::Mark("early"));
        q.run_to_completion(&mut w);
        assert_eq!(
            w.log,
            vec![(5, "early".to_string()), (20, "late".to_string())]
        );
    }

    #[test]
    fn typed_and_boxed_share_fifo_order() {
        let mut q = EventQueue::<TypedWorld, TestEvent>::new();
        let mut w = TypedWorld::default();
        let t = SimTime::from_micros(7);
        q.post_at(t, TestEvent::Mark("typed1"));
        q.schedule_at(t, |w: &mut TypedWorld, q| {
            w.log.push((q.now().as_micros(), "boxed".into()))
        });
        q.post_at(t, TestEvent::Mark("typed2"));
        q.run_to_completion(&mut w);
        let names: Vec<&str> = w.log.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(names, ["typed1", "boxed", "typed2"]);
    }

    #[test]
    fn typed_events_can_chain() {
        let mut q = EventQueue::<TypedWorld, TestEvent>::new();
        let mut w = TypedWorld::default();
        q.post_at(SimTime::ZERO, TestEvent::Chain(3));
        q.run_to_completion(&mut w);
        assert_eq!(w.log.len(), 4);
        assert_eq!(w.log.last().unwrap().0, 30);
    }

    #[test]
    fn typed_events_cancel() {
        let mut q = EventQueue::<TypedWorld, TestEvent>::new();
        let mut w = TypedWorld::default();
        let h = q.post_at(SimTime::from_micros(10), TestEvent::Mark("no"));
        q.post_at(SimTime::from_micros(20), TestEvent::Mark("yes"));
        q.cancel(h);
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(20, "yes".to_string())]);
    }

    // ---- wheel mechanics across region boundaries ----

    #[test]
    fn events_beyond_the_horizon_fire_in_order() {
        // Spread events over ~10 s — far beyond the 33.5 ms wheel horizon —
        // plus a dense cluster inside one slot, interleaved at random-ish
        // times, and check global ordering survives the overflow drain.
        let mut q = EventQueue::<Vec<u64>>::new();
        let mut w: Vec<u64> = Vec::new();
        let mut times: Vec<u64> = (0..200u64)
            .map(|i| (i * 7_919_777_123) % 10_000_000_000)
            .collect();
        times.extend(5_000..5_040u64); // same-slot cluster
        for &t in &times {
            q.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, q| {
                w.push(q.now().as_nanos());
            });
        }
        q.run_to_completion(&mut w);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(w, sorted);
    }

    #[test]
    fn cancel_works_in_every_region_after_cursor_moves() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        // Fire one event at 50 ms to advance the cursor well past t = 0.
        q.schedule_at(SimTime::from_millis(50), |w, _| w.log.push((50, "tick")));
        let near = q.schedule_at(SimTime::from_millis(51), |w, _| w.log.push((51, "near")));
        let far = q.schedule_at(SimTime::from_secs(2), |w, _| w.log.push((2, "far")));
        q.run_until(&mut w, SimTime::from_millis(50));
        q.cancel(near);
        q.cancel(far);
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(50, "tick")]);
        assert_eq!(q.stored(), 0);
    }
}
