//! The discrete-event queue.
//!
//! `EventQueue<W>` is a deterministic, single-threaded calendar of boxed
//! closures over a world state `W`. Handlers receive `&mut W` and
//! `&mut EventQueue<W>` so they can mutate state and schedule further events.
//! Two events at the same instant fire in scheduling order (FIFO), which —
//! together with integer [`SimTime`] — makes every run bit-reproducible for a
//! given seed.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// An event handler: consumes itself, mutating the world and the queue.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventQueue<W>)>;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    // Reverse ordering: BinaryHeap is a max-heap, we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event calendar over world state `W`.
pub struct EventQueue<W> {
    heap: BinaryHeap<Entry<W>>,
    cancelled: BTreeSet<u64>,
    now: SimTime,
    next_seq: u64,
    executed: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> EventQueue<W> {
    /// An empty queue at `t = 0`.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            executed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Schedule `f` at the absolute instant `at`. Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventHandle {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            f: Box::new(f),
        });
        EventHandle(seq)
    }

    /// Schedule `f` after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventHandle {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule a repeating event: `f` fires first at `first`, then every
    /// `period` thereafter, until the run horizon is reached or the world
    /// stops the simulation. Returns the handle of the *first* firing only;
    /// stopping a repetition chain is done from inside `f` by returning
    /// control — use [`EventQueue::schedule_repeating_while`] for a
    /// self-terminating variant.
    pub fn schedule_repeating(
        &mut self,
        first: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventHandle {
        self.schedule_repeating_while(first, period, f, |_| true)
    }

    /// Like [`EventQueue::schedule_repeating`] but re-arms only while
    /// `keep_going(world)` holds after each firing.
    pub fn schedule_repeating_while(
        &mut self,
        first: SimTime,
        period: SimDuration,
        f: impl FnMut(&mut W, &mut EventQueue<W>) + 'static,
        keep_going: impl Fn(&W) -> bool + 'static,
    ) -> EventHandle {
        assert!(!period.is_zero(), "zero-period repeating event");
        fn arm<W, F, K>(
            q: &mut EventQueue<W>,
            at: SimTime,
            period: SimDuration,
            mut f: F,
            keep: K,
        ) -> EventHandle
        where
            F: FnMut(&mut W, &mut EventQueue<W>) + 'static,
            K: Fn(&W) -> bool + 'static,
        {
            q.schedule_at(at, move |w, q| {
                f(w, q);
                if keep(w) {
                    arm(q, q.now() + period, period, f, keep);
                }
            })
        }
        arm(self, first, period, f, keep_going)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, h: EventHandle) {
        self.cancelled.insert(h.0);
    }

    /// Run events in order until the queue is empty or `end` is reached.
    /// Events scheduled exactly at `end` *do* run; afterwards `now == end`
    /// if any event remains pending past it, else the time of the last event.
    pub fn run_until(&mut self, world: &mut W, end: SimTime) {
        let executed_before = self.executed;
        loop {
            match self.heap.peek() {
                Some(top) if top.time <= end => {}
                _ => break,
            }
            let Some(entry) = self.heap.pop() else { break };
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue time went backwards");
            self.now = entry.time;
            self.executed += 1;
            let _prof = crate::obs::prof::span("sim.event");
            (entry.f)(world, self);
        }
        if self.now < end {
            self.now = end;
        }
        crate::obs::metrics::counter(crate::obs::metrics::keys::SIM_EVENTS)
            .add(self.executed - executed_before);
    }

    /// Run until the queue is fully drained (use with care: repeating events
    /// never drain). Mostly useful in tests.
    pub fn run_to_completion(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(20), |w, q| {
            w.log.push((q.now().as_micros(), "b"))
        });
        q.schedule_at(SimTime::from_micros(10), |w, q| {
            w.log.push((q.now().as_micros(), "a"))
        });
        q.schedule_at(SimTime::from_micros(30), |w, q| {
            w.log.push((q.now().as_micros(), "c"))
        });
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            q.schedule_at(SimTime::from_micros(5), move |w, q| {
                w.log.push((q.now().as_micros(), name))
            });
        }
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(5, "first"), (5, "second"), (5, "third")]);
    }

    #[test]
    fn handlers_can_schedule_more_events() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(1), |_, q| {
            q.schedule_in(SimDuration::from_micros(4), |w, q| {
                w.log.push((q.now().as_micros(), "nested"));
            });
        });
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(5, "nested")]);
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        let h = q.schedule_at(SimTime::from_micros(10), |w, _| w.log.push((0, "no")));
        q.schedule_at(SimTime::from_micros(20), |w, _| w.log.push((0, "yes")));
        q.cancel(h);
        q.run_to_completion(&mut w);
        assert_eq!(w.log, vec![(0, "yes")]);
        // Double-cancel and cancel-after-fire are no-ops.
        q.cancel(h);
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(10), |w, _| w.log.push((10, "in")));
        q.schedule_at(SimTime::from_micros(100), |w, _| w.log.push((100, "out")));
        q.run_until(&mut w, SimTime::from_micros(50));
        assert_eq!(w.log, vec![(10, "in")]);
        assert_eq!(q.now(), SimTime::from_micros(50));
        assert_eq!(q.pending(), 1);
        q.run_until(&mut w, SimTime::from_micros(100));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn repeating_event_fires_on_period() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        let count = Rc::new(RefCell::new(0u64));
        let c2 = count.clone();
        q.schedule_repeating(
            SimTime::from_micros(10),
            SimDuration::from_micros(10),
            move |_, _| *c2.borrow_mut() += 1,
        );
        q.run_until(&mut w, SimTime::from_micros(55));
        assert_eq!(*count.borrow(), 5); // t = 10,20,30,40,50
    }

    #[test]
    fn repeating_while_stops_on_predicate() {
        struct W2 {
            n: u32,
        }
        let mut q = EventQueue::<W2>::new();
        let mut w = W2 { n: 0 };
        q.schedule_repeating_while(
            SimTime::from_micros(1),
            SimDuration::from_micros(1),
            |w, _| w.n += 1,
            |w| w.n < 3,
        );
        q.run_until(&mut w, SimTime::from_secs(1));
        assert_eq!(w.n, 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::<World>::new();
        let mut w = World::default();
        q.schedule_at(SimTime::from_micros(10), |_, q| {
            q.schedule_at(SimTime::from_micros(5), |_, _| {});
        });
        q.run_to_completion(&mut w);
    }
}
