//! Seeded, splittable randomness.
//!
//! Every stochastic component draws from its own named stream derived from a
//! single experiment seed. That way adding a new random consumer (say, a new
//! neighbor AP) does not perturb the draws every other component sees, which
//! keeps regression baselines stable.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream.
pub struct SimRng {
    // (Debug shows only the seed material, not generator internals.)
    base: u64,
    inner: StdRng,
}

impl SimRng {
    /// Root stream for an experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        let base = splitmix(seed);
        SimRng {
            base,
            inner: StdRng::seed_from_u64(base),
        }
    }

    /// Derive an independent child stream identified by `label`.
    /// Identical `(seed, label)` pairs always produce identical streams.
    pub fn derive(&self, label: &str) -> SimRng {
        let base = self.derive_seed(label);
        SimRng {
            base,
            inner: StdRng::seed_from_u64(base),
        }
    }

    /// Derive an independent child stream identified by an index.
    pub fn derive_idx(&self, label: &str, idx: usize) -> SimRng {
        self.derive(&format!("{label}#{idx}"))
    }

    /// The seed material a [`SimRng::derive`] child for `label` would be
    /// built from. Useful when a child *seed* (not a stream) must cross an
    /// API boundary — e.g. the bench sweep engine hands each experiment point
    /// a plain `u64` derived from the root seed and the point's label.
    pub fn derive_seed(&self, label: &str) -> u64 {
        // Mix the label into the parent's seed material via FNV-1a, then
        // scramble with splitmix so adjacent labels decorrelate.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        splitmix(self.base ^ h)
    }

    /// The stream's exact position, for checkpointing: the derivation base
    /// (so future [`SimRng::derive`] calls reproduce) plus the generator's
    /// raw state words.
    pub fn ckpt_state(&self) -> (u64, [u64; 4]) {
        (self.base, self.inner.state())
    }

    /// Rebuild a stream at an exact position captured by
    /// [`SimRng::ckpt_state`]: continues the same draw sequence and derives
    /// the same child streams.
    pub fn from_ckpt_state(base: u64, state: [u64; 4]) -> SimRng {
        SimRng {
            base,
            inner: StdRng::from_state(state),
        }
    }

    /// Uniform sample from a range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Normal sample (Box–Muller; one value per call for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev");
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Pareto-distributed sample (heavy-tailed; used for web object sizes).
    /// `scale` is the minimum value, `shape` > 0 controls the tail.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0, "invalid pareto parameters");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        scale / u.powf(1.0 / shape)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let i = self.inner.gen_range(0..items.len());
        &items[i]
    }
}

impl core::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimRng").field("base", &self.base).finish()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..32).filter(|_| a.f64() == b.f64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_stable_and_independent() {
        let root = SimRng::from_seed(7);
        let mut c1 = root.derive("mac");
        let mut c1b = SimRng::from_seed(7).derive("mac");
        let mut c2 = root.derive("harvester");
        assert_eq!(c1.f64().to_bits(), c1b.f64().to_bits());
        assert_ne!(c1.f64().to_bits(), c2.f64().to_bits());
    }

    #[test]
    fn exp_mean_is_roughly_right() {
        let mut r = SimRng::from_seed(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::from_seed(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(7.0));
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::from_seed(6);
        for _ in 0..1000 {
            assert!(r.pareto(100.0, 1.2) >= 100.0);
        }
    }
}
