//! Deprecated shim over [`crate::obs::metrics`].
//!
//! The per-run `events` / `frames` / `occupancy` counter triple this module
//! used to hold now lives in the general metrics registry under the
//! well-known names in [`crate::obs::metrics::keys`]. The functions below
//! forward there so out-of-tree callers keep working; in-tree code has been
//! migrated and new code should record through `obs::metrics` handles
//! directly.

// The module is itself `#[deprecated]` (see lib.rs), which would otherwise
// flag its own forwarding bodies and tests.
#![allow(deprecated)]

use crate::obs::metrics::{self, keys};

pub use crate::obs::metrics::RunTelemetry;

/// Zero this thread's metrics registry. Call before running a point.
#[deprecated(note = "use powifi_sim::obs::metrics::reset")]
pub fn reset() {
    metrics::reset();
}

/// Add `n` executed events to this thread's [`keys::SIM_EVENTS`] counter.
#[deprecated(note = "use obs::metrics::counter(keys::SIM_EVENTS)")]
pub fn add_events(n: u64) {
    metrics::counter(keys::SIM_EVENTS).add(n);
}

/// Add `n` sent frames to this thread's [`keys::MAC_FRAMES`] counter.
#[deprecated(note = "use obs::metrics::counter(keys::MAC_FRAMES)")]
pub fn record_frames(n: u64) {
    metrics::counter(keys::MAC_FRAMES).add(n);
}

/// Record a run's cumulative occupancy ([`keys::MAC_OCCUPANCY`] gauge).
#[deprecated(note = "use obs::metrics::gauge(keys::MAC_OCCUPANCY)")]
pub fn record_occupancy(occupancy: f64) {
    metrics::gauge(keys::MAC_OCCUPANCY).set(occupancy);
}

/// Read the legacy counter triple without clearing it.
#[deprecated(note = "use powifi_sim::obs::metrics::run_telemetry")]
pub fn snapshot() -> RunTelemetry {
    metrics::run_telemetry()
}

// The shim's forwarding behavior is covered by
// `crates/sim/tests/telemetry_shim.rs` — unit tests can't live here because
// the module-level deprecation would flag the generated test harness.
