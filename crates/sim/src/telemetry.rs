//! Deprecated shim over [`crate::obs::metrics`].
//!
//! The per-run `events` / `frames` / `occupancy` counter triple this module
//! used to hold now lives in the general metrics registry under the
//! well-known names in [`crate::obs::metrics::keys`]. The functions below
//! forward there so out-of-tree callers keep working; in-tree code has been
//! migrated and new code should record through `obs::metrics` handles
//! directly.

use crate::obs::metrics::{self, keys};

pub use crate::obs::metrics::RunTelemetry;

/// Zero this thread's metrics registry. Call before running a point.
#[deprecated(note = "use powifi_sim::obs::metrics::reset")]
pub fn reset() {
    metrics::reset();
}

/// Add `n` executed events to this thread's [`keys::SIM_EVENTS`] counter.
#[deprecated(note = "use obs::metrics::counter(keys::SIM_EVENTS)")]
pub fn add_events(n: u64) {
    metrics::counter(keys::SIM_EVENTS).add(n);
}

/// Add `n` sent frames to this thread's [`keys::MAC_FRAMES`] counter.
#[deprecated(note = "use obs::metrics::counter(keys::MAC_FRAMES)")]
pub fn record_frames(n: u64) {
    metrics::counter(keys::MAC_FRAMES).add(n);
}

/// Record a run's cumulative occupancy ([`keys::MAC_OCCUPANCY`] gauge).
#[deprecated(note = "use obs::metrics::gauge(keys::MAC_OCCUPANCY)")]
pub fn record_occupancy(occupancy: f64) {
    metrics::gauge(keys::MAC_OCCUPANCY).set(occupancy);
}

/// Read the legacy counter triple without clearing it.
#[deprecated(note = "use powifi_sim::obs::metrics::run_telemetry")]
pub fn snapshot() -> RunTelemetry {
    metrics::run_telemetry()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn shim_forwards_to_the_registry() {
        reset();
        add_events(3);
        add_events(4);
        record_frames(10);
        record_occupancy(0.9);
        let t = snapshot();
        assert_eq!(t.events, 7);
        assert_eq!(t.frames, 10);
        assert_eq!(t.occupancy, 0.9);
        assert_eq!(
            crate::obs::metrics::snapshot().counter(crate::obs::metrics::keys::SIM_EVENTS),
            7
        );
        reset();
        assert_eq!(snapshot(), RunTelemetry::default());
    }

    #[test]
    fn run_until_records_events() {
        use crate::{EventQueue, SimTime};
        reset();
        let mut q = EventQueue::<u32>::new();
        let mut w = 0u32;
        for i in 0..5u64 {
            q.schedule_at(SimTime::from_micros(i), |w, _| *w += 1);
        }
        q.run_until(&mut w, SimTime::from_secs(1));
        assert_eq!(w, 5);
        assert_eq!(snapshot().events, 5);
    }
}
