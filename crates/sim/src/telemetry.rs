//! Per-run observability counters.
//!
//! The bench sweep engine runs experiment points on worker threads and wants
//! to report, for every point, how much simulation work happened: events
//! executed, MAC frames sent, final cumulative occupancy. Threading those
//! counters through every experiment signature would contaminate the whole
//! API for a purely observational concern, so they live in a thread-local
//! accumulator instead: the engine calls [`reset`] before and [`snapshot`]
//! after each point (both on the worker thread that runs it), and the
//! simulation layers record into the current thread's counters as they go.
//! [`crate::EventQueue::run_until`] records executed events automatically;
//! the deployment entry points record frames and occupancy.
//!
//! The counters are *observability only*: nothing in the simulation reads
//! them back, so they cannot affect results or determinism.

use std::cell::Cell;

/// Snapshot of one run's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTelemetry {
    /// Events executed by [`crate::EventQueue::run_until`] since [`reset`].
    pub events: u64,
    /// MAC frames sent (as recorded by [`record_frames`]) since [`reset`].
    pub frames: u64,
    /// Last cumulative occupancy recorded by [`record_occupancy`].
    pub occupancy: f64,
}

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
    static FRAMES: Cell<u64> = const { Cell::new(0) };
    static OCCUPANCY: Cell<f64> = const { Cell::new(0.0) };
}

/// Zero this thread's counters. Call before running an experiment point.
pub fn reset() {
    EVENTS.with(|c| c.set(0));
    FRAMES.with(|c| c.set(0));
    OCCUPANCY.with(|c| c.set(0.0));
}

/// Add `n` executed events to this thread's counter.
pub fn add_events(n: u64) {
    EVENTS.with(|c| c.set(c.get().saturating_add(n)));
}

/// Add `n` sent frames to this thread's counter.
pub fn record_frames(n: u64) {
    FRAMES.with(|c| c.set(c.get().saturating_add(n)));
}

/// Record a run's cumulative occupancy (last write wins).
pub fn record_occupancy(occupancy: f64) {
    OCCUPANCY.with(|c| c.set(occupancy));
}

/// Read this thread's counters without clearing them.
pub fn snapshot() -> RunTelemetry {
    RunTelemetry {
        events: EVENTS.with(Cell::get),
        frames: FRAMES.with(Cell::get),
        occupancy: OCCUPANCY.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        add_events(3);
        add_events(4);
        record_frames(10);
        record_occupancy(0.5);
        record_occupancy(0.9);
        let t = snapshot();
        assert_eq!(t.events, 7);
        assert_eq!(t.frames, 10);
        assert_eq!(t.occupancy, 0.9);
        reset();
        assert_eq!(snapshot(), RunTelemetry::default());
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        add_events(5);
        std::thread::spawn(|| {
            // A fresh thread starts from zero and cannot see the parent's.
            assert_eq!(snapshot().events, 0);
            add_events(1);
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().events, 5);
    }

    #[test]
    fn run_until_records_events() {
        use crate::{EventQueue, SimTime};
        reset();
        let mut q = EventQueue::<u32>::new();
        let mut w = 0u32;
        for i in 0..5u64 {
            q.schedule_at(SimTime::from_micros(i), |w, _| *w += 1);
        }
        q.run_until(&mut w, SimTime::from_secs(1));
        assert_eq!(w, 5);
        assert_eq!(snapshot().events, 5);
    }
}
