//! Simulation time.
//!
//! Time is kept as integer nanoseconds since the start of the simulation.
//! Integer time makes event ordering exact and runs reproducible: two events
//! scheduled for the same instant are ordered by insertion sequence, never by
//! floating-point noise.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Seconds since the epoch as a typed span (for unit-checked math).
    pub fn as_seconds(self) -> crate::units::Seconds {
        crate::units::Seconds(self.as_secs_f64())
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Seconds as a typed span (for unit-checked math).
    pub fn as_seconds(self) -> crate::units::Seconds {
        crate::units::Seconds(self.as_secs_f64())
    }

    /// Construct from fractional microseconds, rounding to whole nanoseconds.
    /// Panics on negative or non-finite input. This is the blessed rounding
    /// helper for float→integer airtime math (see docs/STATIC_ANALYSIS.md,
    /// rule R5).
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration {us}us");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// True if this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer division rounding up; how many `step`s cover this span.
    pub fn div_ceil(self, step: SimDuration) -> u64 {
        assert!(step.0 > 0, "zero step");
        self.0.div_ceil(step.0)
    }

    /// Multiply by an integer count.
    pub const fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(rhs.0 > 0, "division by zero duration");
        self.0 / rhs.0
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimDuration::from_micros(100).as_nanos(), 100_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(5)).as_micros(), 10);
        assert_eq!(SimDuration::from_micros(9) / SimDuration::from_micros(2), 4);
    }

    #[test]
    fn float_conversion() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_millis(), 1500);
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::ZERO.duration_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn div_ceil_counts_steps() {
        let span = SimDuration::from_micros(10);
        assert_eq!(span.div_ceil(SimDuration::from_micros(3)), 4);
        assert_eq!(span.div_ceil(SimDuration::from_micros(5)), 2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(100)), "100.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
    }
}
