//! Deterministic checkpoint serialization: the wire format under
//! `--checkpoint-every`, `--resume` and the `powifi-replay` inspector.
//!
//! A checkpoint is a self-describing [`Value`] tree rendered to a single
//! canonical byte string: map keys in insertion order (producers emit a
//! fixed field order), `f64` stored as raw bit patterns (`f<16 hex>`), no
//! whitespace. Canonical rendering gives the two properties the
//! observatory is built on:
//!
//! * **byte-identity** — two runs in the same state produce the same
//!   bytes, in debug and release, at any `--jobs` level, so goldens can
//!   compare checkpoints with `==`;
//! * **diffability** — the tree is self-describing, so
//!   `powifi-replay diff`/`bisect` can walk two checkpoints and report the
//!   first divergent *field path* instead of a byte offset.
//!
//! The container line is `powifi-ckpt <version> <fnv1a128 of body>`; the
//! hash is verified on load, travels in bench manifests as resume
//! provenance, and rides the `obs::stream` wire as the `ckpt` record so a
//! live consumer can detect divergence between fleets the moment a state
//! hash differs.
//!
//! Nothing in this module reads a wall clock, and lint rule R14
//! (`wall-clock-in-ckpt`) keeps wall-time-derived fields out of every
//! `ckpt` state struct in the workspace.

use std::fmt::Write as _;

/// Format version of the checkpoint container. Bump on any change to the
/// canonical rendering or to a producer's field layout; `load` rejects
/// versions it does not understand rather than misinterpreting state.
pub const CKPT_VERSION: u32 = 1;

/// Leading magic of the container line.
pub const CKPT_MAGIC: &str = "powifi-ckpt";

/// Errors from encoding, decoding or interpreting a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The container line is missing or malformed.
    BadContainer(String),
    /// The container declares a version this build cannot read.
    BadVersion(u32),
    /// The body does not hash to the value in the container line.
    HashMismatch {
        /// Hash declared in the container line.
        declared: String,
        /// Hash of the body as loaded.
        actual: String,
    },
    /// The body text is not a valid canonical value.
    Parse {
        /// Byte offset the parser stopped at.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A field was missing or had the wrong type while interpreting the
    /// tree; `path` is the `/`-joined field path.
    Field {
        /// Where in the tree.
        path: String,
        /// What was expected there.
        message: String,
    },
    /// The checkpointed state cannot be restored by this build (e.g. a
    /// pending boxed closure was encountered at save time).
    Unsupported(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadContainer(m) => write!(f, "bad checkpoint container: {m}"),
            CkptError::BadVersion(v) => write!(
                f,
                "checkpoint version {v} not readable by this build (wants {CKPT_VERSION})"
            ),
            CkptError::HashMismatch { declared, actual } => write!(
                f,
                "checkpoint hash mismatch: container says {declared}, body hashes to {actual}"
            ),
            CkptError::Parse { offset, message } => {
                write!(f, "checkpoint parse error at byte {offset}: {message}")
            }
            CkptError::Field { path, message } => {
                write!(f, "checkpoint field /{path}: {message}")
            }
            CkptError::Unsupported(m) => write!(f, "checkpoint unsupported: {m}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// A node of the self-describing state tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent optional state (`Option::None`).
    Null,
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (times, seqs, counters, indices).
    U64(u64),
    /// An `f64` carried as its raw bit pattern, so rendering is exact and
    /// NaN/-0.0 round-trip.
    F64(u64),
    /// UTF-8 string (labels, enum discriminants).
    Str(String),
    /// Ordered sequence.
    List(Vec<Value>),
    /// Ordered key–value map. Producers emit a fixed field order; keys are
    /// not sorted, so order is part of the canonical form.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Wrap an `f64` by bit pattern.
    pub fn f64(v: f64) -> Value {
        Value::F64(v.to_bits())
    }

    /// Wrap a string-ish.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Wrap an `Option` by mapping the inner value.
    pub fn opt<T>(v: Option<T>, f: impl FnOnce(T) -> Value) -> Value {
        match v {
            Some(v) => f(v),
            None => Value::Null,
        }
    }

    /// Start an (ordered) map builder.
    pub fn map() -> MapBuilder {
        MapBuilder(Vec::new())
    }

    /// Look up `key` in a map value.
    pub fn get(&self, key: &str) -> Result<&Value, CkptError> {
        match self {
            Value::Map(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| field_err(key, "missing field")),
            _ => Err(field_err(key, "parent is not a map")),
        }
    }

    /// The value as `u64`.
    pub fn as_u64(&self, path: &str) -> Result<u64, CkptError> {
        match self {
            Value::U64(v) => Ok(*v),
            _ => Err(field_err(path, "expected u64")),
        }
    }

    /// The value as `f64` (decoded from its bit pattern).
    pub fn as_f64(&self, path: &str) -> Result<f64, CkptError> {
        match self {
            Value::F64(bits) => Ok(f64::from_bits(*bits)),
            _ => Err(field_err(path, "expected f64")),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self, path: &str) -> Result<bool, CkptError> {
        match self {
            Value::Bool(v) => Ok(*v),
            _ => Err(field_err(path, "expected bool")),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self, path: &str) -> Result<&str, CkptError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(field_err(path, "expected string")),
        }
    }

    /// The value as a list slice.
    pub fn as_list(&self, path: &str) -> Result<&[Value], CkptError> {
        match self {
            Value::List(items) => Ok(items),
            _ => Err(field_err(path, "expected list")),
        }
    }

    /// The value as a map's `(key, value)` slice.
    pub fn as_map(&self, path: &str) -> Result<&[(String, Value)], CkptError> {
        match self {
            Value::Map(fields) => Ok(fields),
            _ => Err(field_err(path, "expected map")),
        }
    }

    /// `None` for `Null`, else `Some(self)`.
    pub fn as_opt(&self) -> Option<&Value> {
        match self {
            Value::Null => None,
            v => Some(v),
        }
    }

    /// Convenience: `get` then `as_u64`.
    pub fn u64_field(&self, key: &str) -> Result<u64, CkptError> {
        self.get(key)?.as_u64(key)
    }

    /// Convenience: `get` then `as_f64`.
    pub fn f64_field(&self, key: &str) -> Result<f64, CkptError> {
        self.get(key)?.as_f64(key)
    }

    /// Convenience: `get` then `as_bool`.
    pub fn bool_field(&self, key: &str) -> Result<bool, CkptError> {
        self.get(key)?.as_bool(key)
    }

    /// Convenience: `get` then `as_str`.
    pub fn str_field(&self, key: &str) -> Result<&str, CkptError> {
        self.get(key)?.as_str(key)
    }

    /// Convenience: `get` then `as_list`.
    pub fn list_field(&self, key: &str) -> Result<&[Value], CkptError> {
        self.get(key)?.as_list(key)
    }

    /// Render the canonical byte form.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(bits) => {
                let _ = write!(out, "f{bits:016x}");
            }
            Value::Str(s) => push_quoted(out, s),
            Value::List(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Value::Map(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_quoted(out, k);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Human-oriented rendering of a leaf for diff output: floats shown as
    /// decimal (with the bit pattern when the decimal is lossy-looking),
    /// everything else as its canonical form.
    pub fn display_leaf(&self) -> String {
        match self {
            Value::F64(bits) => format!("{:?}", f64::from_bits(*bits)),
            v => v.encode(),
        }
    }
}

/// Ordered map builder: `Value::map().field("a", ..).field("b", ..).build()`.
#[derive(Debug, Default)]
pub struct MapBuilder(Vec<(String, Value)>);

impl MapBuilder {
    /// Append one field (order is preserved and canonical).
    pub fn field(mut self, key: impl Into<String>, v: Value) -> MapBuilder {
        self.0.push((key.into(), v));
        self
    }

    /// Finish the map.
    pub fn build(self) -> Value {
        Value::Map(self.0)
    }
}

fn field_err(path: &str, message: &str) -> CkptError {
    CkptError::Field {
        path: path.to_string(),
        message: message.to_string(),
    }
}

fn push_quoted(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// 128-bit FNV-1a over `bytes`, rendered as 32 lowercase hex digits. The
/// checkpoint content hash: fast, dependency-free, and stable across
/// platforms (pure integer arithmetic).
pub fn fnv1a128_hex(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// A loaded checkpoint: verified container plus the state tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format version from the container line.
    pub version: u32,
    /// Content hash of the body (verified at load).
    pub hash: String,
    /// The state tree.
    pub root: Value,
}

/// Render `root` into the full container bytes (container line + body).
pub fn save(root: &Value) -> Vec<u8> {
    let body = root.encode();
    let hash = fnv1a128_hex(body.as_bytes());
    let mut out = String::with_capacity(body.len() + 64);
    let _ = writeln!(out, "{CKPT_MAGIC} {CKPT_VERSION} {hash}");
    out.push_str(&body);
    out.push('\n');
    out.into_bytes()
}

/// Content hash a [`save`] of `root` would carry, without materializing the
/// container.
pub fn state_hash(root: &Value) -> String {
    fnv1a128_hex(root.encode().as_bytes())
}

/// Parse and verify container bytes produced by [`save`].
pub fn load(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| CkptError::BadContainer(format!("not utf-8: {e}")))?;
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| CkptError::BadContainer("missing container line".into()))?;
    let mut parts = header.split(' ');
    let magic = parts.next().unwrap_or_default();
    if magic != CKPT_MAGIC {
        return Err(CkptError::BadContainer(format!("bad magic {magic:?}")));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CkptError::BadContainer("missing version".into()))?;
    if version != CKPT_VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let declared = parts
        .next()
        .ok_or_else(|| CkptError::BadContainer("missing hash".into()))?
        .to_string();
    let body = body.strip_suffix('\n').unwrap_or(body);
    let actual = fnv1a128_hex(body.as_bytes());
    if actual != declared {
        return Err(CkptError::HashMismatch { declared, actual });
    }
    let root = parse(body)?;
    Ok(Checkpoint {
        version,
        hash: actual,
        root,
    })
}

/// Parse one canonical value rendering (the body of a checkpoint).
pub fn parse(text: &str) -> Result<Value, CkptError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(CkptError::Parse {
            offset: pos,
            message: "trailing bytes after value".into(),
        });
    }
    Ok(v)
}

fn parse_err(offset: usize, message: &str) -> CkptError {
    CkptError::Parse {
        offset,
        message: message.to_string(),
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, CkptError> {
    match b.get(*pos) {
        None => Err(parse_err(*pos, "unexpected end of input")),
        Some(b'n') => expect_lit(b, pos, "null", Value::Null),
        Some(b't') => expect_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => {
            // `f<16 hex>` (an f64) or the literal `false`.
            if b[*pos..].starts_with(b"false") {
                expect_lit(b, pos, "false", Value::Bool(false))
            } else {
                let start = *pos + 1;
                let end = start + 16;
                let hex = b
                    .get(start..end)
                    .ok_or_else(|| parse_err(*pos, "truncated f64 bits"))?;
                let hex = std::str::from_utf8(hex)
                    .map_err(|_| parse_err(start, "non-utf8 f64 bits"))?;
                let bits = u64::from_str_radix(hex, 16)
                    .map_err(|_| parse_err(start, "bad f64 hex bits"))?;
                *pos = end;
                Ok(Value::F64(bits))
            }
        }
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).unwrap_or_default();
            s.parse()
                .map(Value::U64)
                .map_err(|_| parse_err(start, "u64 out of range"))
        }
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::List(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::List(items));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(fields));
            }
            loop {
                let key = parse_string(b, pos)?;
                if b.get(*pos) != Some(&b':') {
                    return Err(parse_err(*pos, "expected ':'"));
                }
                *pos += 1;
                let v = parse_value(b, pos)?;
                fields.push((key, v));
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(fields));
                    }
                    _ => return Err(parse_err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(c) => Err(parse_err(*pos, &format!("unexpected byte {:?}", *c as char))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, CkptError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(parse_err(*pos, &format!("expected literal {lit:?}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, CkptError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(parse_err(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(parse_err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| parse_err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| parse_err(*pos, "bad \\u escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| parse_err(*pos, "bad \\u escape"))?;
                        out.push(
                            char::from_u32(cp)
                                .ok_or_else(|| parse_err(*pos, "invalid codepoint"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(parse_err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| parse_err(*pos, "non-utf8 string body"))?;
                let c = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// One divergent field between two checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// `/`-joined path of map keys and list indices down to the leaf.
    pub path: String,
    /// Rendering of the left side (`"<absent>"` when missing).
    pub left: String,
    /// Rendering of the right side (`"<absent>"` when missing).
    pub right: String,
}

/// Structural field-level diff of two state trees, depth-first in canonical
/// field order, capped at `limit` entries (0 = unlimited).
pub fn diff(a: &Value, b: &Value, limit: usize) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    diff_walk(a, b, &mut String::new(), &mut out, limit);
    out
}

fn diff_push(out: &mut Vec<DiffEntry>, path: &str, left: String, right: String, limit: usize) {
    if limit == 0 || out.len() < limit {
        out.push(DiffEntry {
            path: path.to_string(),
            left,
            right,
        });
    }
}

fn diff_full(out: &mut Vec<DiffEntry>, path: &str, a: &Value, b: &Value, limit: usize) {
    diff_push(out, path, a.display_leaf(), b.display_leaf(), limit);
}

fn diff_walk(a: &Value, b: &Value, path: &mut String, out: &mut Vec<DiffEntry>, limit: usize) {
    if limit != 0 && out.len() >= limit {
        return;
    }
    match (a, b) {
        (Value::Map(fa), Value::Map(fb)) => {
            let keys_a: Vec<&str> = fa.iter().map(|(k, _)| k.as_str()).collect();
            let keys_b: Vec<&str> = fb.iter().map(|(k, _)| k.as_str()).collect();
            if keys_a != keys_b {
                diff_push(
                    out,
                    path,
                    format!("map keys {keys_a:?}"),
                    format!("map keys {keys_b:?}"),
                    limit,
                );
                return;
            }
            for ((k, va), (_, vb)) in fa.iter().zip(fb.iter()) {
                let len = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(k);
                diff_walk(va, vb, path, out, limit);
                path.truncate(len);
            }
        }
        (Value::List(la), Value::List(lb)) => {
            if la.len() != lb.len() {
                diff_push(
                    out,
                    path,
                    format!("list len {}", la.len()),
                    format!("list len {}", lb.len()),
                    limit,
                );
                return;
            }
            for (i, (va, vb)) in la.iter().zip(lb.iter()).enumerate() {
                let len = path.len();
                if !path.is_empty() {
                    path.push('/');
                }
                let _ = write!(path, "{i}");
                diff_walk(va, vb, path, out, limit);
                path.truncate(len);
            }
        }
        (a, b) => {
            if a != b {
                diff_full(out, path, a, b, limit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::map()
            .field("time", Value::U64(12345))
            .field("pi", Value::f64(std::f64::consts::PI))
            .field("label", Value::str("office \"a\"\n"))
            .field("on", Value::Bool(true))
            .field("none", Value::Null)
            .field(
                "items",
                Value::List(vec![Value::U64(1), Value::f64(-0.0), Value::Bool(false)]),
            )
            .build()
    }

    #[test]
    fn encode_parse_roundtrip_exact() {
        let v = sample();
        let enc = v.encode();
        let back = parse(&enc).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.encode(), enc, "canonical form is a fixed point");
    }

    #[test]
    fn f64_bits_roundtrip_nan_and_negzero() {
        for bits in [f64::NAN.to_bits(), (-0.0f64).to_bits(), 0x7ff0000000000001] {
            let v = Value::F64(bits);
            let back = parse(&v.encode()).unwrap();
            assert_eq!(back, Value::F64(bits));
        }
    }

    #[test]
    fn container_roundtrip_and_hash_verification() {
        let v = sample();
        let bytes = save(&v);
        let ck = load(&bytes).unwrap();
        assert_eq!(ck.version, CKPT_VERSION);
        assert_eq!(ck.root, v);
        assert_eq!(ck.hash, state_hash(&v));
        // Flip one body byte: load must refuse.
        let mut corrupt = bytes.clone();
        let body_start = corrupt.iter().position(|&b| b == b'\n').unwrap() + 1;
        corrupt[body_start + 3] ^= 0x01;
        match load(&corrupt) {
            Err(CkptError::HashMismatch { .. }) => {}
            other => panic!("expected hash mismatch, got {other:?}"),
        }
    }

    #[test]
    fn load_rejects_bad_magic_and_version() {
        assert!(matches!(
            load(b"not-a-ckpt 1 00\n{}"),
            Err(CkptError::BadContainer(_))
        ));
        let v = sample();
        let body = v.encode();
        let hash = fnv1a128_hex(body.as_bytes());
        let bytes = format!("{CKPT_MAGIC} 999 {hash}\n{body}\n");
        assert!(matches!(
            load(bytes.as_bytes()),
            Err(CkptError::BadVersion(999))
        ));
    }

    #[test]
    fn diff_reports_first_divergent_path() {
        let a = sample();
        let mut b = sample();
        if let Value::Map(fields) = &mut b {
            fields[0].1 = Value::U64(54321);
            if let Value::List(items) = &mut fields[5].1 {
                items[0] = Value::U64(2);
            }
        }
        let d = diff(&a, &b, 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].path, "time");
        assert_eq!(d[0].left, "12345");
        assert_eq!(d[0].right, "54321");
        assert_eq!(d[1].path, "items/0");
        let capped = diff(&a, &b, 1);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn diff_of_identical_trees_is_empty() {
        assert!(diff(&sample(), &sample(), 0).is_empty());
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Pinned: the hash is part of the wire format.
        assert_eq!(
            fnv1a128_hex(b""),
            "6c62272e07bb014262b821756295c58d"
        );
        assert_ne!(fnv1a128_hex(b"a"), fnv1a128_hex(b"b"));
    }
}
