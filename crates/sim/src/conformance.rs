//! Runtime conformance checking: a violation sink plus pluggable invariants.
//!
//! The simulator's credibility rests on physics it never re-checks at run
//! time: airtime cannot exceed wall time, DCF transmissions cannot start
//! before DIFS expires, harvested energy cannot exceed incident energy. This
//! module is the substrate for asserting those properties *while the
//! simulation runs*, without contaminating any simulation API:
//!
//! * A thread-local **violation sink** ([`report`], [`take`],
//!   [`assert_clean`]) mirrors the [`crate::obs::metrics`] idiom: the harness
//!   (a test, the bench sweep engine, the fuzz driver) enables checking on
//!   its thread, the instrumented layers report into the sink as they go,
//!   and the harness collects afterwards. Nothing in the simulation reads
//!   the sink back, so enabling it cannot perturb results or determinism.
//! * A generic [`Invariant`] trait plus [`InvariantSuite`] runs periodic
//!   whole-world audits off the event queue itself (e.g. "per-channel busy
//!   time ≤ wall time" every 100 ms of sim time).
//!
//! Checks are compiled in but **off by default**; the hot paths pay one
//! thread-local boolean read when disabled.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use core::fmt;
use std::cell::{Cell, RefCell};

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier, e.g. `"dcf/difs"` or `"harvest/energy"`.
    pub rule: &'static str,
    /// Simulation time at which the violation was observed.
    pub at: SimTime,
    /// Human-readable detail (offending values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} at {}", self.rule, self.detail, self.at)
    }
}

/// Retain at most this many violations verbatim; beyond that only count.
/// A broken invariant in a saturated scenario can fire millions of times.
const MAX_RETAINED: usize = 64;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
    static LOG: RefCell<Vec<Violation>> = const { RefCell::new(Vec::new()) };
}

/// Whether conformance checking is enabled on this thread.
///
/// Instrumented layers gate their checks on this so disabled runs pay only
/// a thread-local boolean read.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Turn conformance checking on or off for this thread.
pub fn set_enabled(on: bool) {
    ENABLED.with(|c| c.set(on));
}

/// Clear this thread's recorded violations (the enabled flag is untouched).
pub fn reset() {
    COUNT.with(|c| c.set(0));
    LOG.with(|l| l.borrow_mut().clear());
}

/// Record a violation into this thread's sink.
///
/// Callers normally gate on [`enabled`] before doing the (possibly costly)
/// check itself; `report` records unconditionally so that explicit one-shot
/// checks can use the sink too.
pub fn report(rule: &'static str, at: SimTime, detail: String) {
    COUNT.with(|c| c.set(c.get().saturating_add(1)));
    LOG.with(|l| {
        let mut log = l.borrow_mut();
        if log.len() < MAX_RETAINED {
            log.push(Violation { rule, at, detail });
        }
    });
}

/// Total violations reported on this thread since the last [`reset`].
pub fn violation_count() -> u64 {
    COUNT.with(Cell::get)
}

/// Clone of the retained violations (at most the first 64).
pub fn violations() -> Vec<Violation> {
    LOG.with(|l| l.borrow().clone())
}

/// Drain the sink: returns `(total count, retained violations)` and clears
/// both. The enabled flag is untouched.
pub fn take() -> (u64, Vec<Violation>) {
    let count = COUNT.with(|c| c.replace(0));
    let log = LOG.with(|l| std::mem::take(&mut *l.borrow_mut()));
    (count, log)
}

/// Panic with a readable report if any violation was recorded.
///
/// `context` names the run being checked (test name, experiment point).
pub fn assert_clean(context: &str) {
    let (count, retained) = take();
    if count > 0 {
        let mut msg = format!("{context}: {count} conformance violation(s)\n");
        for v in &retained {
            msg.push_str(&format!("  {v}\n"));
        }
        if count as usize > retained.len() {
            msg.push_str(&format!(
                "  … and {} more\n",
                count as usize - retained.len()
            ));
        }
        panic!("{msg}");
    }
}

/// RAII scope for checked runs: construction resets the sink and enables
/// checking; drop disables it again (without asserting — call
/// [`assert_clean`] explicitly so failures carry a context string and are
/// not raised from a destructor during unwinding).
#[must_use = "checking stops when the guard drops"]
pub struct Guard {
    _priv: (),
}

/// Reset the sink and enable checking on this thread; returns the guard
/// that disables checking when dropped.
pub fn check() -> Guard {
    reset();
    set_enabled(true);
    Guard { _priv: () }
}

impl Drop for Guard {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

/// A whole-world invariant, audited periodically against world state.
///
/// Implementations either return `Err(detail)` for a single finding (the
/// suite reports it under [`Invariant::name`]) or call [`report`] directly
/// for multiple findings and return `Ok(())`.
pub trait Invariant<W> {
    /// Stable rule identifier used when reporting `Err` findings.
    fn name(&self) -> &'static str;
    /// Inspect the world at `now`; `Err` is reported as a violation.
    fn check(&mut self, world: &W, now: SimTime) -> Result<(), String>;
}

/// A set of invariants audited together on a repeating schedule.
pub struct InvariantSuite<W> {
    checks: Vec<Box<dyn Invariant<W>>>,
}

impl<W> Default for InvariantSuite<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> InvariantSuite<W> {
    /// An empty suite.
    pub fn new() -> InvariantSuite<W> {
        InvariantSuite { checks: Vec::new() }
    }

    /// Add an invariant to the suite.
    pub fn push(&mut self, inv: impl Invariant<W> + 'static) {
        self.checks.push(Box::new(inv));
    }

    /// Run every invariant once against `world` at `now`; returns the number
    /// of violations reported during the pass.
    pub fn run(&mut self, world: &W, now: SimTime) -> u64 {
        let before = violation_count();
        for inv in &mut self.checks {
            if let Err(detail) = inv.check(world, now) {
                report(inv.name(), now, detail);
            }
        }
        violation_count() - before
    }
}

impl<W: 'static> InvariantSuite<W> {
    /// Install the suite as a repeating audit event: first run at `first`,
    /// then every `period`, for as long as the queue keeps running. Works on
    /// a queue with any typed-event parameter `E` — audits are cold-path by
    /// design, so the closure API is the right fit here.
    ///
    /// The audit observes the world immutably through `&W` and writes only
    /// to the thread-local sink, so installing it cannot change simulation
    /// behavior — only add (deterministic) event-queue activity.
    pub fn install<E>(self, q: &mut EventQueue<W, E>, first: SimTime, period: SimDuration) {
        let suite = RefCell::new(self);
        // powifi-lint: allow(R8) — periodic cold-path audit, one closure per run
        q.schedule_repeating(first, period, move |w: &mut W, q| {
            suite.borrow_mut().run(w, q.now());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_counts_and_retains() {
        let _g = check();
        assert!(enabled());
        assert_eq!(violation_count(), 0);
        report("test/rule", SimTime::from_micros(3), "boom".into());
        assert_eq!(violation_count(), 1);
        let (n, v) = take();
        assert_eq!(n, 1);
        assert_eq!(v[0].rule, "test/rule");
        assert!(format!("{}", v[0]).contains("test/rule"));
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn retention_is_bounded_but_count_is_not() {
        let _g = check();
        for i in 0..200u64 {
            report("test/flood", SimTime::from_nanos(i), format!("v{i}"));
        }
        assert_eq!(violation_count(), 200);
        assert_eq!(violations().len(), MAX_RETAINED);
        reset();
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn guard_disables_on_drop() {
        {
            let _g = check();
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    #[should_panic(expected = "conformance violation")]
    fn assert_clean_panics_on_violation() {
        let _g = check();
        report("test/rule", SimTime::ZERO, "bad".into());
        assert_clean("assert_clean_panics_on_violation");
    }

    #[test]
    fn sink_is_per_thread() {
        let _g = check();
        report("test/rule", SimTime::ZERO, "here".into());
        std::thread::spawn(|| {
            assert!(!enabled());
            assert_eq!(violation_count(), 0);
        })
        .join()
        .unwrap();
        assert_eq!(violation_count(), 1);
        reset();
    }

    struct NonNegative;
    impl Invariant<i64> for NonNegative {
        fn name(&self) -> &'static str {
            "test/non-negative"
        }
        fn check(&mut self, world: &i64, _now: SimTime) -> Result<(), String> {
            if *world < 0 {
                Err(format!("world is {world}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn suite_reports_err_under_invariant_name() {
        let _g = check();
        let mut suite = InvariantSuite::new();
        suite.push(NonNegative);
        assert_eq!(suite.run(&5, SimTime::ZERO), 0);
        assert_eq!(suite.run(&-2, SimTime::from_micros(1)), 1);
        let (n, v) = take();
        assert_eq!(n, 1);
        assert_eq!(v[0].rule, "test/non-negative");
        assert!(v[0].detail.contains("-2"));
    }

    #[test]
    fn installed_suite_audits_periodically() {
        let _g = check();
        let mut q = EventQueue::<i64>::new();
        let mut suite = InvariantSuite::new();
        suite.push(NonNegative);
        suite.install(&mut q, SimTime::ZERO, SimDuration::from_millis(1));
        // World turns negative at t = 2.5 ms and stays there.
        q.schedule_at(SimTime::from_micros(2_500), |w: &mut i64, _| *w = -1);
        let mut w = 1i64;
        q.run_until(&mut w, SimTime::from_micros(5_500));
        // Audits at 0, 1, 2 ms pass; 3, 4, 5 ms fail.
        assert_eq!(violation_count(), 3);
        reset();
    }
}
