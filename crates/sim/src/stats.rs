//! Measurement primitives: running moments, CDFs, time-weighted averages and
//! binned throughput — the quantities every figure in the paper reports.

use crate::time::{SimDuration, SimTime};

/// Running mean/variance/min/max using Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN-free input assumed; +inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Empirical distribution: stores samples, answers percentile/CDF queries.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Empty distribution.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Bulk add.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.samples.extend(xs);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // A NaN sample means an upstream computation corrupted the
            // stats; fail loudly instead of letting total_cmp tuck NaNs at
            // the end and quietly poison every quantile.
            assert!(
                !self.samples.iter().any(|s| s.is_nan()),
                "NaN sample in CDF"
            );
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// Value at quantile `q` in `[0, 1]` (nearest-rank). Panics if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        self.ensure_sorted();
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Median shortcut.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.partition_point(|&s| s <= x);
        n as f64 / self.samples.len() as f64
    }

    /// The full empirical CDF as `(value, cumulative_fraction)` pairs,
    /// one point per sample — what the paper's CDF figures plot.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Borrow the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_value: f64,
    last_time: SimTime,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            last_value: v0,
            last_time: t0,
            weighted_sum: 0.0,
            start: t0,
            max: v0,
        }
    }

    /// Record that the signal changed to `v` at time `t` (must be monotonic).
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_time, "time went backwards");
        self.weighted_sum += self.last_value * t.duration_since(self.last_time).as_secs_f64();
        self.last_value = v;
        self.last_time = t;
        self.max = self.max.max(v);
    }

    /// Time-weighted mean over `[start, t]`.
    pub fn mean_at(&self, t: SimTime) -> f64 {
        let total = t.duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let sum =
            self.weighted_sum + self.last_value * t.duration_since(self.last_time).as_secs_f64();
        sum / total
    }

    /// Largest value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Current value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// Byte counter binned into fixed intervals; yields per-interval throughput.
/// The paper computes iperf throughput "over 500 ms intervals" — this is that.
#[derive(Debug, Clone)]
pub struct BinnedThroughput {
    bin: SimDuration,
    bins: Vec<u64>, // bytes per bin
}

impl BinnedThroughput {
    /// Counter with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero());
        BinnedThroughput {
            bin,
            bins: Vec::new(),
        }
    }

    /// Record `bytes` delivered at time `t`.
    pub fn record(&mut self, t: SimTime, bytes: u64) {
        let idx = (t.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += bytes;
    }

    /// Per-bin throughput in Mbit/s.
    pub fn mbps_per_bin(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.bins
            .iter()
            .map(|&b| b as f64 * 8.0 / 1e6 / secs)
            .collect()
    }

    /// Mean throughput in Mbit/s across bins observed so far (0 if none).
    pub fn mean_mbps(&self) -> f64 {
        let v = self.mbps_per_bin();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Checkpoint view: `(bin_width, bytes per bin)`.
    pub fn ckpt_state(&self) -> (SimDuration, &[u64]) {
        (self.bin, &self.bins)
    }

    /// Rebuild from a checkpointed [`BinnedThroughput::ckpt_state`].
    pub fn from_ckpt_state(bin: SimDuration, bins: Vec<u64>) -> Self {
        assert!(!bin.is_zero());
        BinnedThroughput { bin, bins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn cdf_quantiles() {
        let mut c = Cdf::new();
        c.extend((1..=100).map(|i| i as f64));
        assert_eq!(c.median(), 50.0);
        assert_eq!(c.quantile(0.95), 95.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert!((c.fraction_below(25.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut c = Cdf::new();
        c.extend([3.0, 1.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(1), 10.0); // 0 for 1s
        tw.set(SimTime::from_secs(3), 0.0); // 10 for 2s
        let mean = tw.mean_at(SimTime::from_secs(4)); // 0 for 1s more
        assert!((mean - 5.0).abs() < 1e-12, "mean {mean}");
        assert_eq!(tw.max(), 10.0);
    }

    #[test]
    fn binned_throughput() {
        let mut b = BinnedThroughput::new(SimDuration::from_millis(500));
        // 1 Mbit in the first bin, 2 Mbit in the third.
        b.record(SimTime::from_millis(100), 125_000);
        b.record(SimTime::from_millis(1200), 250_000);
        let v = b.mbps_per_bin();
        assert_eq!(v.len(), 3);
        assert!((v[0] - 2.0).abs() < 1e-9); // 1 Mbit / 0.5 s
        assert!((v[1]).abs() < 1e-9);
        assert!((v[2] - 4.0).abs() < 1e-9);
        assert_eq!(b.total_bytes(), 375_000);
    }
}
