//! Streaming telemetry: the framed NDJSON wire layer behind `powifi-fleetd`.
//!
//! A *stream* is a sequence of one-line JSON frames:
//!
//! * exactly one **session header** first —
//!   `{"powifi_stream":1,"run_id":…,"seed":…,"git_sha":…}`;
//! * then **records**, each `{"seq":N,"deployment":…,"kind":…,"t":ns,…}`
//!   with a monotonically increasing session-wide `seq` assigned at the
//!   egress queue (the single serialization point), so a consumer detects
//!   loss as a gap. Record kinds are `metrics` (a full
//!   [`MetricsSnapshot`] at a sim-time epoch boundary), `trace` (one
//!   [`trace::TraceRecord`]), `progress` (cumulative per-shard counters
//!   from the sharded city runtime, tagged with `shard`), `ckpt` (a
//!   checkpoint was written: the epoch it covers plus the content hash of
//!   the state tree, so consumers can correlate resume points with the
//!   telemetry timeline), and `end` (the deployment finished; carries the
//!   final drop counter).
//!
//! ## Backpressure: drop-with-counter, never block
//!
//! Producers sit on the simulation hot path, consumers are TCP clients of
//! unknown speed. The [`Egress`] queue is bounded: when it is full the
//! record is *dropped* and counted — into [`Egress::dropped`] and the
//! [`metrics::keys::OBS_STREAM_DROPPED`] counter — and the push returns
//! immediately. A dropped record still consumes a `seq`, so the loss is
//! visible on the wire as a sequence gap. The event loop therefore never
//! waits on a slow consumer; at the default queue depth
//! ([`DEFAULT_QUEUE_CAP`]) a loopback consumer keeps up with zero drops
//! (the integration tests pin this).
//!
//! ## Determinism
//!
//! Everything timestamped is sim time; nothing here reads a wall clock.
//! Interleaving *across* deployments on the wire is scheduling-dependent,
//! but each deployment's subsequence is emitted by one worker thread in
//! sim-time order, and the aggregation layer ([`super::agg`]) reduces any
//! interleaving of the same records to byte-identical output.
//!
//! This module is the one place in the simulation crates allowed to touch
//! `std::net` (lint rule R13 `socket-outside-stream`): [`tcp_egress`]
//! connects a stream to a TCP consumer and drains it from a writer thread.

use super::metrics::{self, MetricsSnapshot};
use super::trace::TraceRecord;
use crate::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Wire-format version, first field of the session header.
pub const WIRE_VERSION: u64 = 1;

/// Default bound of an [`Egress`] queue, in records. Sized so a loopback
/// consumer never drops: deep enough to absorb a full burst of per-epoch
/// snapshots from every deployment of a fleet between consumer reads.
pub const DEFAULT_QUEUE_CAP: usize = 4096;

/// Lock a mutex without unwrap: a poisoned stream queue only means a
/// panicking producer thread died mid-push; the data is a queue of rendered
/// lines, always structurally valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// JSON string escaping matching the vendored `serde_json`.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Identity of one streaming session, rendered as the header line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// Run identifier chosen by the server (e.g. `fleet-<seed>`).
    pub run_id: String,
    /// Experiment root seed every deployment seed derives from.
    pub seed: u64,
    /// Git commit the server was built from (`unknown` outside a checkout).
    pub git_sha: String,
}

impl SessionInfo {
    /// Render the one-line session header.
    pub fn header_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"powifi_stream\":{WIRE_VERSION},\"run_id\":");
        push_json_str(&mut out, &self.run_id);
        let _ = write!(out, ",\"seed\":{},\"git_sha\":", self.seed);
        push_json_str(&mut out, &self.git_sha);
        out.push('}');
        out
    }
}

/// What happened to a record offered to an [`Egress`] queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued for the consumer.
    Queued,
    /// Queue full — dropped and counted; its `seq` is a wire-visible gap.
    Dropped,
}

#[derive(Debug, Default)]
struct EgressState {
    queue: VecDeque<String>,
    seq: u64,
    dropped: u64,
    peak_depth: usize,
    closed: bool,
}

/// The bounded, non-blocking egress queue between simulation threads and
/// one stream consumer. `push_record` assigns the session-wide `seq` and
/// never blocks; `pop_wait`/`drain_nonblocking` feed the consumer side.
#[derive(Debug)]
pub struct Egress {
    cap: usize,
    state: Mutex<EgressState>,
    ready: Condvar,
}

impl Egress {
    /// A queue bounded at `cap` records (clamped to at least 1).
    pub fn new(cap: usize) -> Arc<Egress> {
        Arc::new(Egress {
            cap: cap.max(1),
            state: Mutex::new(EgressState::default()),
            ready: Condvar::new(),
        })
    }

    /// A queue with the default bound.
    pub fn with_default_cap() -> Arc<Egress> {
        Egress::new(DEFAULT_QUEUE_CAP)
    }

    /// Offer one record body (a JSON object string starting with `{`). The
    /// assigned `seq` is spliced in as the first field. Never blocks: on a
    /// full queue the record is dropped, the drop counters advance, and the
    /// seq is consumed anyway so the gap shows on the wire.
    pub fn push_record(&self, body: &str) -> PushOutcome {
        let line = |seq: u64| {
            let mut out = String::with_capacity(body.len() + 16);
            let _ = write!(out, "{{\"seq\":{seq},");
            out.push_str(body.strip_prefix('{').unwrap_or(body));
            out
        };
        let outcome = {
            let mut st = lock(&self.state);
            let seq = st.seq;
            st.seq += 1;
            if st.closed || st.queue.len() >= self.cap {
                st.dropped += 1;
                PushOutcome::Dropped
            } else {
                st.queue.push_back(line(seq));
                st.peak_depth = st.peak_depth.max(st.queue.len());
                PushOutcome::Queued
            }
        };
        if outcome == PushOutcome::Queued {
            self.ready.notify_one();
        } else {
            metrics::counter(metrics::keys::OBS_STREAM_DROPPED).inc();
        }
        outcome
    }

    /// Enqueue a pre-rendered line verbatim (no seq assigned) — used for
    /// the session header. Subject to the same bound and drop policy.
    pub fn push_raw(&self, line: &str) -> PushOutcome {
        let outcome = {
            let mut st = lock(&self.state);
            if st.closed || st.queue.len() >= self.cap {
                st.dropped += 1;
                PushOutcome::Dropped
            } else {
                st.queue.push_back(line.to_string());
                st.peak_depth = st.peak_depth.max(st.queue.len());
                PushOutcome::Queued
            }
        };
        if outcome == PushOutcome::Queued {
            self.ready.notify_one();
        }
        outcome
    }

    /// Consumer side: block until a line is available or the queue is
    /// closed *and* drained; `None` means end of stream.
    pub fn pop_wait(&self) -> Option<String> {
        let mut st = lock(&self.state);
        loop {
            if let Some(line) = st.queue.pop_front() {
                return Some(line);
            }
            if st.closed {
                return None;
            }
            st = match self.ready.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Consumer side: move everything currently queued into `out` without
    /// blocking. Returns `false` once the queue is closed and drained.
    pub fn drain_nonblocking(&self, out: &mut Vec<String>) -> bool {
        let mut st = lock(&self.state);
        while let Some(line) = st.queue.pop_front() {
            out.push(line);
        }
        !st.closed
    }

    /// Close the queue: producers drop everything from now on, consumers
    /// drain what is left and then see end-of-stream.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Records dropped so far (full queue or pushes after close).
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }

    /// Deepest the queue has been, in records.
    pub fn peak_depth(&self) -> usize {
        lock(&self.state).peak_depth
    }

    /// Records currently queued (consumer lag right now).
    pub fn depth(&self) -> usize {
        lock(&self.state).queue.len()
    }

    /// Next sequence number to be assigned (== records offered so far).
    pub fn next_seq(&self) -> u64 {
        lock(&self.state).seq
    }
}

/// A producer's bound stream: the shared egress plus this producer's
/// deployment tag. Clone freely — worker threads of one deployment (city
/// shards) share the egress and tag.
#[derive(Clone)]
pub struct Handle {
    egress: Arc<Egress>,
    deployment: String,
}

impl Handle {
    /// Bind `deployment`'s records to `egress`.
    pub fn new(egress: Arc<Egress>, deployment: impl Into<String>) -> Handle {
        Handle {
            egress,
            deployment: deployment.into(),
        }
    }

    /// The deployment tag carried on every record.
    pub fn deployment(&self) -> &str {
        &self.deployment
    }

    /// The shared egress queue.
    pub fn egress(&self) -> &Arc<Egress> {
        &self.egress
    }

    fn body_prefix(&self, kind: &str, t: SimTime) -> String {
        let mut out = String::new();
        out.push_str("{\"deployment\":");
        push_json_str(&mut out, &self.deployment);
        out.push_str(",\"kind\":");
        push_json_str(&mut out, kind);
        let _ = write!(out, ",\"t\":{}", t.as_nanos());
        out
    }

    /// Emit a `metrics` record: the full registry snapshot at sim time `t`.
    pub fn emit_metrics(&self, t: SimTime, snapshot: &MetricsSnapshot) -> PushOutcome {
        let mut body = self.body_prefix("metrics", t);
        body.push_str(",\"metrics\":");
        body.push_str(&snapshot.to_json());
        body.push('}');
        self.egress.push_record(&body)
    }

    /// Emit a `trace` record wrapping one structured trace event.
    pub fn emit_trace(&self, rec: &TraceRecord) -> PushOutcome {
        let mut body = self.body_prefix("trace", rec.at);
        body.push_str(",\"trace\":");
        body.push_str(&rec.to_json_line());
        body.push('}');
        self.egress.push_record(&body)
    }

    /// Emit a `progress` record: cumulative counters at sim time `t`,
    /// optionally tagged with the city shard that produced them. `fields`
    /// must be pre-sorted by name if byte-stable output matters to the
    /// caller; the sharded runtime passes a fixed literal list.
    pub fn emit_progress(
        &self,
        t: SimTime,
        shard: Option<u64>,
        fields: &[(&str, u64)],
    ) -> PushOutcome {
        let mut body = self.body_prefix("progress", t);
        if let Some(s) = shard {
            let _ = write!(body, ",\"shard\":{s}");
        }
        body.push_str(",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_str(&mut body, k);
            let _ = write!(body, ":{v}");
        }
        body.push_str("}}");
        self.egress.push_record(&body)
    }

    /// Emit a `ckpt` record: a checkpoint (or, for city shards, a state
    /// hash) was taken at sim time `t`, covering `epoch` epochs, with
    /// content hash `hash` (the 32-hex digest from `ckpt::state_hash`).
    /// `shard: Some(s)` tags the record with the city shard it covers, the
    /// same tagging as `progress` records; live fleets detect divergence by
    /// comparing these hashes at equal `(deployment, shard, epoch)` keys.
    pub fn emit_ckpt(
        &self,
        t: SimTime,
        shard: Option<u64>,
        epoch: u64,
        hash: &str,
    ) -> PushOutcome {
        let mut body = self.body_prefix("ckpt", t);
        if let Some(s) = shard {
            let _ = write!(body, ",\"shard\":{s}");
        }
        let _ = write!(body, ",\"epoch\":{epoch},\"hash\":");
        push_json_str(&mut body, hash);
        body.push('}');
        self.egress.push_record(&body)
    }

    /// Emit the deployment's `end` record, carrying the egress drop total
    /// at emission time.
    pub fn emit_end(&self, t: SimTime) -> PushOutcome {
        let mut body = self.body_prefix("end", t);
        let _ = write!(body, ",\"dropped\":{}}}", self.egress.dropped());
        self.egress.push_record(&body)
    }
}

thread_local! {
    /// One-branch fast check, mirroring `trace::ENABLED`.
    static ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
    /// Last sim time an epoch mark fired at, for end-of-run records.
    static LAST_MARK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Is a stream handle installed on this thread? One branch when off.
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Install `handle` as this thread's stream; returns the previous one.
/// The harness (bench runner, fleetd worker) owns install/uninstall, like
/// trace sinks.
pub fn install(handle: Handle) -> Option<Handle> {
    ACTIVE.with(|a| a.set(true));
    LAST_MARK.with(|m| m.set(0));
    CURRENT.with(|c| c.borrow_mut().replace(handle))
}

/// Remove and return this thread's stream handle.
pub fn uninstall() -> Option<Handle> {
    ACTIVE.with(|a| a.set(false));
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Clone this thread's handle (for propagating to worker threads, e.g. the
/// sharded city runtime's scoped workers).
pub fn handle() -> Option<Handle> {
    if !active() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Epoch mark: if a stream is installed on this thread, snapshot the
/// metrics registry and emit it as a `metrics` record at sim time `t`.
/// This is the emitter the epoch-stepped deployment runners drive; when no
/// stream is installed it costs one branch.
pub fn epoch_mark(t: SimTime) {
    if !active() {
        return;
    }
    LAST_MARK.with(|m| m.set(m.get().max(t.as_nanos())));
    if let Some(h) = handle() {
        // Record this sink's consumer lag first so it rides in the snapshot
        // (`obs.stream.queue_depth`, alongside the `obs.stream.dropped`
        // counter the egress bumps on overflow). The gauge is the *peak*
        // depth since the stream opened, not the instantaneous depth: an
        // epoch boundary is the quietest moment of the cycle, so sampling
        // `depth()` here systematically under-reports how close the queue
        // came to overflow mid-epoch.
        metrics::gauge(metrics::keys::OBS_STREAM_QUEUE_DEPTH).set(h.egress().peak_depth() as f64);
        h.emit_metrics(t, &metrics::snapshot());
    }
}

/// Checkpoint mark: if a stream is installed on this thread, emit a `ckpt`
/// record announcing that a checkpoint with content hash `hash` was
/// written at sim time `t` covering `epoch` epochs. One branch when no
/// stream is installed.
pub fn ckpt_mark(t: SimTime, epoch: u64, hash: &str) {
    if !active() {
        return;
    }
    LAST_MARK.with(|m| m.set(m.get().max(t.as_nanos())));
    if let Some(h) = handle() {
        h.emit_ckpt(t, None, epoch, hash);
    }
}

/// Finish this thread's deployment: emit a final `metrics` record plus the
/// `end` record at the greater of `t` and the last epoch mark, then
/// uninstall. No-op without an installed stream.
pub fn finish(t: SimTime) {
    if !active() {
        return;
    }
    let last = LAST_MARK.with(|m| m.get());
    let at = SimTime::from_nanos(last.max(t.as_nanos()));
    if let Some(h) = uninstall() {
        h.emit_metrics(at, &metrics::snapshot());
        h.emit_end(at);
    }
}

/// Decides when sim time crosses snapshot boundaries: `poll(now)` returns
/// every epoch boundary in `(last, now]`, so a coarse stepper still emits
/// each intermediate epoch deterministically.
#[derive(Debug, Clone)]
pub struct EpochTicker {
    every_ns: u64,
    next_ns: u64,
}

impl EpochTicker {
    /// Tick every `every` of sim time, first boundary at `every`.
    pub fn new(every: crate::SimDuration) -> EpochTicker {
        let every_ns = every.as_nanos().max(1);
        EpochTicker {
            every_ns,
            next_ns: every_ns,
        }
    }

    /// All boundaries crossed advancing to `now` (ascending, possibly
    /// empty); the ticker advances past them.
    pub fn poll(&mut self, now: SimTime) -> Vec<SimTime> {
        let mut crossed = Vec::new();
        while self.next_ns <= now.as_nanos() {
            crossed.push(SimTime::from_nanos(self.next_ns));
            self.next_ns += self.every_ns;
        }
        crossed
    }
}

/// Spawn the writer thread draining `egress` into `writer` line by line
/// until the queue closes (or the peer goes away — write errors close the
/// queue so producers start dropping instead of filling a dead buffer).
/// Join the returned handle after [`Egress::close`] to flush.
///
/// Generic over the writer so captures can go to files in tests; the TCP
/// entry point is [`tcp_egress`].
pub fn spawn_writer(
    egress: Arc<Egress>,
    mut writer: impl std::io::Write + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while let Some(line) = egress.pop_wait() {
            if writer.write_all(line.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                egress.close();
                return;
            }
        }
        let _ = writer.flush();
    })
}

/// Connect to a stream consumer at `addr` (e.g. the address a
/// `powifi-fleet record` listener printed), write the session header, and
/// spawn the writer thread. This is the sanctioned socket touchpoint of
/// the sim crates (lint R13).
pub fn tcp_egress(
    addr: &str,
    session: &SessionInfo,
    cap: usize,
) -> std::io::Result<(Arc<Egress>, std::thread::JoinHandle<()>)> {
    let stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let egress = Egress::new(cap);
    egress.push_raw(&session.header_line());
    let join = spawn_writer(Arc::clone(&egress), std::io::BufWriter::new(stream));
    Ok((egress, join))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn header_line_is_stable() {
        let s = SessionInfo {
            run_id: "fleet-42".into(),
            seed: 42,
            git_sha: "deadbeef".into(),
        };
        assert_eq!(
            s.header_line(),
            "{\"powifi_stream\":1,\"run_id\":\"fleet-42\",\"seed\":42,\"git_sha\":\"deadbeef\"}"
        );
    }

    #[test]
    fn records_are_seq_numbered_in_order() {
        let eg = Egress::new(8);
        let h = Handle::new(Arc::clone(&eg), "d0");
        h.emit_progress(SimTime::from_secs(1), None, &[("events", 10)]);
        h.emit_progress(SimTime::from_secs(2), Some(3), &[("events", 20)]);
        h.emit_end(SimTime::from_secs(2));
        eg.close();
        let mut lines = Vec::new();
        while let Some(l) = eg.pop_wait() {
            lines.push(l);
        }
        assert_eq!(
            lines,
            vec![
                "{\"seq\":0,\"deployment\":\"d0\",\"kind\":\"progress\",\"t\":1000000000,\
                 \"fields\":{\"events\":10}}",
                "{\"seq\":1,\"deployment\":\"d0\",\"kind\":\"progress\",\"t\":2000000000,\
                 \"shard\":3,\"fields\":{\"events\":20}}",
                "{\"seq\":2,\"deployment\":\"d0\",\"kind\":\"end\",\"t\":2000000000,\
                 \"dropped\":0}",
            ]
        );
    }

    #[test]
    fn overflow_drops_with_counter_and_consumes_seq() {
        metrics::reset();
        let eg = Egress::new(2);
        let h = Handle::new(Arc::clone(&eg), "d");
        for i in 0..5u64 {
            h.emit_progress(SimTime::from_nanos(i), None, &[("i", i)]);
        }
        assert_eq!(eg.dropped(), 3);
        assert_eq!(eg.next_seq(), 5, "dropped records still consume seqs");
        assert_eq!(eg.peak_depth(), 2);
        assert_eq!(
            metrics::snapshot().counter(metrics::keys::OBS_STREAM_DROPPED),
            3
        );
        eg.close();
        let first = eg.pop_wait().unwrap_or_default();
        assert!(first.starts_with("{\"seq\":0,"), "{first}");
        metrics::reset();
    }

    #[test]
    fn metrics_record_embeds_snapshot_json() {
        metrics::reset();
        metrics::counter("t.x").add(7);
        let eg = Egress::new(8);
        let h = Handle::new(Arc::clone(&eg), "dep");
        h.emit_metrics(SimTime::from_millis(5), &metrics::snapshot());
        eg.close();
        let line = eg.pop_wait().unwrap_or_default();
        assert!(
            line.contains(
                "\"kind\":\"metrics\",\"t\":5000000,\"metrics\":{\"counters\":{\"t.x\":7}"
            ),
            "{line}"
        );
        metrics::reset();
    }

    #[test]
    fn thread_local_install_and_epoch_mark() {
        metrics::reset();
        assert!(!active());
        epoch_mark(SimTime::from_secs(1)); // no-op without a handle
        let eg = Egress::new(8);
        install(Handle::new(Arc::clone(&eg), "d0"));
        assert!(active());
        metrics::counter("t.e").add(1);
        epoch_mark(SimTime::from_secs(1));
        finish(SimTime::from_secs(2));
        assert!(!active());
        eg.close();
        let mut lines = Vec::new();
        while let Some(l) = eg.pop_wait() {
            lines.push(l);
        }
        assert_eq!(
            lines.len(),
            3,
            "epoch metrics + final metrics + end: {lines:?}"
        );
        assert!(
            lines[2].contains("\"kind\":\"end\",\"t\":2000000000"),
            "{:?}",
            lines[2]
        );
        metrics::reset();
    }

    #[test]
    fn ckpt_record_carries_epoch_and_hash() {
        let eg = Egress::new(8);
        let h = Handle::new(Arc::clone(&eg), "d0");
        h.emit_ckpt(
            SimTime::from_secs(3),
            None,
            3,
            "6c62272e07bb014262b821756295c58d",
        );
        h.emit_ckpt(SimTime::from_secs(3), Some(7), 3, "ff");
        eg.close();
        let line = eg.pop_wait().unwrap_or_default();
        assert_eq!(
            line,
            "{\"seq\":0,\"deployment\":\"d0\",\"kind\":\"ckpt\",\"t\":3000000000,\
             \"epoch\":3,\"hash\":\"6c62272e07bb014262b821756295c58d\"}"
        );
        let shard_line = eg.pop_wait().unwrap_or_default();
        assert_eq!(
            shard_line,
            "{\"seq\":1,\"deployment\":\"d0\",\"kind\":\"ckpt\",\"t\":3000000000,\
             \"shard\":7,\"epoch\":3,\"hash\":\"ff\"}"
        );
    }

    #[test]
    fn ckpt_mark_is_noop_without_handle_and_emits_with_one() {
        assert!(!active());
        ckpt_mark(SimTime::from_secs(1), 1, "ff"); // no-op without a handle
        let eg = Egress::new(8);
        install(Handle::new(Arc::clone(&eg), "d0"));
        ckpt_mark(SimTime::from_secs(1), 1, "ff");
        uninstall();
        eg.close();
        let line = eg.pop_wait().unwrap_or_default();
        assert!(
            line.contains("\"kind\":\"ckpt\",\"t\":1000000000,\"epoch\":1,\"hash\":\"ff\""),
            "{line}"
        );
    }

    #[test]
    fn epoch_ticker_reports_every_crossed_boundary() {
        let mut t = EpochTicker::new(SimDuration::from_secs(1));
        assert!(t.poll(SimTime::from_millis(900)).is_empty());
        let crossed = t.poll(SimTime::from_millis(3500));
        assert_eq!(
            crossed,
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
        assert!(t.poll(SimTime::from_millis(3600)).is_empty());
    }

    #[test]
    fn writer_thread_drains_to_buffer() {
        let eg = Egress::new(8);
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        struct Chan(std::sync::mpsc::Sender<Vec<u8>>, Vec<u8>);
        impl std::io::Write for Chan {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.1.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.send(std::mem::take(&mut self.1)).ok();
                Ok(())
            }
        }
        let join = spawn_writer(Arc::clone(&eg), Chan(tx, Vec::new()));
        let h = Handle::new(Arc::clone(&eg), "d");
        h.emit_end(SimTime::ZERO);
        eg.close();
        join.join().ok();
        let bytes = rx.recv().unwrap_or_default();
        let text = String::from_utf8_lossy(&bytes);
        assert_eq!(
            text,
            "{\"seq\":0,\"deployment\":\"d\",\"kind\":\"end\",\"t\":0,\"dropped\":0}\n"
        );
    }
}
