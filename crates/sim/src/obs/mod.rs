//! Deterministic observability: metrics registry, structured traces, and a
//! hierarchical span profiler ([`prof`]).
//!
//! The paper's router *is* an observability loop — it meters per-channel
//! occupancy with the tshark airtime formula and gates power packets on live
//! transmit-queue depth (§3.1, Fig. 5). This module gives the simulator the
//! matching instrumentation: a [`metrics`] registry of named counters,
//! gauges and histograms, and a [`trace`] subsystem of typed, sim-time-
//! stamped [`trace::TraceEvent`] records emitted through a pluggable
//! [`trace::TraceSink`].
//!
//! Both halves follow the same thread-local idiom as
//! [`crate::conformance`]: the harness enables them on the worker thread
//! that runs a point, the simulation layers record into the current
//! thread's state as they go, and *nothing in the simulation reads any of
//! it back* — so observability can never perturb results or determinism.
//! Records are stamped with [`crate::SimTime`] (never the wall clock, which
//! lint rule R2 forbids in sim crates), so rendered output is byte-identical
//! at any `--jobs` level and across debug/release builds.
//!
//! Hot-path cost when disabled is one branch: instrumented code checks
//! [`trace::enabled`] before building an event, and the metrics registry is
//! only written at run boundaries (end-of-run totals, batched event counts).
//!
//! Batch artifacts are not the whole story: [`stream`] frames live
//! metrics/trace/progress records as NDJSON over a bounded non-blocking
//! egress (overflow drops-with-counter, never blocks the event loop), and
//! [`agg`] rolls any such stream — live socket or recorded capture — into
//! deterministic tumbling sim-time windows. `powifi-fleetd` serves multiple
//! deployments over one TCP listener; `powifi-fleet` watches, records and
//! aggregates them.
//!
//! See `docs/OBSERVABILITY.md` for the full event catalogue, the
//! `powifi-trace` inspector, and the streaming wire format.

pub mod agg;
pub mod metrics;
pub mod prof;
pub mod stream;
pub mod trace;
