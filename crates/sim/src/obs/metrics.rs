//! Per-run metrics registry: named counters, gauges and histograms.
//!
//! The registry is a thread-local, BTree-backed map from static metric
//! names to values. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! plain name wrappers — cheap to construct at the recording site, with no
//! global registration step — and every write lands in the *current
//! thread's* registry. The bench sweep engine calls [`reset`] before and
//! [`snapshot`] after each experiment point (both on the worker thread that
//! runs it), so per-point metrics are isolated even under work stealing.
//!
//! Snapshots render as stable JSON ([`MetricsSnapshot::to_json`]): BTree
//! ordering plus the same shortest-roundtrip float formatting as the
//! vendored `serde_json`, so the bytes are identical at any `--jobs` level.
//!
//! This module replaces and subsumes the ad-hoc `telemetry` counters of
//! early PRs: the legacy `events` / `frames` / `occupancy` triple lives
//! here under the well-known names in [`keys`] (the deprecated shim has
//! been removed).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Well-known metric names recorded by the simulation layers.
pub mod keys {
    /// Events executed by [`crate::EventQueue::run_until`] (counter).
    pub const SIM_EVENTS: &str = "sim.events";
    /// Total MAC frames sent over the run (counter).
    pub const MAC_FRAMES: &str = "mac.frames_sent";
    /// MAC collisions over the run (counter).
    pub const MAC_COLLISIONS: &str = "mac.collisions";
    /// MAC retransmissions over the run (counter).
    pub const MAC_RETRANSMISSIONS: &str = "mac.retransmissions";
    /// MAC frames dropped at enqueue because the queue was full (counter).
    pub const MAC_QUEUE_DROPS: &str = "mac.queue_drops";
    /// Final cumulative tracked-station occupancy, 0..=1 (gauge).
    pub const MAC_OCCUPANCY: &str = "mac.occupancy";
    /// Power packets admitted by the injector gate (counter).
    pub const CORE_POWER_SENT: &str = "core.power_sent";
    /// Power packets dropped by the injector gate (counter).
    pub const CORE_POWER_GATED: &str = "core.power_gated";
    /// Harvester output-switch turn-ons (cold starts) (counter).
    pub const HARVEST_COLD_STARTS: &str = "harvest.cold_starts";
    /// Harvester output-switch turn-offs (brownouts) (counter).
    pub const HARVEST_BROWNOUTS: &str = "harvest.brownouts";
    /// TCP retransmission timeouts fired (counter).
    pub const NET_TCP_RTO: &str = "net.tcp_rto";
    /// TCP fast retransmits triggered (counter).
    pub const NET_TCP_FAST_RETRANSMIT: &str = "net.tcp_fast_retransmit";
    /// Shards the city partitioner produced for the run (gauge).
    pub const CITY_SHARDS: &str = "city.shards";
    /// Networks per shard (histogram over shards).
    pub const CITY_SHARD_NETWORKS: &str = "city.shard_networks";
    /// Events executed per shard (histogram over shards).
    pub const CITY_SHARD_EVENTS: &str = "city.shard_events";
    /// Inter-group couplings whose endpoints sit in different shards
    /// (counter).
    pub const CITY_BOUNDARY_LINKS: &str = "city.boundary_links";
    /// Boundary export records published across all epoch barriers (counter).
    pub const CITY_BOUNDARY_EXPORTS: &str = "city.boundary_exports";
    /// Epoch barriers executed by the city runtime (counter).
    pub const CITY_EPOCHS: &str = "city.epochs";
    /// Stream records dropped by a bounded egress queue because the
    /// consumer fell behind (counter; see [`crate::obs::stream`]).
    pub const OBS_STREAM_DROPPED: &str = "obs.stream.dropped";
    /// Peak depth the egress queue reached over the run (gauge).
    pub const OBS_STREAM_QUEUE_DEPTH: &str = "obs.stream.queue_depth";
    /// Cumulative MAC frames sent at the last progress mark (gauge; set by
    /// `Mac::record_progress_metrics` at stream epochs).
    pub const MAC_LIVE_FRAMES: &str = "mac.live.frames";
    /// Cumulative MAC retransmissions at the last progress mark (gauge).
    pub const MAC_LIVE_RETRANSMISSIONS: &str = "mac.live.retransmissions";
    /// Cumulative corrupted frames at the last progress mark (gauge).
    pub const MAC_LIVE_CORRUPTED: &str = "mac.live.corrupted";
    /// Cumulative busy airtime in ns, summed over mediums, at the last
    /// progress mark (gauge).
    pub const MAC_LIVE_BUSY_NS: &str = "mac.live.busy_ns";
    /// Cumulative power packets admitted by an injector gate at the last
    /// progress mark (gauge).
    pub const CORE_LIVE_POWER_SENT: &str = "core.live.power_sent";
    /// Cumulative power packets gated at the last progress mark (gauge).
    pub const CORE_LIVE_POWER_GATED: &str = "core.live.power_gated";
    /// Cumulative harvested energy in µJ at the last progress mark (gauge).
    pub const HARVEST_LIVE_ENERGY_UJ: &str = "harvest.live.energy_uj";
}

/// Number of power-of-two histogram buckets (see [`bucket_index`]).
const BUCKET_COUNT: usize = 24;

#[derive(Debug, Clone, PartialEq)]
struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKET_COUNT],
}

impl Hist {
    fn new() -> Hist {
        Hist {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKET_COUNT],
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }
}

/// Power-of-two bucketing without any libm call (determinism across
/// builds): bucket 0 holds `v < 1`, bucket `i` holds `2^(i-1) <= v < 2^i`,
/// and the last bucket absorbs everything from `2^(BUCKET_COUNT-2)` up
/// (including non-finite values).
fn bucket_index(v: f64) -> usize {
    let mut bound = 1.0f64;
    for i in 0..BUCKET_COUNT - 1 {
        if v < bound {
            return i;
        }
        bound *= 2.0;
    }
    BUCKET_COUNT - 1
}

/// Inclusive upper bound of bucket `i` rendered in snapshots: `2^i`.
fn bucket_bound(i: usize) -> f64 {
    let mut bound = 1.0f64;
    for _ in 0..i {
        bound *= 2.0;
    }
    bound
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Hist>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Handle for a monotonically increasing named counter.
#[derive(Debug, Clone, Copy)]
pub struct Counter(&'static str);

impl Counter {
    /// Add `n` to this thread's counter.
    pub fn add(&self, n: u64) {
        REGISTRY.with(|r| {
            let mut r = r.borrow_mut();
            let c = r.counters.entry(self.0).or_insert(0);
            *c = c.saturating_add(n);
        });
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Handle for a last-write-wins named gauge.
#[derive(Debug, Clone, Copy)]
pub struct Gauge(&'static str);

impl Gauge {
    /// Set this thread's gauge to `v`. Non-finite values (NaN, ±∞) are
    /// dropped: a gauge feeds deterministic JSON artifacts, where the
    /// serializer would degrade them to `null` and golden comparisons
    /// would drift on whichever point produced them first.
    pub fn set(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        REGISTRY.with(|r| {
            r.borrow_mut().gauges.insert(self.0, v);
        });
    }
}

/// Handle for a named histogram with power-of-two buckets.
#[derive(Debug, Clone, Copy)]
pub struct Histogram(&'static str);

impl Histogram {
    /// Record one observation of `v` into this thread's histogram.
    pub fn observe(&self, v: f64) {
        REGISTRY.with(|r| {
            r.borrow_mut()
                .histograms
                .entry(self.0)
                .or_insert_with(Hist::new)
                .observe(v);
        });
    }
}

/// Handle for the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter(name)
}

/// Handle for the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge(name)
}

/// Handle for the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    Histogram(name)
}

/// Clear every metric in this thread's registry. The sweep engine calls
/// this before each experiment point.
pub fn reset() {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
    });
}

/// Every well-known key, for snapshot-restore key interning.
const STATIC_KEYS: &[&str] = &[
    keys::SIM_EVENTS,
    keys::MAC_FRAMES,
    keys::MAC_COLLISIONS,
    keys::MAC_RETRANSMISSIONS,
    keys::MAC_QUEUE_DROPS,
    keys::MAC_OCCUPANCY,
    keys::CORE_POWER_SENT,
    keys::CORE_POWER_GATED,
    keys::HARVEST_COLD_STARTS,
    keys::HARVEST_BROWNOUTS,
    keys::NET_TCP_RTO,
    keys::NET_TCP_FAST_RETRANSMIT,
    keys::CITY_SHARDS,
    keys::CITY_SHARD_NETWORKS,
    keys::CITY_SHARD_EVENTS,
    keys::CITY_BOUNDARY_LINKS,
    keys::CITY_BOUNDARY_EXPORTS,
    keys::CITY_EPOCHS,
    keys::OBS_STREAM_DROPPED,
    keys::OBS_STREAM_QUEUE_DEPTH,
    keys::MAC_LIVE_FRAMES,
    keys::MAC_LIVE_RETRANSMISSIONS,
    keys::MAC_LIVE_CORRUPTED,
    keys::MAC_LIVE_BUSY_NS,
    keys::CORE_LIVE_POWER_SENT,
    keys::CORE_LIVE_POWER_GATED,
    keys::HARVEST_LIVE_ENERGY_UJ,
];

/// Intern a snapshot key as `&'static str`: well-known keys resolve to
/// their constants; anything else (test-only names, future keys read from
/// an older build's checkpoint) is leaked once. Restores happen at most
/// once per process run, so the leak is bounded and tiny.
fn intern_key(k: &str) -> &'static str {
    STATIC_KEYS
        .iter()
        .find(|s| **s == k)
        .copied()
        .unwrap_or_else(|| Box::leak(k.to_string().into_boxed_str()))
}

/// Replace this thread's registry with the contents of `s` — the
/// checkpoint-restore inverse of [`snapshot`]. Restored histograms carry
/// only the non-empty buckets a summary retains, which is exactly what
/// [`snapshot`] re-renders, so snapshot→restore→snapshot is a fixed point.
pub fn restore(s: &MetricsSnapshot) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
        for (k, v) in &s.counters {
            r.counters.insert(intern_key(k), *v);
        }
        for (k, v) in &s.gauges {
            r.gauges.insert(intern_key(k), *v);
        }
        for (k, h) in &s.histograms {
            let mut hist = Hist::new();
            hist.count = h.count;
            hist.sum = h.sum;
            hist.min = h.min;
            hist.max = h.max;
            for &(bound, n) in &h.buckets {
                let idx = (0..BUCKET_COUNT)
                    .find(|&i| bucket_bound(i) == bound)
                    .unwrap_or(BUCKET_COUNT - 1);
                hist.buckets[idx] = n;
            }
            r.histograms.insert(intern_key(k), hist);
        }
    });
}

/// Rendered summary of one histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// `(upper_bound, count)` for each non-empty power-of-two bucket,
    /// in ascending bound order.
    pub buckets: Vec<(f64, u64)>,
}

/// Immutable copy of one thread's registry, stable-ordered for rendering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Copy this thread's registry without clearing it.
pub fn snapshot() -> MetricsSnapshot {
    REGISTRY.with(|r| {
        let r = r.borrow();
        MetricsSnapshot {
            counters: r
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: r.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: r
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| (bucket_bound(i), *n))
                        .collect();
                    (
                        k.to_string(),
                        HistogramSummary {
                            count: h.count,
                            sum: h.sum,
                            min: h.min,
                            max: h.max,
                            buckets,
                        },
                    )
                })
                .collect(),
        }
    })
}

/// Shortest-roundtrip float rendering matching the vendored `serde_json`
/// (non-finite values become `null`, mirroring its behaviour).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl MetricsSnapshot {
    /// Render the snapshot as one line of stable JSON: BTree key order,
    /// deterministic float formatting, no whitespace.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, k);
            out.push(':');
            push_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str(&mut out, k);
            let _ = write!(out, ":{{\"count\":{},\"sum\":", h.count);
            push_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            push_f64(&mut out, h.min);
            out.push_str(",\"max\":");
            push_f64(&mut out, h.max);
            out.push_str(",\"buckets\":[");
            for (j, (bound, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                push_f64(&mut out, *bound);
                let _ = write!(out, ",{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Counter value by name, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, zero when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }
}

/// Snapshot of the legacy per-run counter triple, now derived from the
/// metrics registry ([`keys::SIM_EVENTS`], [`keys::MAC_FRAMES`],
/// [`keys::MAC_OCCUPANCY`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunTelemetry {
    /// Events executed by [`crate::EventQueue::run_until`] since [`reset`].
    pub events: u64,
    /// MAC frames sent since [`reset`].
    pub frames: u64,
    /// Last cumulative occupancy recorded.
    pub occupancy: f64,
}

impl RunTelemetry {
    /// Extract the legacy triple from a full registry snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> RunTelemetry {
        RunTelemetry {
            events: s.counter(keys::SIM_EVENTS),
            frames: s.counter(keys::MAC_FRAMES),
            occupancy: s.gauge(keys::MAC_OCCUPANCY),
        }
    }
}

/// Read the legacy triple for this thread without clearing anything.
pub fn run_telemetry() -> RunTelemetry {
    RunTelemetry::from_snapshot(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        counter("t.a").add(3);
        counter("t.a").add(4);
        counter("t.b").inc();
        gauge("t.g").set(0.5);
        gauge("t.g").set(0.9);
        let s = snapshot();
        assert_eq!(s.counter("t.a"), 7);
        assert_eq!(s.counter("t.b"), 1);
        assert_eq!(s.gauge("t.g"), 0.9);
        reset();
        assert_eq!(snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn registry_is_per_thread() {
        reset();
        counter("t.events").add(5);
        std::thread::spawn(|| {
            assert_eq!(snapshot().counter("t.events"), 0);
            counter("t.events").inc();
        })
        .join()
        .unwrap();
        assert_eq!(snapshot().counter("t.events"), 5);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        reset();
        let h = histogram("t.h");
        for v in [0.25, 0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = snapshot();
        let hs = &s.histograms["t.h"];
        assert_eq!(hs.count, 6);
        assert_eq!(hs.min, 0.25);
        assert_eq!(hs.max, 100.0);
        // v<1 → bound 1; [1,2) → bound 2; [2,4) → bound 4; [64,128) → 128.
        assert_eq!(hs.buckets, vec![(1.0, 2), (2.0, 2), (4.0, 1), (128.0, 1)]);
        reset();
    }

    #[test]
    fn restore_is_snapshot_inverse() {
        reset();
        counter(keys::SIM_EVENTS).add(42);
        counter("t.custom").add(9); // non-well-known key takes the leak path
        gauge(keys::OBS_STREAM_QUEUE_DEPTH).set(17.0);
        let h = histogram("t.h");
        for v in [0.25, 1.5, 3.0, 100.0, 1e300] {
            h.observe(v);
        }
        let snap = snapshot();
        reset();
        assert_eq!(snapshot(), MetricsSnapshot::default());
        restore(&snap);
        assert_eq!(snapshot(), snap, "snapshot→restore→snapshot fixed point");
        // The restored registry stays live: further observations accumulate
        // on top of the restored totals.
        counter(keys::SIM_EVENTS).add(8);
        assert_eq!(snapshot().counter(keys::SIM_EVENTS), 50);
        reset();
    }

    #[test]
    fn bucket_index_saturates() {
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(1e300), BUCKET_COUNT - 1);
    }

    #[test]
    fn json_is_stable_and_ordered() {
        reset();
        counter("z.last").inc();
        counter("a.first").add(2);
        gauge("m.g").set(0.125);
        histogram("h.x").observe(3.0);
        let j1 = snapshot().to_json();
        let j2 = snapshot().to_json();
        assert_eq!(j1, j2);
        assert_eq!(
            j1,
            "{\"counters\":{\"a.first\":2,\"z.last\":1},\
             \"gauges\":{\"m.g\":0.125},\
             \"histograms\":{\"h.x\":{\"count\":1,\"sum\":3.0,\"min\":3.0,\
             \"max\":3.0,\"buckets\":[[4.0,1]]}}}"
        );
        reset();
    }

    #[test]
    fn run_telemetry_reads_well_known_keys() {
        reset();
        counter(keys::SIM_EVENTS).add(10);
        counter(keys::MAC_FRAMES).add(4);
        gauge(keys::MAC_OCCUPANCY).set(0.42);
        let t = run_telemetry();
        assert_eq!(t.events, 10);
        assert_eq!(t.frames, 4);
        assert_eq!(t.occupancy, 0.42);
        reset();
    }

    #[test]
    fn empty_registry_snapshot_is_default_and_serializes() {
        reset();
        let s = snapshot();
        assert_eq!(s, MetricsSnapshot::default());
        assert_eq!(s.counter("never.registered"), 0);
        assert_eq!(s.gauge("never.registered"), 0.0);
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn histogram_single_sample_has_equal_extremes() {
        reset();
        histogram("t.one").observe(7.5);
        let s = snapshot();
        let hs = &s.histograms["t.one"];
        assert_eq!(hs.count, 1);
        assert_eq!(hs.sum, 7.5);
        assert_eq!(hs.min, 7.5);
        assert_eq!(hs.max, 7.5);
        // [4,8) → bound 8, exactly one occupied bucket.
        assert_eq!(hs.buckets, vec![(8.0, 1)]);
        reset();
    }

    #[test]
    fn gauge_drops_non_finite_values() {
        reset();
        let g = gauge("t.guarded");
        g.set(1.25);
        g.set(f64::NAN);
        g.set(f64::INFINITY);
        g.set(f64::NEG_INFINITY);
        assert_eq!(snapshot().gauge("t.guarded"), 1.25, "last finite wins");
        // A gauge never set with a finite value stays unregistered, so the
        // JSON artifact carries no null-degrading entry at all.
        gauge("t.never_finite").set(f64::NAN);
        let j = snapshot().to_json();
        assert!(!j.contains("t.never_finite"), "{j}");
        reset();
    }

    #[test]
    fn snapshot_key_order_ignores_registration_order() {
        reset();
        counter("t.zz").inc();
        gauge("t.mid").set(1.0);
        counter("t.aa").inc();
        histogram("t.hh").observe(1.0);
        counter("t.mm").inc();
        let interleaved = snapshot().to_json();
        reset();
        counter("t.aa").inc();
        counter("t.mm").inc();
        counter("t.zz").inc();
        gauge("t.mid").set(1.0);
        histogram("t.hh").observe(1.0);
        let sorted_first = snapshot().to_json();
        assert_eq!(interleaved, sorted_first);
        let a = interleaved.find("\"t.aa\"").unwrap();
        let m = interleaved.find("\"t.mm\"").unwrap();
        let z = interleaved.find("\"t.zz\"").unwrap();
        assert!(a < m && m < z, "counters must serialize name-sorted");
        reset();
    }
}
