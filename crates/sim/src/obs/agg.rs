//! Deterministic windowed aggregation over a telemetry stream.
//!
//! The [`Aggregator`] consumes the NDJSON wire format of
//! [`super::stream`] — from a live socket or a recorded capture file, it
//! cannot tell the difference — and rolls records up into **tumbling
//! sim-time windows**: for every window and every deployment one row with
//! events/s, airtime occupancy, harvested µW and retry/corruption rates,
//! plus a merged `*` row per window when the stream multiplexes more than
//! one deployment. A city deployment's per-shard `progress` records merge
//! into its single row.
//!
//! ## Determinism
//!
//! The wire interleaves deployments (and city shards) in scheduling order,
//! which varies with `--jobs` and machine load. The aggregator reduces any
//! interleaving of the *same record set* to byte-identical output: samples
//! are keyed by `(deployment, shard, sim-time)`, reductions are sums and
//! last-sample-at-or-before lookups, maps are BTree-ordered, and floats
//! render with the same shortest-roundtrip formatting as every other
//! artifact. `powifi-fleet aggregate` over a capture is therefore stable
//! across `--jobs` and debug/release, pinned by a committed golden.

use crate::SimDuration;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregation settings.
#[derive(Debug, Clone)]
pub struct AggConfig {
    /// Tumbling window width in sim time.
    pub window: SimDuration,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            window: SimDuration::from_secs(1),
        }
    }
}

/// Session identity parsed back off the wire header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionHeader {
    /// `run_id` field.
    pub run_id: String,
    /// `seed` field.
    pub seed: u64,
    /// `git_sha` field.
    pub git_sha: String,
}

/// Cumulative counters carried by one sample (a `metrics` snapshot or a
/// city-shard `progress` record). All values are totals since the
/// deployment started; windowing diffs consecutive samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cum {
    events: u64,
    frames: u64,
    retrans: u64,
    corrupted: u64,
    busy_ns: u64,
    harvested_uj: u64,
    power_sent: u64,
    power_gated: u64,
}

impl Cum {
    fn delta(self, earlier: Cum) -> Cum {
        Cum {
            events: self.events.saturating_sub(earlier.events),
            frames: self.frames.saturating_sub(earlier.frames),
            retrans: self.retrans.saturating_sub(earlier.retrans),
            corrupted: self.corrupted.saturating_sub(earlier.corrupted),
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            harvested_uj: self.harvested_uj.saturating_sub(earlier.harvested_uj),
            power_sent: self.power_sent.saturating_sub(earlier.power_sent),
            power_gated: self.power_gated.saturating_sub(earlier.power_gated),
        }
    }

    fn add(&mut self, other: Cum) {
        self.events += other.events;
        self.frames += other.frames;
        self.retrans += other.retrans;
        self.corrupted += other.corrupted;
        self.busy_ns += other.busy_ns;
        self.harvested_uj += other.harvested_uj;
        self.power_sent += other.power_sent;
        self.power_gated += other.power_gated;
    }

    fn is_zero(&self) -> bool {
        *self == Cum::default()
    }
}

/// One deployment's sample series, keyed by shard (`None` for unsharded
/// metrics snapshots).
type Series = BTreeMap<Option<u64>, BTreeMap<u64, Cum>>;

/// The streaming aggregation engine. Feed it lines (in any interleaving),
/// then [`Aggregator::render`].
#[derive(Debug, Default)]
pub struct Aggregator {
    window_ns: u64,
    header: Option<SessionHeader>,
    deployments: BTreeMap<String, Series>,
    /// State hashes from `ckpt` records, keyed by
    /// `(deployment, shard, epoch)`. Two captures of runs that should be
    /// identical diverge exactly where these maps first disagree — the
    /// live-fleet early warning that `powifi-replay bisect` then pinpoints
    /// offline from the chain files.
    ckpt_hashes: BTreeMap<(String, Option<u64>, u64), String>,
    max_t: u64,
    records: u64,
    seq_seen: u64,
    seq_max: Option<u64>,
}

fn obj(v: &Value) -> Result<&[(String, Value)], String> {
    match v {
        Value::Object(entries) => Ok(entries),
        _ => Err("expected a JSON object".into()),
    }
}

fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(entries: &[(String, Value)], key: &str) -> Option<u64> {
    match get(entries, key)? {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        // Gauges are f64 on the wire; cumulative counts are integral.
        Value::Float(f) if *f >= 0.0 && f.is_finite() => Some(f.round() as u64),
        _ => None,
    }
}

fn get_str<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    match get(entries, key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Shortest-roundtrip float rendering (matches `MetricsSnapshot::to_json`).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

impl Aggregator {
    /// An aggregator with `cfg` windows.
    pub fn new(cfg: &AggConfig) -> Aggregator {
        Aggregator {
            window_ns: cfg.window.as_nanos().max(1),
            ..Aggregator::default()
        }
    }

    /// The session header, once seen.
    pub fn session(&self) -> Option<&SessionHeader> {
        self.header.as_ref()
    }

    /// Records ingested (header excluded).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Sequence numbers missing from the stream so far — dropped records
    /// (the egress queue consumes a seq even when it drops) or transport
    /// loss. Zero on a clean capture.
    pub fn seq_gaps(&self) -> u64 {
        match self.seq_max {
            Some(max) => (max + 1).saturating_sub(self.seq_seen),
            None => 0,
        }
    }

    /// State hashes seen in `ckpt` records, keyed by
    /// `(deployment, shard, epoch)`.
    pub fn ckpt_hashes(&self) -> &BTreeMap<(String, Option<u64>, u64), String> {
        &self.ckpt_hashes
    }

    /// First `(deployment, shard, epoch)` key at which this capture's
    /// checkpoint hashes disagree with `other`'s — the live divergence
    /// check for two runs that should be identical. Keys present in only
    /// one capture are skipped (different cadence is not divergence).
    pub fn first_ckpt_divergence<'a>(
        &'a self,
        other: &'a Aggregator,
    ) -> Option<(&'a (String, Option<u64>, u64), &'a str, &'a str)> {
        self.ckpt_hashes.iter().find_map(|(k, h)| {
            other
                .ckpt_hashes
                .get(k)
                .and_then(|h2| (h != h2).then_some((k, h.as_str(), h2.as_str())))
        })
    }

    /// Ingest one wire line (header or record). Blank lines are ignored.
    pub fn ingest_line(&mut self, line: &str) -> Result<(), String> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let v = serde_json::from_str(line).map_err(|e| format!("bad JSON: {e:?}"))?;
        let entries = obj(&v)?;
        if get(entries, "powifi_stream").is_some() {
            let version =
                get_u64(entries, "powifi_stream").ok_or("non-integer powifi_stream version")?;
            if version != super::stream::WIRE_VERSION {
                return Err(format!("unsupported wire version {version}"));
            }
            self.header = Some(SessionHeader {
                run_id: get_str(entries, "run_id").unwrap_or("").to_string(),
                seed: get_u64(entries, "seed").unwrap_or(0),
                git_sha: get_str(entries, "git_sha").unwrap_or("").to_string(),
            });
            return Ok(());
        }
        let seq = get_u64(entries, "seq").ok_or("record without seq")?;
        self.seq_seen += 1;
        self.seq_max = Some(self.seq_max.map_or(seq, |m| m.max(seq)));
        let deployment = get_str(entries, "deployment")
            .ok_or("record without deployment")?
            .to_string();
        let kind = get_str(entries, "kind").ok_or("record without kind")?;
        let t = get_u64(entries, "t").ok_or("record without t")?;
        self.records += 1;
        self.max_t = self.max_t.max(t);
        match kind {
            "metrics" => {
                let m = get(entries, "metrics").ok_or("metrics record without metrics")?;
                let cum = cum_from_snapshot(obj(m)?)?;
                self.deployments
                    .entry(deployment)
                    .or_default()
                    .entry(None)
                    .or_default()
                    .insert(t, cum);
            }
            "progress" => {
                let shard = get_u64(entries, "shard");
                let f = get(entries, "fields").ok_or("progress record without fields")?;
                let f = obj(f)?;
                let cum = Cum {
                    events: get_u64(f, "events").unwrap_or(0),
                    frames: get_u64(f, "frames").unwrap_or(0),
                    retrans: get_u64(f, "retransmissions").unwrap_or(0),
                    corrupted: get_u64(f, "corrupted").unwrap_or(0),
                    busy_ns: get_u64(f, "busy_ns").unwrap_or(0),
                    harvested_uj: get_u64(f, "harvested_uj").unwrap_or(0),
                    power_sent: get_u64(f, "power_sent").unwrap_or(0),
                    power_gated: get_u64(f, "power_gated").unwrap_or(0),
                };
                self.deployments
                    .entry(deployment)
                    .or_default()
                    .entry(shard)
                    .or_default()
                    .insert(t, cum);
            }
            "ckpt" => {
                let epoch = get_u64(entries, "epoch").ok_or("ckpt record without epoch")?;
                let hash = get_str(entries, "hash")
                    .ok_or("ckpt record without hash")?
                    .to_string();
                self.ckpt_hashes
                    .insert((deployment, get_u64(entries, "shard"), epoch), hash);
            }
            // Traces pass through untouched; `end` only extends max_t
            // (already done above) so the final partial window renders.
            "trace" | "end" => {}
            other => return Err(format!("unknown record kind `{other}`")),
        }
        Ok(())
    }

    /// Cumulative value of one series at-or-before `t` (zeros before the
    /// first sample).
    fn value_at(samples: &BTreeMap<u64, Cum>, t: u64) -> Cum {
        samples
            .range(..=t)
            .next_back()
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Render the aggregate: one NDJSON row per `(window, deployment)` in
    /// (window, name) order, plus a merged `*` row per window when the
    /// session carries several deployments. Byte-stable for a given record
    /// set regardless of wire interleaving.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.deployments.is_empty() || self.max_t == 0 {
            return out;
        }
        let w = self.window_ns;
        let windows = self.max_t.div_ceil(w);
        for k in 0..windows {
            let (start, end) = (k * w, (k + 1) * w);
            let mut fleet = Cum::default();
            let mut fleet_rows = 0usize;
            for (name, series) in &self.deployments {
                let mut delta = Cum::default();
                for samples in series.values() {
                    delta.add(Self::value_at(samples, end).delta(Self::value_at(samples, start)));
                }
                // A deployment that ended before this window contributes
                // nothing and stays silent, rather than padding zero rows.
                if delta.is_zero()
                    && series
                        .values()
                        .all(|s| s.range(start + 1..).next().is_none())
                {
                    continue;
                }
                self.push_row(&mut out, k, start, end, name, delta);
                fleet.add(delta);
                fleet_rows += 1;
            }
            if fleet_rows > 1 {
                self.push_row(&mut out, k, start, end, "*", fleet);
            }
        }
        out
    }

    fn push_row(&self, out: &mut String, k: u64, start: u64, end: u64, name: &str, d: Cum) {
        let w_ns = (end - start).max(1) as f64;
        let _ = write!(
            out,
            "{{\"window\":{k},\"t_start_ns\":{start},\"t_end_ns\":{end},\"deployment\":"
        );
        push_json_str(out, name);
        let _ = write!(
            out,
            ",\"events\":{},\"frames\":{},\"retransmissions\":{},\"corrupted\":{},\
             \"busy_ns\":{},\"harvested_uj\":{},\"power_sent\":{},\"power_gated\":{}",
            d.events,
            d.frames,
            d.retrans,
            d.corrupted,
            d.busy_ns,
            d.harvested_uj,
            d.power_sent,
            d.power_gated
        );
        out.push_str(",\"events_per_s\":");
        push_f64(out, d.events as f64 * 1e9 / w_ns);
        out.push_str(",\"occupancy\":");
        push_f64(out, d.busy_ns as f64 / w_ns);
        out.push_str(",\"harvested_uw\":");
        push_f64(out, d.harvested_uj as f64 * 1e9 / w_ns);
        out.push_str(",\"retry_rate\":");
        push_f64(
            out,
            if d.frames > 0 {
                d.retrans as f64 / d.frames as f64
            } else {
                0.0
            },
        );
        out.push_str(",\"corruption_rate\":");
        push_f64(
            out,
            if d.frames > 0 {
                d.corrupted as f64 / d.frames as f64
            } else {
                0.0
            },
        );
        out.push_str("}\n");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Pull the cumulative counters out of a `metrics` snapshot object
/// (`{"counters":…,"gauges":…,"histograms":…}`).
fn cum_from_snapshot(entries: &[(String, Value)]) -> Result<Cum, String> {
    use super::metrics::keys;
    let counters = obj(get(entries, "counters").ok_or("snapshot without counters")?)?;
    let gauges = obj(get(entries, "gauges").ok_or("snapshot without gauges")?)?;
    Ok(Cum {
        events: get_u64(counters, keys::SIM_EVENTS).unwrap_or(0),
        frames: get_u64(gauges, keys::MAC_LIVE_FRAMES).unwrap_or(0),
        retrans: get_u64(gauges, keys::MAC_LIVE_RETRANSMISSIONS).unwrap_or(0),
        corrupted: get_u64(gauges, keys::MAC_LIVE_CORRUPTED).unwrap_or(0),
        busy_ns: get_u64(gauges, keys::MAC_LIVE_BUSY_NS).unwrap_or(0),
        harvested_uj: get_u64(gauges, keys::HARVEST_LIVE_ENERGY_UJ).unwrap_or(0),
        power_sent: get_u64(gauges, keys::CORE_LIVE_POWER_SENT).unwrap_or(0),
        power_gated: get_u64(gauges, keys::CORE_LIVE_POWER_GATED).unwrap_or(0),
    })
}

/// Aggregate a whole capture (header + records) with `cfg` windows.
pub fn aggregate_capture(text: &str, cfg: &AggConfig) -> Result<String, String> {
    let mut agg = Aggregator::new(cfg);
    for (i, line) in text.lines().enumerate() {
        agg.ingest_line(line)
            .map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(agg.render())
}

#[cfg(test)]
mod tests {
    use super::super::stream::{Egress, Handle, SessionInfo};
    use super::*;
    use std::sync::Arc;

    fn capture(lines: &[String]) -> String {
        let mut s = String::new();
        for l in lines {
            s.push_str(l);
            s.push('\n');
        }
        s
    }

    fn drain(eg: &Arc<Egress>) -> Vec<String> {
        eg.close();
        let mut lines = Vec::new();
        while let Some(l) = eg.pop_wait() {
            lines.push(l);
        }
        lines
    }

    #[test]
    fn progress_records_window_and_merge_across_shards() {
        let eg = Egress::new(64);
        eg.push_raw(
            &SessionInfo {
                run_id: "t".into(),
                seed: 1,
                git_sha: "x".into(),
            }
            .header_line(),
        );
        let h = Handle::new(Arc::clone(&eg), "city0");
        let s = |t_ms: u64, shard, events, busy| {
            h.emit_progress(
                crate::SimTime::from_millis(t_ms),
                Some(shard),
                &[("events", events), ("busy_ns", busy)],
            );
        };
        // Two shards, two epochs each, interleaved out of order.
        s(1000, 1, 50, 100);
        s(1000, 0, 100, 200);
        s(2000, 0, 300, 500);
        s(2000, 1, 70, 150);
        h.emit_end(crate::SimTime::from_millis(2000));
        let text = capture(&drain(&eg));
        let out = aggregate_capture(&text, &AggConfig::default()).unwrap_or_default();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        // Window 0: shard sums 100+50 events, 200+100 busy.
        assert!(
            lines[0].contains("\"window\":0") && lines[0].contains("\"events\":150"),
            "{out}"
        );
        assert!(lines[0].contains("\"busy_ns\":300"), "{out}");
        // Window 1: deltas (300-100)+(70-50)=220 events.
        assert!(
            lines[1].contains("\"window\":1") && lines[1].contains("\"events\":220"),
            "{out}"
        );
        assert!(lines[1].contains("\"events_per_s\":220.0"), "{out}");
    }

    #[test]
    fn interleaving_does_not_change_bytes() {
        let mk = |order: &[usize]| {
            let eg = Egress::new(64);
            let a = Handle::new(Arc::clone(&eg), "a");
            let b = Handle::new(Arc::clone(&eg), "b");
            let emits: Vec<Box<dyn Fn()>> = vec![
                Box::new(|| {
                    a.emit_progress(crate::SimTime::from_secs(1), None, &[("events", 10)]);
                }),
                Box::new(|| {
                    b.emit_progress(crate::SimTime::from_secs(1), None, &[("events", 20)]);
                }),
                Box::new(|| {
                    a.emit_progress(crate::SimTime::from_secs(2), None, &[("events", 30)]);
                }),
                Box::new(|| {
                    b.emit_progress(crate::SimTime::from_secs(2), None, &[("events", 60)]);
                }),
            ];
            for &i in order {
                emits[i]();
            }
            drop(emits);
            let text = capture(&drain(&eg));
            aggregate_capture(&text, &AggConfig::default()).unwrap_or_default()
        };
        let x = mk(&[0, 1, 2, 3]);
        let y = mk(&[3, 1, 2, 0]);
        assert_eq!(x, y);
        assert!(x.contains("\"deployment\":\"*\""), "merged fleet row: {x}");
    }

    #[test]
    fn metrics_snapshots_feed_windows() {
        crate::obs::metrics::reset();
        let eg = Egress::new(64);
        let h = Handle::new(Arc::clone(&eg), "office");
        use crate::obs::metrics::{counter, gauge, keys};
        counter(keys::SIM_EVENTS).add(1000);
        gauge(keys::MAC_LIVE_FRAMES).set(40.0);
        gauge(keys::MAC_LIVE_RETRANSMISSIONS).set(4.0);
        gauge(keys::MAC_LIVE_BUSY_NS).set(250_000_000.0);
        gauge(keys::HARVEST_LIVE_ENERGY_UJ).set(500.0);
        h.emit_metrics(
            crate::SimTime::from_secs(1),
            &crate::obs::metrics::snapshot(),
        );
        let text = capture(&drain(&eg));
        crate::obs::metrics::reset();
        let out = aggregate_capture(&text, &AggConfig::default()).unwrap_or_default();
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.contains("\"events\":1000"), "{out}");
        assert!(out.contains("\"retry_rate\":0.1"), "{out}");
        assert!(out.contains("\"occupancy\":0.25"), "{out}");
        assert!(out.contains("\"harvested_uw\":500.0"), "{out}");
    }

    #[test]
    fn seq_gaps_are_counted() {
        let mut agg = Aggregator::new(&AggConfig::default());
        for line in [
            "{\"seq\":0,\"deployment\":\"d\",\"kind\":\"end\",\"t\":10,\"dropped\":0}",
            "{\"seq\":3,\"deployment\":\"d\",\"kind\":\"end\",\"t\":20,\"dropped\":2}",
        ] {
            agg.ingest_line(line).unwrap_or_default();
        }
        assert_eq!(agg.seq_gaps(), 2);
    }

    #[test]
    fn malformed_lines_error() {
        let mut agg = Aggregator::new(&AggConfig::default());
        assert!(agg.ingest_line("not json").is_err());
        assert!(agg.ingest_line("{\"seq\":0}").is_err(), "missing fields");
        assert!(agg
            .ingest_line("{\"seq\":0,\"deployment\":\"d\",\"kind\":\"nope\",\"t\":1}")
            .is_err());
        assert!(agg.ingest_line("").is_ok(), "blank lines are fine");
    }

    #[test]
    fn ckpt_records_index_by_deployment_shard_epoch() {
        let mut a = Aggregator::new(&AggConfig::default());
        a.ingest_line(
            "{\"seq\":0,\"deployment\":\"d0\",\"kind\":\"ckpt\",\"t\":1,\"epoch\":1,\
             \"hash\":\"aa\"}",
        )
        .unwrap();
        a.ingest_line(
            "{\"seq\":1,\"deployment\":\"city\",\"kind\":\"ckpt\",\"t\":1,\"shard\":3,\
             \"epoch\":1,\"hash\":\"bb\"}",
        )
        .unwrap();
        assert_eq!(a.ckpt_hashes().len(), 2);
        assert_eq!(a.ckpt_hashes()[&("d0".into(), None, 1)], "aa");
        assert!(
            a.ingest_line("{\"seq\":2,\"deployment\":\"d0\",\"kind\":\"ckpt\",\"t\":1}")
                .is_err(),
            "ckpt without epoch/hash must error"
        );

        let mut b = Aggregator::new(&AggConfig::default());
        b.ingest_line(
            "{\"seq\":0,\"deployment\":\"d0\",\"kind\":\"ckpt\",\"t\":1,\"epoch\":1,\
             \"hash\":\"aa\"}",
        )
        .unwrap();
        b.ingest_line(
            "{\"seq\":1,\"deployment\":\"city\",\"kind\":\"ckpt\",\"t\":1,\"shard\":3,\
             \"epoch\":1,\"hash\":\"cc\"}",
        )
        .unwrap();
        let (key, ha, hb) = a.first_ckpt_divergence(&b).expect("hashes differ");
        assert_eq!(key, &("city".into(), Some(3), 1));
        assert_eq!((ha, hb), ("bb", "cc"));
        assert!(b.first_ckpt_divergence(&b).is_none(), "self-compare agrees");
    }

    #[test]
    fn header_roundtrip() {
        let mut agg = Aggregator::new(&AggConfig::default());
        let h = SessionInfo {
            run_id: "fleet-7".into(),
            seed: 7,
            git_sha: "abc".into(),
        };
        agg.ingest_line(&h.header_line()).unwrap_or_default();
        let parsed = agg.session().cloned().unwrap_or_default();
        assert_eq!(parsed.run_id, "fleet-7");
        assert_eq!(parsed.seed, 7);
        assert_eq!(parsed.git_sha, "abc");
        assert!(agg
            .ingest_line("{\"powifi_stream\":99,\"run_id\":\"x\",\"seed\":0,\"git_sha\":\"y\"}")
            .is_err());
    }
}
