//! Structured trace subsystem: typed, sim-time-stamped event records
//! emitted through a pluggable [`TraceSink`].
//!
//! The event catalogue ([`TraceEvent`]) covers the control-loop moments the
//! paper reasons about: MAC transmissions and contention (tx start/end,
//! backoff draws, DIFS deferrals, ACKs, retries, drops), the injector's
//! queue-depth gate and power-packet emissions (§3.1), harvester
//! storage-voltage crossings (cold start / brownout) and MPPT updates, and
//! TCP RTO / cwnd transitions.
//!
//! Dispatch is thread-local, mirroring [`crate::conformance`]: the harness
//! [`install`]s a sink on the worker thread before a run and [`uninstall`]s
//! it after; instrumented hot paths pay exactly one branch
//! ([`enabled`]) when tracing is off. Timestamps are [`SimTime`] only —
//! rendered JSONL is byte-identical for a given seed regardless of `--jobs`
//! or debug/release.
//!
//! Sinks must be constructed only here or in the bench harness; lint rule
//! R6 rejects sink construction inside instrumented sim crates, which are
//! expected to go through [`emit`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::time::SimTime;

/// Classification of a MAC frame in trace records (mirrors the MAC layer's
/// frame kinds without depending on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameClass {
    /// Ordinary data traffic.
    Data,
    /// PoWiFi power packet (UDP ballast).
    Power,
    /// Beacon.
    Beacon,
    /// Management traffic.
    Management,
}

impl FrameClass {
    fn label(self) -> &'static str {
        match self {
            FrameClass::Data => "data",
            FrameClass::Power => "power",
            FrameClass::Beacon => "beacon",
            FrameClass::Management => "mgmt",
        }
    }
}

/// Why a MAC frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Transmit queue was full at enqueue time.
    QueueFull,
    /// Retry limit exhausted after repeated collisions.
    RetryLimit,
}

impl DropReason {
    fn label(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue_full",
            DropReason::RetryLimit => "retry_limit",
        }
    }
}

/// What triggered a TCP congestion-window change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwndCause {
    /// Retransmission timeout collapsed the window.
    Rto,
    /// Three duplicate ACKs → fast retransmit, window halved.
    FastRetransmit,
    /// Recovery completed; window restored to ssthresh.
    Recovered,
}

impl CwndCause {
    fn label(self) -> &'static str {
        match self {
            CwndCause::Rto => "rto",
            CwndCause::FastRetransmit => "fast_retransmit",
            CwndCause::Recovered => "recovered",
        }
    }
}

/// One typed trace event. Field units: times in integer nanoseconds (the
/// record carries the timestamp), rates in Mbps, voltages in volts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A station won arbitration and its frame hit the air.
    MacTxStart {
        /// Medium (channel) index.
        medium: u32,
        /// Transmitting station id.
        sta: u32,
        /// Frame classification.
        frame: FrameClass,
        /// Full MPDU size in bytes.
        bytes: u32,
        /// PHY rate in Mbps.
        rate_mbps: f64,
        /// True when this transmission overlapped another winner.
        collided: bool,
    },
    /// A transmission (and any ACK wait) finished.
    MacTxEnd {
        /// Medium (channel) index.
        medium: u32,
        /// Transmitting station id.
        sta: u32,
    },
    /// A station drew a fresh backoff.
    MacBackoffDraw {
        /// Medium (channel) index.
        medium: u32,
        /// Station id.
        sta: u32,
        /// Slots drawn, `0..=cw`.
        slots: u32,
        /// Contention window the draw was taken from.
        cw: u32,
    },
    /// A station wanting the medium found it busy and deferred (will
    /// re-arm DIFS + backoff after the medium clears).
    MacDifsDefer {
        /// Medium (channel) index.
        medium: u32,
        /// Station id.
        sta: u32,
    },
    /// Unicast frame was acknowledged.
    MacAck {
        /// Medium (channel) index.
        medium: u32,
        /// Station id whose frame was ACKed.
        sta: u32,
    },
    /// Unicast frame collided and will be retried with a doubled window.
    MacRetry {
        /// Medium (channel) index.
        medium: u32,
        /// Station id.
        sta: u32,
        /// Retry count after this failure.
        retries: u32,
    },
    /// Frame was dropped.
    MacDrop {
        /// Medium (channel) index.
        medium: u32,
        /// Station id.
        sta: u32,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// The injector's queue-depth gate changed state (§3.1: transmit only
    /// when the queue is shallower than the threshold).
    InjectorGate {
        /// Interface (router station) id.
        iface: u32,
        /// True when the gate opened (admitting power packets).
        open: bool,
        /// Transmit-queue depth observed at the decision.
        qdepth: u32,
    },
    /// The injector emitted one power packet.
    PowerPacket {
        /// Interface (router station) id.
        iface: u32,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Harvester storage voltage crossed the output-switch threshold.
    StorageCross {
        /// Storage voltage at the crossing.
        volts: f64,
        /// Threshold crossed.
        threshold: f64,
        /// True for an upward crossing.
        rising: bool,
    },
    /// Output switch turned on: stored energy reached the cold-start point.
    ColdStart {
        /// Storage voltage at turn-on.
        volts: f64,
    },
    /// Output switch turned off: the load browned out.
    Brownout {
        /// Storage voltage at turn-off.
        volts: f64,
    },
    /// Boost-converter MPPT operating point update.
    MpptUpdate {
        /// MPPT reference voltage.
        vref_volts: f64,
        /// Relative harvest efficiency at that reference.
        factor: f64,
    },
    /// TCP retransmission timeout fired.
    TcpRto {
        /// Flow id.
        flow: u32,
        /// RTO that just expired, in seconds.
        rto_s: f64,
        /// Congestion window after the collapse, in segments.
        cwnd: f64,
    },
    /// TCP congestion window changed discontinuously.
    TcpCwnd {
        /// Flow id.
        flow: u32,
        /// New congestion window, in segments.
        cwnd: f64,
        /// New slow-start threshold, in segments.
        ssthresh: f64,
        /// What triggered the change.
        cause: CwndCause,
    },
}

impl TraceEvent {
    /// Subsystem that emitted the event: `mac`, `core`, `harvest`, `net`.
    pub fn layer(&self) -> &'static str {
        match self {
            TraceEvent::MacTxStart { .. }
            | TraceEvent::MacTxEnd { .. }
            | TraceEvent::MacBackoffDraw { .. }
            | TraceEvent::MacDifsDefer { .. }
            | TraceEvent::MacAck { .. }
            | TraceEvent::MacRetry { .. }
            | TraceEvent::MacDrop { .. } => "mac",
            TraceEvent::InjectorGate { .. } | TraceEvent::PowerPacket { .. } => "core",
            TraceEvent::StorageCross { .. }
            | TraceEvent::ColdStart { .. }
            | TraceEvent::Brownout { .. }
            | TraceEvent::MpptUpdate { .. } => "harvest",
            TraceEvent::TcpRto { .. } | TraceEvent::TcpCwnd { .. } => "net",
        }
    }

    /// Stable event-kind tag used in rendered records and filters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MacTxStart { .. } => "tx_start",
            TraceEvent::MacTxEnd { .. } => "tx_end",
            TraceEvent::MacBackoffDraw { .. } => "backoff_draw",
            TraceEvent::MacDifsDefer { .. } => "difs_defer",
            TraceEvent::MacAck { .. } => "ack",
            TraceEvent::MacRetry { .. } => "retry",
            TraceEvent::MacDrop { .. } => "drop",
            TraceEvent::InjectorGate { .. } => "injector_gate",
            TraceEvent::PowerPacket { .. } => "power_packet",
            TraceEvent::StorageCross { .. } => "storage_cross",
            TraceEvent::ColdStart { .. } => "cold_start",
            TraceEvent::Brownout { .. } => "brownout",
            TraceEvent::MpptUpdate { .. } => "mppt_update",
            TraceEvent::TcpRto { .. } => "tcp_rto",
            TraceEvent::TcpCwnd { .. } => "tcp_cwnd",
        }
    }

    /// Primary entity id (station, interface or flow) when the event has
    /// one — the id `powifi-trace --entity` filters on.
    pub fn entity(&self) -> Option<u32> {
        match *self {
            TraceEvent::MacTxStart { sta, .. }
            | TraceEvent::MacTxEnd { sta, .. }
            | TraceEvent::MacBackoffDraw { sta, .. }
            | TraceEvent::MacDifsDefer { sta, .. }
            | TraceEvent::MacAck { sta, .. }
            | TraceEvent::MacRetry { sta, .. }
            | TraceEvent::MacDrop { sta, .. } => Some(sta),
            TraceEvent::InjectorGate { iface, .. } | TraceEvent::PowerPacket { iface, .. } => {
                Some(iface)
            }
            TraceEvent::TcpRto { flow, .. } | TraceEvent::TcpCwnd { flow, .. } => Some(flow),
            TraceEvent::StorageCross { .. }
            | TraceEvent::ColdStart { .. }
            | TraceEvent::Brownout { .. }
            | TraceEvent::MpptUpdate { .. } => None,
        }
    }
}

/// One sim-time-stamped trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

impl TraceRecord {
    /// Render as one line of stable JSON (no trailing newline). Field
    /// order is fixed: `t`, `layer`, `kind`, then event-specific fields.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"layer\":\"{}\",\"kind\":\"{}\"",
            self.at.as_nanos(),
            self.event.layer(),
            self.event.kind()
        );
        match self.event {
            TraceEvent::MacTxStart {
                medium,
                sta,
                frame,
                bytes,
                rate_mbps,
                collided,
            } => {
                let _ = write!(
                    s,
                    ",\"medium\":{medium},\"sta\":{sta},\"frame\":\"{}\",\"bytes\":{bytes},\"rate_mbps\":",
                    frame.label()
                );
                push_f64(&mut s, rate_mbps);
                let _ = write!(s, ",\"collided\":{collided}");
            }
            TraceEvent::MacTxEnd { medium, sta } => {
                let _ = write!(s, ",\"medium\":{medium},\"sta\":{sta}");
            }
            TraceEvent::MacBackoffDraw {
                medium,
                sta,
                slots,
                cw,
            } => {
                let _ = write!(
                    s,
                    ",\"medium\":{medium},\"sta\":{sta},\"slots\":{slots},\"cw\":{cw}"
                );
            }
            TraceEvent::MacDifsDefer { medium, sta } => {
                let _ = write!(s, ",\"medium\":{medium},\"sta\":{sta}");
            }
            TraceEvent::MacAck { medium, sta } => {
                let _ = write!(s, ",\"medium\":{medium},\"sta\":{sta}");
            }
            TraceEvent::MacRetry {
                medium,
                sta,
                retries,
            } => {
                let _ = write!(
                    s,
                    ",\"medium\":{medium},\"sta\":{sta},\"retries\":{retries}"
                );
            }
            TraceEvent::MacDrop {
                medium,
                sta,
                reason,
            } => {
                let _ = write!(
                    s,
                    ",\"medium\":{medium},\"sta\":{sta},\"reason\":\"{}\"",
                    reason.label()
                );
            }
            TraceEvent::InjectorGate {
                iface,
                open,
                qdepth,
            } => {
                let _ = write!(s, ",\"iface\":{iface},\"open\":{open},\"qdepth\":{qdepth}");
            }
            TraceEvent::PowerPacket { iface, bytes } => {
                let _ = write!(s, ",\"iface\":{iface},\"bytes\":{bytes}");
            }
            TraceEvent::StorageCross {
                volts,
                threshold,
                rising,
            } => {
                s.push_str(",\"volts\":");
                push_f64(&mut s, volts);
                s.push_str(",\"threshold\":");
                push_f64(&mut s, threshold);
                let _ = write!(s, ",\"rising\":{rising}");
            }
            TraceEvent::ColdStart { volts } | TraceEvent::Brownout { volts } => {
                s.push_str(",\"volts\":");
                push_f64(&mut s, volts);
            }
            TraceEvent::MpptUpdate { vref_volts, factor } => {
                s.push_str(",\"vref_volts\":");
                push_f64(&mut s, vref_volts);
                s.push_str(",\"factor\":");
                push_f64(&mut s, factor);
            }
            TraceEvent::TcpRto { flow, rto_s, cwnd } => {
                let _ = write!(s, ",\"flow\":{flow},\"rto_s\":");
                push_f64(&mut s, rto_s);
                s.push_str(",\"cwnd\":");
                push_f64(&mut s, cwnd);
            }
            TraceEvent::TcpCwnd {
                flow,
                cwnd,
                ssthresh,
                cause,
            } => {
                let _ = write!(s, ",\"flow\":{flow},\"cwnd\":");
                push_f64(&mut s, cwnd);
                s.push_str(",\"ssthresh\":");
                push_f64(&mut s, ssthresh);
                let _ = write!(s, ",\"cause\":\"{}\"", cause.label());
            }
        }
        s.push('}');
        s
    }
}

/// Destination for trace records. Implementations live in this module and
/// the bench harness only (lint rule R6).
pub trait TraceSink {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
    /// Downcast support: harnesses recover their concrete sink from
    /// [`uninstall`] via `sink.into_any().downcast::<RingSink>()`.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Sink that discards everything. Useful for measuring instrumentation
/// overhead with tracing "on" but output suppressed.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Bounded in-memory ring of the most recent records.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// Ring keeping at most `cap` records (older records are evicted).
    pub fn new(cap: usize) -> RingSink {
        RingSink {
            cap: cap.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Ring that never evicts (capacity `usize::MAX`).
    pub fn unbounded() -> RingSink {
        RingSink {
            cap: usize::MAX,
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained records as JSONL (one record per line, each
    /// line newline-terminated).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(*rec);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Sink that streams records to a JSONL file as they arrive.
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream records into it.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, rec: &TraceRecord) {
        let _ = writeln!(self.out, "{}", rec.to_json_line());
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Box<dyn TraceSink>>> = const { RefCell::new(None) };
}

/// Is tracing enabled on this thread? Instrumented hot paths check this
/// single branch before constructing an event.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Install `sink` as this thread's trace destination and enable tracing.
/// Returns the previously installed sink, if any.
pub fn install(sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    ENABLED.with(|e| e.set(true));
    prev
}

/// Disable tracing on this thread and return the installed sink (flushed).
pub fn uninstall() -> Option<Box<dyn TraceSink>> {
    ENABLED.with(|e| e.set(false));
    let sink = SINK.with(|s| s.borrow_mut().take());
    sink.map(|mut s| {
        let _ = s.flush();
        s
    })
}

/// Emit one event at sim time `at`. No-op when tracing is disabled.
pub fn emit(at: SimTime, event: TraceEvent) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.record(&TraceRecord { at, event });
        }
    });
}

/// Run `f` with a fresh unbounded ring installed on this thread, then
/// restore whatever sink was installed before and return `f`'s result
/// alongside the captured records rendered as JSONL.
pub fn capture_jsonl<T>(f: impl FnOnce() -> T) -> (T, String) {
    let prev = install(Box::new(RingSink::unbounded()));
    let out = f();
    let ring = uninstall();
    if let Some(p) = prev {
        install(p);
    }
    let jsonl = ring
        .and_then(|s| s.into_any().downcast::<RingSink>().ok())
        .map(|r| r.to_jsonl())
        .unwrap_or_default();
    (out, jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample() -> TraceRecord {
        TraceRecord {
            at: SimTime::ZERO + SimDuration::from_micros(250),
            event: TraceEvent::MacTxStart {
                medium: 0,
                sta: 2,
                frame: FrameClass::Power,
                bytes: 1536,
                rate_mbps: 54.0,
                collided: false,
            },
        }
    }

    #[test]
    fn record_renders_stable_json() {
        assert_eq!(
            sample().to_json_line(),
            "{\"t\":250000,\"layer\":\"mac\",\"kind\":\"tx_start\",\
             \"medium\":0,\"sta\":2,\"frame\":\"power\",\"bytes\":1536,\
             \"rate_mbps\":54.0,\"collided\":false}"
        );
    }

    #[test]
    fn emit_is_noop_when_disabled() {
        assert!(!enabled());
        emit(SimTime::ZERO, TraceEvent::MacTxEnd { medium: 0, sta: 0 });
        // Nothing to observe — the point is that it doesn't panic and no
        // sink was touched.
        assert!(uninstall().is_none());
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut ring = RingSink::new(2);
        for sta in 0..4u32 {
            ring.record(&TraceRecord {
                at: SimTime::ZERO,
                event: TraceEvent::MacTxEnd { medium: 0, sta },
            });
        }
        assert_eq!(ring.dropped(), 2);
        let stas: Vec<u32> = ring
            .records()
            .map(|r| r.event.entity().unwrap_or(u32::MAX))
            .collect();
        assert_eq!(stas, vec![2, 3]);
    }

    #[test]
    fn install_captures_emitted_events() {
        let ((), jsonl) = capture_jsonl(|| {
            assert!(enabled());
            emit(
                SimTime::from_micros(1),
                TraceEvent::InjectorGate {
                    iface: 0,
                    open: true,
                    qdepth: 3,
                },
            );
            emit(
                SimTime::from_micros(2),
                TraceEvent::PowerPacket {
                    iface: 0,
                    bytes: 700,
                },
            );
        });
        assert!(!enabled());
        assert_eq!(
            jsonl,
            "{\"t\":1000,\"layer\":\"core\",\"kind\":\"injector_gate\",\
             \"iface\":0,\"open\":true,\"qdepth\":3}\n\
             {\"t\":2000,\"layer\":\"core\",\"kind\":\"power_packet\",\
             \"iface\":0,\"bytes\":700}\n"
        );
    }

    #[test]
    fn layers_and_kinds_are_consistent() {
        let ev = TraceEvent::TcpCwnd {
            flow: 1,
            cwnd: 2.0,
            ssthresh: 4.0,
            cause: CwndCause::FastRetransmit,
        };
        assert_eq!(ev.layer(), "net");
        assert_eq!(ev.kind(), "tcp_cwnd");
        assert_eq!(ev.entity(), Some(1));
        let line = TraceRecord {
            at: SimTime::ZERO,
            event: ev,
        }
        .to_json_line();
        assert!(line.contains("\"cause\":\"fast_retransmit\""), "{line}");
    }
}
