//! Deterministic hierarchical span profiler.
//!
//! Answers "where does time go?" for a simulation run, in two currencies at
//! once:
//!
//! * **Sim time** — how much *simulated* time each subsystem accounts for
//!   (frame airtime inside the DCF, integration steps inside the harvester,
//!   …). Instrumented code attributes it explicitly via [`attr`], so the
//!   numbers are exact, deterministic, and golden-testable: byte-identical
//!   at any `--jobs` level and across debug/release builds.
//! * **Wall time** — how long each span took on the host clock. This is the
//!   only place outside `crates/bench` allowed to touch
//!   [`std::time::Instant`] (lint rule R7); it is opt-in via
//!   [`enable`]`(true)`, used by `bench_report` only, and every rendered
//!   wall field carries the `wall_ms` key token so golden comparisons strip
//!   it. Wall time is *sampled* (1 in [`WALL_SAMPLE_EVERY`] entries, plus
//!   each node's first) and scaled up at snapshot time, so wall mode no
//!   longer dominates the very event loop it is measuring.
//!
//! Spans nest: [`span`] returns an RAII guard that makes its node the
//! innermost open span and restores the enclosing one on drop, so the same
//! span name under different parents is attributed separately (a true call
//! *tree*, not a flat tag set). The tree lives in a thread-local arena with
//! `BTreeMap`-ordered children, so snapshots render in stable name order.
//!
//! Like [`super::trace`] and [`super::metrics`], the profiler follows the
//! one-branch-when-off discipline: [`span`] and [`attr`] check a
//! thread-local [`enabled`] flag first and return inert values when the
//! profiler is off, so uninstrumented runs pay a single predictable branch
//! per site. The simulation never reads profiler state back, so enabling it
//! cannot perturb results.
//!
//! See `docs/OBSERVABILITY.md` ("Profiling") for the span catalogue and the
//! `powifi-prof` inspector.

use crate::time::SimDuration;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Sample one in this many span entries for wall timing (power of two).
/// Reading the host clock twice per span costs more than the rest of the
/// span bookkeeping combined at simulator event rates (tens of millions of
/// spans per run), so wall mode times a deterministic 1-in-512 subsample
/// (plus every node's first entry) and scales by the observed count at
/// snapshot time. Wall numbers are nondeterministic and stripped from
/// goldens, so the estimate costs nothing in reproducibility; hot spans
/// still collect tens of thousands of samples per run.
const WALL_SAMPLE_EVERY: u64 = 512;

/// One node of the arena call tree (see [`ProfState`]).
#[derive(Debug)]
struct Node {
    name: &'static str,
    /// Child name → arena index. BTree order gives stable rendering.
    children: BTreeMap<&'static str, usize>,
    /// One-entry lookup cache: the last child entered under this node. Hot
    /// loops re-enter the same child span millions of times in a row, so a
    /// pointer compare on the `&'static str` skips any map walk; a miss
    /// falls back to `by_ptr`, so equal-content names still unify.
    last_child: Option<(&'static str, usize)>,
    /// Pointer-keyed child lookup: one entry per distinct `&'static str`
    /// pointer seen, scanned linearly (span fan-out is tiny). Names are
    /// string literals, so the pointer is a stable identity per call site;
    /// a content-equal name from a different site falls through to the
    /// ordered map once and is then added here.
    by_ptr: Vec<(*const u8, usize)>,
    /// Times this span was entered.
    count: u64,
    /// Sim time attributed directly to this span via [`attr`].
    sim_self_ns: u64,
    /// Largest single [`attr`] observation.
    sim_max_ns: u64,
    /// Wall time from enter to drop, accumulated over *sampled* entries
    /// (inclusive of children).
    wall_ns: u64,
    /// Number of sampled entries contributing to `wall_ns`.
    wall_sampled: u64,
    /// Largest single enter-to-drop wall observation (among samples).
    wall_max_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: BTreeMap::new(),
            last_child: None,
            by_ptr: Vec::new(),
            count: 0,
            sim_self_ns: 0,
            sim_max_ns: 0,
            wall_ns: 0,
            wall_sampled: 0,
            wall_max_ns: 0,
        }
    }
}

/// Arena-backed call tree. Index 0 is a synthetic root that is never
/// rendered; the innermost *open* span lives outside the arena, in
/// [`Prof::cur`], so closing a span does not need to borrow this state.
#[derive(Debug)]
struct ProfState {
    arena: Vec<Node>,
}

impl ProfState {
    fn new() -> ProfState {
        ProfState {
            arena: vec![Node::new("")],
        }
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.arena.push(Node::new(""));
    }
}

/// Slots in the direct-mapped hot-entry cache (power of two).
const HOT_SLOTS: usize = 8;

/// One slot of the hot-entry cache: the last `(parent, name)` pair resolved
/// whose parent hashes (`parent & (HOT_SLOTS-1)`) here, plus entry counts
/// not yet flushed into the node. A node's counts can only accumulate via
/// its one `(parent, name)` slot, so flushing the slot before the arena is
/// read (or on eviction) keeps `Node::count` exact.
struct HotSlot {
    parent: Cell<usize>,
    /// The name's `as_ptr()` address (0 = empty). Names are `'static`
    /// literals, so the address is a stable identity per call site.
    name: Cell<usize>,
    idx: Cell<usize>,
    pending: Cell<u64>,
}

impl HotSlot {
    fn new() -> HotSlot {
        HotSlot {
            parent: Cell::new(usize::MAX),
            name: Cell::new(0),
            idx: Cell::new(0),
            pending: Cell::new(0),
        }
    }

    fn clear(&self) {
        self.parent.set(usize::MAX);
        self.name.set(0);
        self.idx.set(0);
        self.pending.set(0);
    }
}

/// All per-thread profiler state behind a single thread-local, so the span
/// hot path pays one TLS access per operation instead of three.
///
/// `cur` is the arena index of the innermost open span (0 = root). Each
/// [`SpanGuard`] remembers the previous value and restores it on drop — a
/// plain `Cell` store, with no `RefCell` traffic on the close path unless
/// the entry was wall-sampled. A stale `cur` (guard dropped after a
/// [`reset`] shrank the arena) is caught by bounds checks at the next use
/// and falls back to the root.
///
/// `hot` lets a repeat entry of the same child under the same parent skip
/// the `RefCell` borrow entirely: the count increment is banked in the
/// slot's `pending` cell and flushed into the arena on eviction and before
/// every snapshot.
struct Prof {
    enabled: Cell<bool>,
    wall: Cell<bool>,
    cur: Cell<usize>,
    /// Monotone span-entry counter driving wall sampling.
    tick: Cell<u64>,
    hot: [HotSlot; HOT_SLOTS],
    state: RefCell<ProfState>,
}

impl Prof {
    /// Flush every hot slot's pending count into the arena.
    fn flush_hot(&self, s: &mut ProfState) {
        for h in &self.hot {
            let pend = h.pending.get();
            if pend > 0 {
                if let Some(n) = s.arena.get_mut(h.idx.get()) {
                    n.count += pend;
                }
                h.pending.set(0);
            }
        }
    }

    fn clear_hot(&self) {
        for h in &self.hot {
            h.clear();
        }
        self.tick.set(0);
    }
}

thread_local! {
    static PROF: Prof = Prof {
        enabled: const { Cell::new(false) },
        wall: const { Cell::new(false) },
        cur: const { Cell::new(0) },
        tick: const { Cell::new(0) },
        hot: std::array::from_fn(|_| HotSlot::new()),
        state: RefCell::new(ProfState::new()),
    };
}

/// Is the profiler recording on this thread? Instrumented code checks this
/// (inside [`span`] / [`attr`]) so the disabled path costs one branch.
#[inline]
pub fn enabled() -> bool {
    PROF.with(|p| p.enabled.get())
}

/// Is wall-clock timing on for this thread's profiler?
pub fn wall_enabled() -> bool {
    PROF.with(|p| p.wall.get())
}

/// Start recording on this thread and clear any previous tree. With
/// `wall = true` each span also accumulates host-clock time (bench-only;
/// wall fields are nondeterministic, sampled, and stripped from goldens).
pub fn enable(wall: bool) {
    PROF.with(|p| {
        p.state.borrow_mut().clear();
        p.clear_hot();
        p.cur.set(0);
        p.wall.set(wall);
        p.enabled.set(true);
    });
}

/// Stop recording on this thread. The tree is kept until [`reset`] or the
/// next [`enable`], so it can still be snapshotted.
pub fn disable() {
    PROF.with(|p| p.enabled.set(false));
}

/// Clear this thread's tree and open-span stack without changing the
/// enabled flags.
pub fn reset() {
    PROF.with(|p| {
        p.state.borrow_mut().clear();
        p.clear_hot();
        p.cur.set(0);
    });
}

/// RAII guard for one open span; created by [`span`], pops on drop.
/// Inert (a single dead branch on drop) when the profiler is disabled.
#[must_use = "a span guard attributes time until it is dropped"]
pub struct SpanGuard {
    active: bool,
    /// Arena index of the enclosing span, restored into [`Prof::cur`] on
    /// drop.
    prev: usize,
    start: Option<Instant>,
}

/// Enter the span `name` under the innermost open span. Returns a guard
/// that closes the span when dropped. When the profiler is disabled this is
/// one thread-local read and one branch, no allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    PROF.with(|p| {
        if !p.enabled.get() {
            return SpanGuard {
                active: false,
                prev: 0,
                start: None,
            };
        }
        // Hot path: re-entering the child the cache already resolved for
        // this parent banks the count in the slot and never borrows the
        // arena. A cached node was entered before, so it is never "first"
        // for the first-entry wall sample.
        let parent = p.cur.get();
        let h = &p.hot[parent & (HOT_SLOTS - 1)];
        if h.parent.get() == parent && h.name.get() == name.as_ptr() as usize {
            h.pending.set(h.pending.get() + 1);
            p.cur.set(h.idx.get());
            let start = if p.wall.get() {
                let t = p.tick.get().wrapping_add(1);
                p.tick.set(t);
                t.is_multiple_of(WALL_SAMPLE_EVERY).then(Instant::now)
            } else {
                None
            };
            return SpanGuard {
                active: true,
                prev: parent,
                start,
            };
        }
        enter(p, name)
    })
}

#[cold]
fn enter(p: &Prof, name: &'static str) -> SpanGuard {
    let mut s = p.state.borrow_mut();
    let s = &mut *s;
    // A `cur` pointing past the arena means a guard outlived a reset that
    // shrank the tree; re-root rather than index out of bounds.
    let parent = match p.cur.get() {
        i if i < s.arena.len() => i,
        _ => 0,
    };
    // Evict this parent's hot slot: flush its banked count (this node's
    // pending, if the slot held the same pair, so `count` below is exact)
    // and re-point it at the entry we are about to resolve.
    let h = &p.hot[parent & (HOT_SLOTS - 1)];
    let pend = h.pending.get();
    if pend > 0 {
        if let Some(n) = s.arena.get_mut(h.idx.get()) {
            n.count += pend;
        }
        h.pending.set(0);
    }
    // Pointer-compare against the last child entered under this parent;
    // fall back to the ordered map on a miss (first entry, or alternating
    // children) so equal-content names still resolve to one node.
    let idx = match s.arena[parent].last_child {
        Some((cached, idx)) if std::ptr::eq(cached.as_ptr(), name.as_ptr()) => idx,
        _ => {
            let hit = s.arena[parent]
                .by_ptr
                .iter()
                .find(|&&(p, _)| std::ptr::eq(p, name.as_ptr()))
                .map(|&(_, i)| i);
            let idx = match hit {
                Some(idx) => idx,
                None => {
                    let idx = match s.arena[parent].children.get(name).copied() {
                        Some(idx) => idx,
                        None => {
                            let idx = s.arena.len();
                            s.arena.push(Node::new(name));
                            s.arena[parent].children.insert(name, idx);
                            idx
                        }
                    };
                    s.arena[parent].by_ptr.push((name.as_ptr(), idx));
                    idx
                }
            };
            s.arena[parent].last_child = Some((name, idx));
            idx
        }
    };
    h.parent.set(parent);
    h.name.set(name.as_ptr() as usize);
    h.idx.set(idx);
    let n = &mut s.arena[idx];
    n.count += 1;
    let first = n.count == 1;
    let sampled = p.wall.get() && {
        let t = p.tick.get().wrapping_add(1);
        p.tick.set(t);
        first || t.is_multiple_of(WALL_SAMPLE_EVERY)
    };
    p.cur.set(idx);
    SpanGuard {
        active: true,
        prev: parent,
        start: if sampled { Some(Instant::now()) } else { None },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let wall_ns = self
            .start
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        PROF.with(|p| {
            if let Some(ns) = wall_ns {
                let mut s = p.state.borrow_mut();
                let idx = p.cur.get();
                if idx != 0 {
                    if let Some(n) = s.arena.get_mut(idx) {
                        n.wall_ns = n.wall_ns.saturating_add(ns);
                        n.wall_sampled += 1;
                        n.wall_max_ns = n.wall_max_ns.max(ns);
                    }
                }
            }
            p.cur.set(self.prev);
        });
    }
}

/// Attribute `d` of simulated time to the innermost open span. One branch
/// when the profiler is disabled; a no-op when no span is open.
#[inline]
pub fn attr(d: SimDuration) {
    PROF.with(|p| {
        if !p.enabled.get() {
            return;
        }
        attr_slow(p, d);
    });
}

#[cold]
fn attr_slow(p: &Prof, d: SimDuration) {
    let idx = p.cur.get();
    if idx == 0 {
        return; // no span open; nowhere meaningful to attribute
    }
    let mut s = p.state.borrow_mut();
    let ns = d.as_nanos();
    let Some(n) = s.arena.get_mut(idx) else {
        return; // stale guard after a reset; nothing to attribute to
    };
    n.sim_self_ns = n.sim_self_ns.saturating_add(ns);
    n.sim_max_ns = n.sim_max_ns.max(ns);
}

/// One span of a [`ProfSnapshot`]: stats plus name-ordered children.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfSpan {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Sim time attributed directly to this span (ns).
    pub sim_self_ns: u64,
    /// Sim time of this span plus all descendants (ns).
    pub sim_total_ns: u64,
    /// Largest single [`attr`] observation (ns).
    pub sim_max_ns: u64,
    /// Estimated wall time, enter to drop (ns); only when wall timing was
    /// enabled. Extrapolated from a 1-in-[`WALL_SAMPLE_EVERY`] subsample of
    /// entries. Rendered as `wall_ms` so golden filters strip it.
    pub wall_ns: Option<u64>,
    /// Largest single enter-to-drop wall time (ns) among sampled entries;
    /// only with wall timing.
    pub wall_max_ns: Option<u64>,
    /// Child spans in name order.
    pub children: Vec<ProfSpan>,
}

/// Immutable, stable-ordered copy of one thread's span tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfSnapshot {
    /// Whether wall-clock timing was on when the tree was recorded.
    pub wall: bool,
    /// Top-level spans in name order.
    pub roots: Vec<ProfSpan>,
}

/// Copy this thread's span tree without clearing it. Totals are computed
/// bottom-up (self + descendants) at snapshot time.
pub fn snapshot() -> ProfSnapshot {
    PROF.with(|p| {
        let mut s = p.state.borrow_mut();
        p.flush_hot(&mut s);
        let wall = p.wall.get();
        ProfSnapshot {
            wall,
            roots: s.arena[0]
                .children
                .values()
                .map(|&idx| copy_span(&s.arena, idx, wall))
                .collect(),
        }
    })
}

/// Scale a node's sampled wall accumulation up to its full entry count.
fn estimate_wall_ns(n: &Node) -> u64 {
    if n.wall_sampled == 0 {
        return 0;
    }
    u64::try_from(u128::from(n.wall_ns) * u128::from(n.count) / u128::from(n.wall_sampled))
        .unwrap_or(u64::MAX)
}

fn copy_span(arena: &[Node], idx: usize, wall: bool) -> ProfSpan {
    let n = &arena[idx];
    let children: Vec<ProfSpan> = n
        .children
        .values()
        .map(|&c| copy_span(arena, c, wall))
        .collect();
    let sim_total_ns = n.sim_self_ns + children.iter().map(|c| c.sim_total_ns).sum::<u64>();
    ProfSpan {
        name: n.name.to_string(),
        count: n.count,
        sim_self_ns: n.sim_self_ns,
        sim_total_ns,
        sim_max_ns: n.sim_max_ns,
        wall_ns: wall.then(|| estimate_wall_ns(n)),
        wall_max_ns: wall.then_some(n.wall_max_ns),
        children,
    }
}

/// Shortest-roundtrip float rendering matching the vendored `serde_json`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_span_json(out: &mut String, sp: &ProfSpan) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"count\":{},\"sim_self_ns\":{},\"sim_total_ns\":{},\"sim_max_ns\":{}",
        sp.name, sp.count, sp.sim_self_ns, sp.sim_total_ns, sp.sim_max_ns
    );
    if let Some(w) = sp.wall_ns {
        out.push_str(",\"wall_ms\":");
        push_f64(out, w as f64 / 1e6);
    }
    if let Some(w) = sp.wall_max_ns {
        out.push_str(",\"max_wall_ms\":");
        push_f64(out, w as f64 / 1e6);
    }
    out.push_str(",\"children\":[");
    for (i, c) in sp.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span_json(out, c);
    }
    out.push_str("]}");
}

impl ProfSnapshot {
    /// Render the tree as one line of stable JSON: fixed field order,
    /// name-sorted children, wall fields only when wall timing was on
    /// (and then under `wall_ms`-token keys so golden filters drop them).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"wall\":{},\"spans\":[", self.wall);
        for (i, sp) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_span_json(&mut out, sp);
        }
        out.push_str("]}");
        out
    }

    /// Render an indented human-readable tree, two spaces per level.
    pub fn render_tree(&self) -> String {
        fn walk(out: &mut String, sp: &ProfSpan, depth: usize, wall: bool) {
            let pad = "  ".repeat(depth);
            let _ = write!(
                out,
                "{pad}{}  count {}  sim_total {}  sim_self {}  sim_max {}",
                sp.name,
                sp.count,
                SimDuration::from_nanos(sp.sim_total_ns),
                SimDuration::from_nanos(sp.sim_self_ns),
                SimDuration::from_nanos(sp.sim_max_ns),
            );
            if wall {
                if let Some(w) = sp.wall_ns {
                    let _ = write!(out, "  wall {:.3}ms", w as f64 / 1e6);
                }
            }
            out.push('\n');
            for c in &sp.children {
                walk(out, c, depth + 1, wall);
            }
        }
        let mut out = String::new();
        for sp in &self.roots {
            walk(&mut out, sp, 0, self.wall);
        }
        out
    }

    /// Render folded stacks (`parent;child;leaf value`) over sim self time,
    /// the input format flamegraph tools consume. Spans with zero self time
    /// still emit a line when they have a nonzero count, so pure-container
    /// spans remain visible in the profile.
    pub fn render_folded(&self) -> String {
        fn walk(out: &mut String, path: &mut Vec<String>, sp: &ProfSpan) {
            path.push(sp.name.clone());
            if sp.sim_self_ns > 0 || sp.children.is_empty() {
                let _ = writeln!(out, "{} {}", path.join(";"), sp.sim_self_ns);
            }
            for c in &sp.children {
                walk(out, path, c);
            }
            path.pop();
        }
        let mut out = String::new();
        let mut path = Vec::new();
        for sp in &self.roots {
            walk(&mut out, &mut path, sp);
        }
        out
    }

    /// Flatten the tree into `(path, span)` pairs in depth-first order,
    /// with `path` rendered `a;b;c`. Used by `powifi-prof top`.
    pub fn flatten(&self) -> Vec<(String, &ProfSpan)> {
        fn walk<'a>(out: &mut Vec<(String, &'a ProfSpan)>, prefix: &str, sp: &'a ProfSpan) {
            let path = if prefix.is_empty() {
                sp.name.clone()
            } else {
                format!("{prefix};{}", sp.name)
            };
            out.push((path.clone(), sp));
            for c in &sp.children {
                walk(out, &path, c);
            }
        }
        let mut out = Vec::new();
        for sp in &self.roots {
            walk(&mut out, "", sp);
        }
        out
    }

    /// True when the tree recorded nothing (no spans entered).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// Run `f` with the profiler enabled (sim-time only, wall off) on this
/// thread, returning its result and the final snapshot. Restores the
/// previous enabled/wall flags afterwards, so captures nest safely.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, ProfSnapshot) {
    let prev_enabled = enabled();
    let prev_wall = wall_enabled();
    enable(false);
    let out = f();
    let snap = snapshot();
    PROF.with(|p| {
        p.enabled.set(prev_enabled);
        p.wall.set(prev_wall);
        p.state.borrow_mut().clear();
        p.clear_hot();
        p.cur.set(0);
    });
    (out, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        reset();
        {
            let _g = span("t.outer");
            attr(SimDuration::from_micros(5));
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree_with_totals() {
        let ((), snap) = capture(|| {
            let _a = span("t.a");
            attr(SimDuration::from_nanos(10));
            {
                let _b = span("t.b");
                attr(SimDuration::from_nanos(7));
                attr(SimDuration::from_nanos(3));
            }
            {
                let _b = span("t.b");
                attr(SimDuration::from_nanos(1));
            }
        });
        assert_eq!(snap.roots.len(), 1);
        let a = &snap.roots[0];
        assert_eq!(a.name, "t.a");
        assert_eq!(a.count, 1);
        assert_eq!(a.sim_self_ns, 10);
        assert_eq!(a.sim_total_ns, 21);
        assert_eq!(a.children.len(), 1);
        let b = &a.children[0];
        assert_eq!(b.count, 2);
        assert_eq!(b.sim_self_ns, 11);
        assert_eq!(b.sim_max_ns, 7);
        assert!(!snap.wall);
        assert!(a.wall_ns.is_none());
    }

    #[test]
    fn same_name_under_different_parents_is_separate() {
        let ((), snap) = capture(|| {
            {
                let _p = span("t.p1");
                let _l = span("t.leaf");
                attr(SimDuration::from_nanos(1));
            }
            {
                let _p = span("t.p2");
                let _l = span("t.leaf");
                attr(SimDuration::from_nanos(2));
            }
        });
        assert_eq!(snap.roots.len(), 2);
        assert_eq!(snap.roots[0].children[0].sim_self_ns, 1);
        assert_eq!(snap.roots[1].children[0].sim_self_ns, 2);
    }

    #[test]
    fn attr_outside_any_span_is_dropped() {
        let ((), snap) = capture(|| {
            attr(SimDuration::from_secs(1));
            let _g = span("t.x");
        });
        assert_eq!(snap.roots.len(), 1);
        assert_eq!(snap.roots[0].sim_total_ns, 0);
    }

    #[test]
    fn json_is_stable_and_name_ordered() {
        let ((), snap) = capture(|| {
            {
                let _z = span("t.z");
                attr(SimDuration::from_nanos(2));
            }
            let _a = span("t.a");
            attr(SimDuration::from_nanos(1));
        });
        let j = snap.to_json();
        assert_eq!(
            j,
            "{\"wall\":false,\"spans\":[\
             {\"name\":\"t.a\",\"count\":1,\"sim_self_ns\":1,\"sim_total_ns\":1,\
             \"sim_max_ns\":1,\"children\":[]},\
             {\"name\":\"t.z\",\"count\":1,\"sim_self_ns\":2,\"sim_total_ns\":2,\
             \"sim_max_ns\":2,\"children\":[]}]}"
        );
        assert!(!j.contains("wall_ms"), "wall keys must be absent when off");
    }

    #[test]
    fn wall_mode_emits_wall_ms_keys_only() {
        enable(true);
        {
            let _g = span("t.w");
        }
        let snap = snapshot();
        disable();
        reset();
        PROF.with(|p| p.wall.set(false));
        assert!(snap.wall);
        let j = snap.to_json();
        assert!(j.contains("\"wall_ms\":"));
        assert!(j.contains("\"max_wall_ms\":"));
    }

    #[test]
    fn folded_stacks_cover_leaves_and_self_time() {
        let ((), snap) = capture(|| {
            let _a = span("t.a");
            attr(SimDuration::from_nanos(4));
            let _b = span("t.b");
            attr(SimDuration::from_nanos(6));
        });
        let folded = snap.render_folded();
        assert_eq!(folded, "t.a 4\nt.a;t.b 6\n");
    }

    #[test]
    fn capture_restores_disabled_state() {
        disable();
        let _ = capture(|| {
            assert!(enabled());
        });
        assert!(!enabled());
        assert!(snapshot().is_empty());
    }
}
