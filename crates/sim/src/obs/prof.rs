//! Deterministic hierarchical span profiler.
//!
//! Answers "where does time go?" for a simulation run, in two currencies at
//! once:
//!
//! * **Sim time** — how much *simulated* time each subsystem accounts for
//!   (frame airtime inside the DCF, integration steps inside the harvester,
//!   …). Instrumented code attributes it explicitly via [`attr`], so the
//!   numbers are exact, deterministic, and golden-testable: byte-identical
//!   at any `--jobs` level and across debug/release builds.
//! * **Wall time** — how long each span took on the host clock. This is the
//!   only place outside `crates/bench` allowed to touch
//!   [`std::time::Instant`] (lint rule R7); it is opt-in via
//!   [`enable`]`(true)`, used by `bench_report` only, and every rendered
//!   wall field carries the `wall_ms` key token so golden comparisons strip
//!   it.
//!
//! Spans nest: [`span`] returns an RAII guard that pushes a node onto this
//! thread's call stack and pops it on drop, so the same span name under
//! different parents is attributed separately (a true call *tree*, not a
//! flat tag set). The tree lives in a thread-local arena with
//! `BTreeMap`-ordered children, so snapshots render in stable name order.
//!
//! Like [`super::trace`] and [`super::metrics`], the profiler follows the
//! one-branch-when-off discipline: [`span`] and [`attr`] check a
//! thread-local [`enabled`] flag first and return inert values when the
//! profiler is off, so uninstrumented runs pay a single predictable branch
//! per site. The simulation never reads profiler state back, so enabling it
//! cannot perturb results.
//!
//! See `docs/OBSERVABILITY.md` ("Profiling") for the span catalogue and the
//! `powifi-prof` inspector.

use crate::time::SimDuration;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One node of the arena call tree (see [`ProfState`]).
#[derive(Debug)]
struct Node {
    name: &'static str,
    /// Child name → arena index. BTree order gives stable rendering.
    children: BTreeMap<&'static str, usize>,
    /// Times this span was entered.
    count: u64,
    /// Sim time attributed directly to this span via [`attr`].
    sim_self_ns: u64,
    /// Largest single [`attr`] observation.
    sim_max_ns: u64,
    /// Wall time from enter to drop, accumulated (inclusive of children).
    wall_ns: u64,
    /// Largest single enter-to-drop wall observation.
    wall_max_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: BTreeMap::new(),
            count: 0,
            sim_self_ns: 0,
            sim_max_ns: 0,
            wall_ns: 0,
            wall_max_ns: 0,
        }
    }
}

/// Arena-backed call tree plus the open-span stack. Index 0 is a synthetic
/// root that is never rendered; the stack always contains at least it.
#[derive(Debug)]
struct ProfState {
    arena: Vec<Node>,
    stack: Vec<usize>,
}

impl ProfState {
    fn new() -> ProfState {
        ProfState {
            arena: vec![Node::new("")],
            stack: vec![0],
        }
    }

    fn clear(&mut self) {
        self.arena.clear();
        self.arena.push(Node::new(""));
        self.stack.clear();
        self.stack.push(0);
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static WALL: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::new());
}

/// Is the profiler recording on this thread? Instrumented code checks this
/// (inside [`span`] / [`attr`]) so the disabled path costs one branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Is wall-clock timing on for this thread's profiler?
pub fn wall_enabled() -> bool {
    WALL.with(|w| w.get())
}

/// Start recording on this thread and clear any previous tree. With
/// `wall = true` each span also accumulates host-clock time (bench-only;
/// wall fields are nondeterministic and stripped from goldens).
pub fn enable(wall: bool) {
    STATE.with(|s| s.borrow_mut().clear());
    WALL.with(|w| w.set(wall));
    ENABLED.with(|e| e.set(true));
}

/// Stop recording on this thread. The tree is kept until [`reset`] or the
/// next [`enable`], so it can still be snapshotted.
pub fn disable() {
    ENABLED.with(|e| e.set(false));
}

/// Clear this thread's tree and open-span stack without changing the
/// enabled flags.
pub fn reset() {
    STATE.with(|s| s.borrow_mut().clear());
}

/// RAII guard for one open span; created by [`span`], pops on drop.
/// Inert (a single dead branch on drop) when the profiler is disabled.
#[must_use = "a span guard attributes time until it is dropped"]
pub struct SpanGuard {
    active: bool,
    start: Option<Instant>,
}

/// Enter the span `name` under the innermost open span. Returns a guard
/// that closes the span when dropped. When the profiler is disabled this is
/// one branch and no allocation.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: false,
            start: None,
        };
    }
    enter(name)
}

#[cold]
fn enter(name: &'static str) -> SpanGuard {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let parent = *s.stack.last().unwrap_or(&0);
        let idx = match s.arena[parent].children.get(name).copied() {
            Some(idx) => idx,
            None => {
                let idx = s.arena.len();
                s.arena.push(Node::new(name));
                s.arena[parent].children.insert(name, idx);
                idx
            }
        };
        s.arena[idx].count += 1;
        s.stack.push(idx);
    });
    SpanGuard {
        active: true,
        start: if wall_enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let wall_ns = self
            .start
            .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            // Never pop the synthetic root, even if guards are dropped out
            // of order (e.g. across an unwind).
            if s.stack.len() > 1 {
                if let Some(idx) = s.stack.pop() {
                    if let Some(ns) = wall_ns {
                        let n = &mut s.arena[idx];
                        n.wall_ns = n.wall_ns.saturating_add(ns);
                        n.wall_max_ns = n.wall_max_ns.max(ns);
                    }
                }
            }
        });
    }
}

/// Attribute `d` of simulated time to the innermost open span. One branch
/// when the profiler is disabled; a no-op when no span is open.
#[inline]
pub fn attr(d: SimDuration) {
    if !enabled() {
        return;
    }
    attr_slow(d);
}

#[cold]
fn attr_slow(d: SimDuration) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let Some(&idx) = s.stack.last() else { return };
        if idx == 0 {
            return; // no span open; nowhere meaningful to attribute
        }
        let ns = d.as_nanos();
        let n = &mut s.arena[idx];
        n.sim_self_ns = n.sim_self_ns.saturating_add(ns);
        n.sim_max_ns = n.sim_max_ns.max(ns);
    });
}

/// One span of a [`ProfSnapshot`]: stats plus name-ordered children.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfSpan {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Times the span was entered.
    pub count: u64,
    /// Sim time attributed directly to this span (ns).
    pub sim_self_ns: u64,
    /// Sim time of this span plus all descendants (ns).
    pub sim_total_ns: u64,
    /// Largest single [`attr`] observation (ns).
    pub sim_max_ns: u64,
    /// Accumulated wall time, enter to drop (ns); only when wall timing
    /// was enabled. Rendered as `wall_ms` so golden filters strip it.
    pub wall_ns: Option<u64>,
    /// Largest single enter-to-drop wall time (ns); only with wall timing.
    pub wall_max_ns: Option<u64>,
    /// Child spans in name order.
    pub children: Vec<ProfSpan>,
}

/// Immutable, stable-ordered copy of one thread's span tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfSnapshot {
    /// Whether wall-clock timing was on when the tree was recorded.
    pub wall: bool,
    /// Top-level spans in name order.
    pub roots: Vec<ProfSpan>,
}

/// Copy this thread's span tree without clearing it. Totals are computed
/// bottom-up (self + descendants) at snapshot time.
pub fn snapshot() -> ProfSnapshot {
    STATE.with(|s| {
        let s = s.borrow();
        let wall = wall_enabled();
        ProfSnapshot {
            wall,
            roots: s.arena[0]
                .children
                .values()
                .map(|&idx| copy_span(&s.arena, idx, wall))
                .collect(),
        }
    })
}

fn copy_span(arena: &[Node], idx: usize, wall: bool) -> ProfSpan {
    let n = &arena[idx];
    let children: Vec<ProfSpan> = n
        .children
        .values()
        .map(|&c| copy_span(arena, c, wall))
        .collect();
    let sim_total_ns = n.sim_self_ns + children.iter().map(|c| c.sim_total_ns).sum::<u64>();
    ProfSpan {
        name: n.name.to_string(),
        count: n.count,
        sim_self_ns: n.sim_self_ns,
        sim_total_ns,
        sim_max_ns: n.sim_max_ns,
        wall_ns: wall.then_some(n.wall_ns),
        wall_max_ns: wall.then_some(n.wall_max_ns),
        children,
    }
}

/// Shortest-roundtrip float rendering matching the vendored `serde_json`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_span_json(out: &mut String, sp: &ProfSpan) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"count\":{},\"sim_self_ns\":{},\"sim_total_ns\":{},\"sim_max_ns\":{}",
        sp.name, sp.count, sp.sim_self_ns, sp.sim_total_ns, sp.sim_max_ns
    );
    if let Some(w) = sp.wall_ns {
        out.push_str(",\"wall_ms\":");
        push_f64(out, w as f64 / 1e6);
    }
    if let Some(w) = sp.wall_max_ns {
        out.push_str(",\"max_wall_ms\":");
        push_f64(out, w as f64 / 1e6);
    }
    out.push_str(",\"children\":[");
    for (i, c) in sp.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span_json(out, c);
    }
    out.push_str("]}");
}

impl ProfSnapshot {
    /// Render the tree as one line of stable JSON: fixed field order,
    /// name-sorted children, wall fields only when wall timing was on
    /// (and then under `wall_ms`-token keys so golden filters drop them).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"wall\":{},\"spans\":[", self.wall);
        for (i, sp) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_span_json(&mut out, sp);
        }
        out.push_str("]}");
        out
    }

    /// Render an indented human-readable tree, two spaces per level.
    pub fn render_tree(&self) -> String {
        fn walk(out: &mut String, sp: &ProfSpan, depth: usize, wall: bool) {
            let pad = "  ".repeat(depth);
            let _ = write!(
                out,
                "{pad}{}  count {}  sim_total {}  sim_self {}  sim_max {}",
                sp.name,
                sp.count,
                SimDuration::from_nanos(sp.sim_total_ns),
                SimDuration::from_nanos(sp.sim_self_ns),
                SimDuration::from_nanos(sp.sim_max_ns),
            );
            if wall {
                if let Some(w) = sp.wall_ns {
                    let _ = write!(out, "  wall {:.3}ms", w as f64 / 1e6);
                }
            }
            out.push('\n');
            for c in &sp.children {
                walk(out, c, depth + 1, wall);
            }
        }
        let mut out = String::new();
        for sp in &self.roots {
            walk(&mut out, sp, 0, self.wall);
        }
        out
    }

    /// Render folded stacks (`parent;child;leaf value`) over sim self time,
    /// the input format flamegraph tools consume. Spans with zero self time
    /// still emit a line when they have a nonzero count, so pure-container
    /// spans remain visible in the profile.
    pub fn render_folded(&self) -> String {
        fn walk(out: &mut String, path: &mut Vec<String>, sp: &ProfSpan) {
            path.push(sp.name.clone());
            if sp.sim_self_ns > 0 || sp.children.is_empty() {
                let _ = writeln!(out, "{} {}", path.join(";"), sp.sim_self_ns);
            }
            for c in &sp.children {
                walk(out, path, c);
            }
            path.pop();
        }
        let mut out = String::new();
        let mut path = Vec::new();
        for sp in &self.roots {
            walk(&mut out, &mut path, sp);
        }
        out
    }

    /// Flatten the tree into `(path, span)` pairs in depth-first order,
    /// with `path` rendered `a;b;c`. Used by `powifi-prof top`.
    pub fn flatten(&self) -> Vec<(String, &ProfSpan)> {
        fn walk<'a>(out: &mut Vec<(String, &'a ProfSpan)>, prefix: &str, sp: &'a ProfSpan) {
            let path = if prefix.is_empty() {
                sp.name.clone()
            } else {
                format!("{prefix};{}", sp.name)
            };
            out.push((path.clone(), sp));
            for c in &sp.children {
                walk(out, &path, c);
            }
        }
        let mut out = Vec::new();
        for sp in &self.roots {
            walk(&mut out, "", sp);
        }
        out
    }

    /// True when the tree recorded nothing (no spans entered).
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

/// Run `f` with the profiler enabled (sim-time only, wall off) on this
/// thread, returning its result and the final snapshot. Restores the
/// previous enabled/wall flags afterwards, so captures nest safely.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, ProfSnapshot) {
    let prev_enabled = enabled();
    let prev_wall = wall_enabled();
    enable(false);
    let out = f();
    let snap = snapshot();
    ENABLED.with(|e| e.set(prev_enabled));
    WALL.with(|w| w.set(prev_wall));
    STATE.with(|s| s.borrow_mut().clear());
    (out, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        reset();
        {
            let _g = span("t.outer");
            attr(SimDuration::from_micros(5));
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree_with_totals() {
        let ((), snap) = capture(|| {
            let _a = span("t.a");
            attr(SimDuration::from_nanos(10));
            {
                let _b = span("t.b");
                attr(SimDuration::from_nanos(7));
                attr(SimDuration::from_nanos(3));
            }
            {
                let _b = span("t.b");
                attr(SimDuration::from_nanos(1));
            }
        });
        assert_eq!(snap.roots.len(), 1);
        let a = &snap.roots[0];
        assert_eq!(a.name, "t.a");
        assert_eq!(a.count, 1);
        assert_eq!(a.sim_self_ns, 10);
        assert_eq!(a.sim_total_ns, 21);
        assert_eq!(a.children.len(), 1);
        let b = &a.children[0];
        assert_eq!(b.count, 2);
        assert_eq!(b.sim_self_ns, 11);
        assert_eq!(b.sim_max_ns, 7);
        assert!(!snap.wall);
        assert!(a.wall_ns.is_none());
    }

    #[test]
    fn same_name_under_different_parents_is_separate() {
        let ((), snap) = capture(|| {
            {
                let _p = span("t.p1");
                let _l = span("t.leaf");
                attr(SimDuration::from_nanos(1));
            }
            {
                let _p = span("t.p2");
                let _l = span("t.leaf");
                attr(SimDuration::from_nanos(2));
            }
        });
        assert_eq!(snap.roots.len(), 2);
        assert_eq!(snap.roots[0].children[0].sim_self_ns, 1);
        assert_eq!(snap.roots[1].children[0].sim_self_ns, 2);
    }

    #[test]
    fn attr_outside_any_span_is_dropped() {
        let ((), snap) = capture(|| {
            attr(SimDuration::from_secs(1));
            let _g = span("t.x");
        });
        assert_eq!(snap.roots.len(), 1);
        assert_eq!(snap.roots[0].sim_total_ns, 0);
    }

    #[test]
    fn json_is_stable_and_name_ordered() {
        let ((), snap) = capture(|| {
            {
                let _z = span("t.z");
                attr(SimDuration::from_nanos(2));
            }
            let _a = span("t.a");
            attr(SimDuration::from_nanos(1));
        });
        let j = snap.to_json();
        assert_eq!(
            j,
            "{\"wall\":false,\"spans\":[\
             {\"name\":\"t.a\",\"count\":1,\"sim_self_ns\":1,\"sim_total_ns\":1,\
             \"sim_max_ns\":1,\"children\":[]},\
             {\"name\":\"t.z\",\"count\":1,\"sim_self_ns\":2,\"sim_total_ns\":2,\
             \"sim_max_ns\":2,\"children\":[]}]}"
        );
        assert!(!j.contains("wall_ms"), "wall keys must be absent when off");
    }

    #[test]
    fn wall_mode_emits_wall_ms_keys_only() {
        enable(true);
        {
            let _g = span("t.w");
        }
        let snap = snapshot();
        disable();
        reset();
        WALL.with(|w| w.set(false));
        assert!(snap.wall);
        let j = snap.to_json();
        assert!(j.contains("\"wall_ms\":"));
        assert!(j.contains("\"max_wall_ms\":"));
    }

    #[test]
    fn folded_stacks_cover_leaves_and_self_time() {
        let ((), snap) = capture(|| {
            let _a = span("t.a");
            attr(SimDuration::from_nanos(4));
            let _b = span("t.b");
            attr(SimDuration::from_nanos(6));
        });
        let folded = snap.render_folded();
        assert_eq!(folded, "t.a 4\nt.a;t.b 6\n");
    }

    #[test]
    fn capture_restores_disabled_state() {
        disable();
        let _ = capture(|| {
            assert!(enabled());
        });
        assert!(!enabled());
        assert!(snapshot().is_empty());
    }
}
