//! Strongly-typed physical quantities.
//!
//! The simulation mixes logarithmic (dBm, dB) and linear (W, V, J, s)
//! quantities; mixing them up silently is the classic RF-budget bug — and
//! the classic energy-accounting bug: a seconds/joules mix-up in the
//! occupancy formula (Σ sizeᵢ/rateᵢ / duration) or the harvested-energy
//! integral would produce plausible-but-wrong numbers without any runtime
//! invariant firing. The newtypes here make the units part of the signature,
//! centralize the conversions, and give dimensional arithmetic its only
//! legal forms (`Watts × Seconds = Joules`, `Joules / Seconds = Watts`,
//! `dBm ± dB`, …) so the mistake becomes a compile error.
//!
//! These types are defined in `powifi-sim` (the bottom of the crate stack)
//! and re-exported by `powifi-rf`, so every layer shares one vocabulary.

use crate::time::SimDuration;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Power on the decibel-milliwatt scale.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Dbm(pub f64);

/// A power *ratio* in decibels (gains positive, losses negative when added).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Db(pub f64);

/// Linear power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Watts(pub f64);

/// Linear power in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MilliWatts(pub f64);

/// Linear power in microwatts (the harvester's natural scale).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MicroWatts(pub f64);

/// Frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Hertz(pub f64);

/// Distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Meters(pub f64);

/// Electric potential in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Volts(pub f64);

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Joules(pub f64);

/// Wall-clock-free physical time in seconds, as a float.
///
/// [`crate::SimTime`]/[`SimDuration`] remain the authoritative integer
/// clock; `Seconds` is the *measurement* type for accumulated airtime,
/// occupancy numerators and energy integrals, where fractional math is
/// unavoidable. Convert back with the checked [`Seconds::to_duration`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

impl Dbm {
    /// Convert to linear milliwatts.
    pub fn to_mw(self) -> MilliWatts {
        MilliWatts(10f64.powf(self.0 / 10.0))
    }

    /// Convert to linear microwatts.
    pub fn to_uw(self) -> MicroWatts {
        MicroWatts(10f64.powf(self.0 / 10.0) * 1e3)
    }

    /// Convert to watts.
    pub fn to_watts(self) -> Watts {
        Watts(10f64.powf(self.0 / 10.0) * 1e-3)
    }

    /// Construct from linear milliwatts; `mW <= 0` maps to −∞ dBm.
    pub fn from_mw(mw: MilliWatts) -> Dbm {
        if mw.0 <= 0.0 {
            Dbm(f64::NEG_INFINITY)
        } else {
            Dbm(10.0 * mw.0.log10())
        }
    }

    /// Construct from watts.
    pub fn from_watts(w: Watts) -> Dbm {
        Dbm::from_mw(MilliWatts(w.0 * 1e3))
    }
}

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// To milliwatts.
    pub fn to_mw(self) -> MilliWatts {
        MilliWatts(self.0 * 1e3)
    }

    /// To microwatts.
    pub fn to_uw(self) -> MicroWatts {
        MicroWatts(self.0 * 1e6)
    }

    /// To dBm.
    pub fn to_dbm(self) -> Dbm {
        Dbm::from_watts(self)
    }
}

impl MilliWatts {
    /// Zero power.
    pub const ZERO: MilliWatts = MilliWatts(0.0);

    /// To dBm.
    pub fn to_dbm(self) -> Dbm {
        Dbm::from_mw(self)
    }

    /// To microwatts.
    pub fn to_uw(self) -> MicroWatts {
        MicroWatts(self.0 * 1e3)
    }

    /// To watts.
    pub fn to_watts(self) -> Watts {
        Watts(self.0 * 1e-3)
    }
}

impl MicroWatts {
    /// To milliwatts.
    pub fn to_mw(self) -> MilliWatts {
        MilliWatts(self.0 * 1e-3)
    }

    /// To watts.
    pub fn to_watts(self) -> Watts {
        Watts(self.0 * 1e-6)
    }

    /// To dBm.
    pub fn to_dbm(self) -> Dbm {
        self.to_mw().to_dbm()
    }
}

impl Hertz {
    /// Construct from megahertz.
    pub const fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// Construct from gigahertz.
    pub const fn from_ghz(ghz: f64) -> Hertz {
        Hertz(ghz * 1e9)
    }

    /// As megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// As gigahertz.
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Free-space wavelength in meters.
    pub fn wavelength_m(self) -> f64 {
        const C: f64 = 299_792_458.0;
        C / self.0
    }

    /// Angular frequency ω = 2πf in rad/s.
    pub fn omega(self) -> f64 {
        2.0 * std::f64::consts::PI * self.0
    }
}

impl Meters {
    /// Construct from feet (the paper reports all ranges in feet).
    pub fn from_feet(ft: f64) -> Meters {
        Meters(ft * 0.3048)
    }

    /// As feet.
    pub fn feet(self) -> f64 {
        self.0 / 0.3048
    }

    /// Construct from centimeters.
    pub fn from_cm(cm: f64) -> Meters {
        Meters(cm / 100.0)
    }
}

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Construct from microjoules.
    pub fn from_uj(uj: f64) -> Joules {
        Joules(uj * 1e-6)
    }

    /// Construct from millijoules.
    pub fn from_mj(mj: f64) -> Joules {
        Joules(mj * 1e-3)
    }

    /// As microjoules.
    pub fn uj(self) -> f64 {
        self.0 * 1e6
    }

    /// As millijoules.
    pub fn mj(self) -> f64 {
        self.0 * 1e3
    }
}

impl Seconds {
    /// Zero-length span.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Checked conversion back to the integer simulation clock: rounds to
    /// whole nanoseconds; panics on negative or non-finite input.
    pub fn to_duration(self) -> SimDuration {
        SimDuration::from_secs_f64(self.0)
    }

    /// True if the span is finite and non-negative — a sanity gate before
    /// dividing occupancy numerators by it.
    pub fn is_valid_span(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

// dBm ± dB arithmetic (the only legal mixed operations).
impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}
impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}
impl Sub<Dbm> for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}
impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}
impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}
impl Db {
    /// Linear power ratio represented by this value.
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// dB value of a linear power ratio.
    pub fn from_linear(r: f64) -> Db {
        if r <= 0.0 {
            Db(f64::NEG_INFINITY)
        } else {
            Db(10.0 * r.log10())
        }
    }
}

// Linear power arithmetic.
impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}
impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}
impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}
impl Add for MilliWatts {
    type Output = MilliWatts;
    fn add(self, rhs: MilliWatts) -> MilliWatts {
        MilliWatts(self.0 + rhs.0)
    }
}
impl AddAssign for MilliWatts {
    fn add_assign(&mut self, rhs: MilliWatts) {
        self.0 += rhs.0;
    }
}
impl Mul<f64> for MilliWatts {
    type Output = MilliWatts;
    fn mul(self, rhs: f64) -> MilliWatts {
        MilliWatts(self.0 * rhs)
    }
}
impl Add for MicroWatts {
    type Output = MicroWatts;
    fn add(self, rhs: MicroWatts) -> MicroWatts {
        MicroWatts(self.0 + rhs.0)
    }
}
impl Mul<f64> for MicroWatts {
    type Output = MicroWatts;
    fn mul(self, rhs: f64) -> MicroWatts {
        MicroWatts(self.0 * rhs)
    }
}

// Energy arithmetic.
impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}
impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}
impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}
impl Mul<f64> for Joules {
    type Output = Joules;
    fn mul(self, rhs: f64) -> Joules {
        Joules(self.0 * rhs)
    }
}

// Dimensional arithmetic: the only legal power/time/energy bridges.
impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}
impl Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(rhs.0 * self.0)
    }
}
impl Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}
impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

// Time-span arithmetic.
impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}
impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}
impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}
impl SubAssign for Seconds {
    fn sub_assign(&mut self, rhs: Seconds) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}
impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds(self.0 / rhs)
    }
}
/// Ratio of two spans — the occupancy formula's final division.
impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl core::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, |a, b| a + b)
    }
}
impl core::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}
impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}
impl fmt::Display for MicroWatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} µW", self.0)
    }
}
impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_roundtrip() {
        assert!((Dbm(0.0).to_mw().0 - 1.0).abs() < 1e-12);
        assert!((Dbm(30.0).to_mw().0 - 1000.0).abs() < 1e-9);
        assert!((Dbm(-30.0).to_uw().0 - 1.0).abs() < 1e-12);
        let p = Dbm(17.3);
        assert!((Dbm::from_mw(p.to_mw()).0 - 17.3).abs() < 1e-12);
    }

    #[test]
    fn zero_power_is_neg_infinity_dbm() {
        assert_eq!(Dbm::from_mw(MilliWatts(0.0)).0, f64::NEG_INFINITY);
    }

    #[test]
    fn db_arithmetic() {
        let rx = Dbm(30.0) + Db(6.0) - Db(60.0) + Db(2.0);
        assert!((rx.0 - (-22.0)).abs() < 1e-12);
        assert!((Db(3.0103).linear() - 2.0).abs() < 1e-4);
        assert!((Db::from_linear(100.0).0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn wavelength_at_wifi() {
        let wl = Hertz::from_ghz(2.437).wavelength_m();
        assert!((wl - 0.123).abs() < 0.001, "wavelength {wl}");
    }

    #[test]
    fn feet_conversion() {
        assert!((Meters::from_feet(10.0).0 - 3.048).abs() < 1e-12);
        assert!((Meters(3.048).feet() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_conversions() {
        assert!((Joules::from_uj(2.77).0 - 2.77e-6).abs() < 1e-18);
        assert!((Joules::from_mj(10.4).uj() - 10_400.0).abs() < 1e-6);
    }

    #[test]
    fn watts_conversion_chain() {
        let w = Watts(0.001);
        assert!((w.to_mw().0 - 1.0).abs() < 1e-12);
        assert!((w.to_uw().0 - 1000.0).abs() < 1e-9);
        assert!((w.to_dbm().0 - 0.0).abs() < 1e-12);
        assert!((Dbm(0.0).to_watts().0 - 0.001).abs() < 1e-15);
        assert!((MicroWatts(5.0).to_watts().0 - 5e-6).abs() < 1e-18);
        assert!((MilliWatts(5.0).to_watts().0 - 5e-3).abs() < 1e-15);
    }

    #[test]
    fn dimensional_power_time_energy() {
        // 2 W for 3 s is 6 J, and every rearrangement agrees.
        let e = Watts(2.0) * Seconds(3.0);
        assert!((e.0 - 6.0).abs() < 1e-12);
        assert!(((Seconds(3.0) * Watts(2.0)).0 - 6.0).abs() < 1e-12);
        assert!(((e / Seconds(3.0)).0 - 2.0).abs() < 1e-12);
        assert!(((e / Watts(2.0)).0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_ratio_is_dimensionless() {
        // Σ airtime / duration — the paper's occupancy division.
        let occupied = Seconds(0.25) + Seconds(0.35);
        let window = Seconds(2.0);
        assert!((occupied / window - 0.3).abs() < 1e-12);
    }

    #[test]
    fn seconds_to_duration_is_checked_and_rounds() {
        use crate::time::SimDuration;
        assert_eq!(Seconds(0.25).to_duration(), SimDuration::from_millis(250));
        assert_eq!(Seconds(1.5e-6).to_duration(), SimDuration::from_nanos(1500));
        assert!(Seconds(1.0).is_valid_span());
        assert!(!Seconds(f64::NAN).is_valid_span());
        assert!(!Seconds(-0.5).is_valid_span());
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_cannot_become_a_duration() {
        let _ = Seconds(-1.0).to_duration();
    }
}
