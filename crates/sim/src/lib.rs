//! # powifi-sim
//!
//! Deterministic discrete-event simulation substrate for the PoWiFi
//! reproduction: integer simulation time, a cancellable closure-based event
//! calendar, seeded splittable randomness, and the measurement primitives
//! (CDFs, time-weighted means, binned throughput, power envelopes) that the
//! paper's figures are built from.
//!
//! Design notes:
//! * Single-threaded and allocation-light; determinism beats parallelism for
//!   a reproduction (parallelism lives one level up, across *experiments*).
//! * `EventQueue<W>` is generic over a world type so each layer (MAC,
//!   transport, deployment) composes its own world without dynamic dispatch
//!   at the hot edges.

#![warn(missing_docs)]

pub mod conformance;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
#[deprecated(
    note = "use powifi_sim::obs::metrics; this compatibility shim will be removed in a future PR"
)]
pub mod telemetry;
pub mod time;
pub mod units;

pub use obs::metrics::RunTelemetry;
pub use queue::{EventFn, EventHandle, EventQueue};
pub use rng::SimRng;
pub use series::{PowerEnvelope, TimeSeries};
pub use stats::{BinnedThroughput, Cdf, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
pub use units::{Db, Dbm, Hertz, Joules, Meters, MicroWatts, MilliWatts, Seconds, Volts, Watts};
