//! # powifi-sim
//!
//! Deterministic discrete-event simulation substrate for the PoWiFi
//! reproduction: integer simulation time, a typed-event timer-wheel
//! calendar with eager cancellation, seeded splittable randomness, and the
//! measurement primitives (CDFs, time-weighted means, binned throughput,
//! power envelopes) that the paper's figures are built from.
//!
//! Design notes:
//! * Single-threaded and allocation-light; determinism beats parallelism for
//!   a reproduction (parallelism lives one level up, across *experiments*).
//! * `EventQueue<W, E>` is generic over a world type and a typed event
//!   payload so each layer (MAC, transport, deployment) composes its own
//!   world and event enum without dynamic dispatch — or per-event heap
//!   allocation — at the hot edges. Closure scheduling remains available
//!   for cold paths via `schedule_at`/`schedule_in`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod conformance;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use obs::metrics::RunTelemetry;
pub use queue::{Dispatch, EventFn, EventHandle, EventQueue, NoEvent};
pub use rng::SimRng;
pub use series::{PowerEnvelope, TimeSeries};
pub use stats::{BinnedThroughput, Cdf, TimeWeighted, Welford};
pub use time::{SimDuration, SimTime};
pub use units::{Db, Dbm, Hertz, Joules, Meters, MicroWatts, MilliWatts, Seconds, Volts, Watts};
