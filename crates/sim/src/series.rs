//! Time series recording and binning (the 60-second occupancy logs of the
//! home deployments, the 2.5 ms rectifier voltage trace of Fig. 1, …).

use crate::time::{SimDuration, SimTime};

/// An append-only `(time, value)` series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point; time must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "time series went backwards");
        }
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.values().sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum recorded value (NEG_INFINITY if empty).
    pub fn max(&self) -> f64 {
        self.values().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Average the series into fixed-width bins over `[0, end)`; bins with no
    /// points carry the previous value forward (sample-and-hold), starting
    /// from `initial`.
    pub fn bin_mean(&self, bin: SimDuration, end: SimTime, initial: f64) -> Vec<f64> {
        assert!(!bin.is_zero());
        let nbins = end.duration_since(SimTime::ZERO).div_ceil(bin) as usize;
        let mut out = Vec::with_capacity(nbins);
        let mut idx = 0usize;
        let mut last = initial;
        for b in 0..nbins {
            let t_end = SimTime::from_nanos(((b as u64) + 1) * bin.as_nanos());
            let mut sum = 0.0;
            let mut n = 0u32;
            while idx < self.points.len() && self.points[idx].0 < t_end {
                sum += self.points[idx].1;
                last = self.points[idx].1;
                n += 1;
                idx += 1;
            }
            out.push(if n > 0 { sum / n as f64 } else { last });
        }
        out
    }
}

/// A piecewise-constant power envelope: the RF power incident on a harvester
/// as a function of time. The MAC simulator emits one of these (packet on-air
/// intervals at the received power level, silence in between); the harvester
/// integrates its circuit model against it.
#[derive(Debug, Clone, Default)]
pub struct PowerEnvelope {
    /// `(start_time, level)` change points; the level holds until the next
    /// change point. Times strictly increase.
    changes: Vec<(SimTime, f64)>,
}

impl PowerEnvelope {
    /// An envelope that is `level` forever.
    pub fn constant(level: f64) -> Self {
        PowerEnvelope {
            changes: vec![(SimTime::ZERO, level)],
        }
    }

    /// Empty envelope (level 0 until the first change point).
    pub fn new() -> Self {
        PowerEnvelope {
            changes: Vec::new(),
        }
    }

    /// Record that the level changed to `level` at `t`. Consecutive identical
    /// levels are coalesced; `t` must be non-decreasing (equal time replaces).
    pub fn set(&mut self, t: SimTime, level: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.changes.last_mut() {
            assert!(t >= last_t, "envelope time went backwards");
            if last_t == t {
                *last_v = level;
                return;
            }
            // powifi-lint: allow(float-eq) — bitwise-identical levels coalesce;
            // any difference, however tiny, is a genuine change point.
            if *last_v == level {
                return;
            }
        }
        self.changes.push((t, level));
    }

    /// The level at time `t` (0 before the first change point).
    pub fn level_at(&self, t: SimTime) -> f64 {
        match self.changes.partition_point(|&(ct, _)| ct <= t) {
            0 => 0.0,
            n => self.changes[n - 1].1,
        }
    }

    /// Integrate the envelope over `[t0, t1]`, returning `∫ level dt` in
    /// `level-units × seconds` (e.g. mW × s = mJ).
    pub fn integrate(&self, t0: SimTime, t1: SimTime) -> f64 {
        assert!(t1 >= t0);
        let mut acc = 0.0;
        for (seg_start, seg_end, level) in self.segments(t0, t1) {
            acc += level * seg_end.duration_since(seg_start).as_secs_f64();
        }
        acc
    }

    /// Mean level over `[t0, t1]`.
    pub fn mean(&self, t0: SimTime, t1: SimTime) -> f64 {
        let span = t1.duration_since(t0).as_secs_f64();
        if span <= 0.0 {
            return self.level_at(t0);
        }
        self.integrate(t0, t1) / span
    }

    /// Iterate constant segments `(start, end, level)` clipped to `[t0, t1]`.
    pub fn segments(
        &self,
        t0: SimTime,
        t1: SimTime,
    ) -> impl Iterator<Item = (SimTime, SimTime, f64)> + '_ {
        let start_idx = self.changes.partition_point(|&(ct, _)| ct <= t0);
        let mut cursor = t0;
        let mut level = self.level_at(t0);
        let mut idx = start_idx;
        let changes = &self.changes;
        std::iter::from_fn(move || {
            if cursor >= t1 {
                return None;
            }
            let (seg_end, next_level) = if idx < changes.len() && changes[idx].0 < t1 {
                (changes[idx].0, Some(changes[idx].1))
            } else {
                (t1, None)
            };
            let item = (cursor, seg_end, level);
            cursor = seg_end;
            if let Some(nl) = next_level {
                level = nl;
                idx += 1;
            }
            Some(item)
        })
        .filter(|&(s, e, _)| e > s)
    }

    /// Number of change points.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no change points were recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Checkpoint view: the raw `(time, level)` change points.
    pub fn ckpt_changes(&self) -> &[(SimTime, f64)] {
        &self.changes
    }

    /// Rebuild from change points captured by
    /// [`PowerEnvelope::ckpt_changes`].
    pub fn from_ckpt_changes(changes: Vec<(SimTime, f64)>) -> PowerEnvelope {
        PowerEnvelope { changes }
    }

    /// Scale every level by a constant factor (e.g. apply path loss).
    pub fn scaled(&self, factor: f64) -> PowerEnvelope {
        PowerEnvelope {
            changes: self.changes.iter().map(|&(t, v)| (t, v * factor)).collect(),
        }
    }

    /// Pointwise sum of two envelopes (e.g. power from multiple channels,
    /// which a broadband harvester cannot distinguish).
    pub fn sum(&self, other: &PowerEnvelope) -> PowerEnvelope {
        let mut out = PowerEnvelope::new();
        let mut times: Vec<SimTime> = self
            .changes
            .iter()
            .chain(other.changes.iter())
            .map(|&(t, _)| t)
            .collect();
        times.sort_unstable();
        times.dedup();
        for t in times {
            out.set(t, self.level_at(t) + other.level_at(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_binning_holds_last_value() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(2), 3.0);
        let bins = s.bin_mean(SimDuration::from_secs(1), SimTime::from_secs(4), 0.0);
        assert_eq!(bins, vec![1.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    fn envelope_level_and_integration() {
        let mut e = PowerEnvelope::new();
        e.set(SimTime::from_secs(1), 10.0);
        e.set(SimTime::from_secs(3), 0.0);
        assert_eq!(e.level_at(SimTime::ZERO), 0.0);
        assert_eq!(e.level_at(SimTime::from_secs(1)), 10.0);
        assert_eq!(e.level_at(SimTime::from_secs(2)), 10.0);
        assert_eq!(e.level_at(SimTime::from_secs(5)), 0.0);
        // 10 units for 2 seconds.
        let integral = e.integrate(SimTime::ZERO, SimTime::from_secs(5));
        assert!((integral - 20.0).abs() < 1e-9);
        assert!((e.mean(SimTime::ZERO, SimTime::from_secs(5)) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn envelope_coalesces_duplicates() {
        let mut e = PowerEnvelope::new();
        e.set(SimTime::from_secs(1), 5.0);
        e.set(SimTime::from_secs(2), 5.0);
        assert_eq!(e.len(), 1);
        e.set(SimTime::from_secs(2), 7.0);
        assert_eq!(e.len(), 2);
        e.set(SimTime::from_secs(2), 9.0); // replace at same instant
        assert_eq!(e.len(), 2);
        assert_eq!(e.level_at(SimTime::from_secs(2)), 9.0);
    }

    #[test]
    fn envelope_segments_clip() {
        let mut e = PowerEnvelope::new();
        e.set(SimTime::from_secs(1), 1.0);
        e.set(SimTime::from_secs(2), 2.0);
        e.set(SimTime::from_secs(3), 0.0);
        let segs: Vec<_> = e
            .segments(SimTime::from_millis(1500), SimTime::from_millis(2500))
            .collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].2, 1.0);
        assert_eq!(segs[1].2, 2.0);
        assert_eq!(segs[0].0, SimTime::from_millis(1500));
        assert_eq!(segs[1].1, SimTime::from_millis(2500));
    }

    #[test]
    fn envelope_sum_superposes() {
        let mut a = PowerEnvelope::new();
        a.set(SimTime::from_secs(1), 1.0);
        a.set(SimTime::from_secs(3), 0.0);
        let mut b = PowerEnvelope::new();
        b.set(SimTime::from_secs(2), 2.0);
        b.set(SimTime::from_secs(4), 0.0);
        let s = a.sum(&b);
        assert_eq!(s.level_at(SimTime::from_millis(1500)), 1.0);
        assert_eq!(s.level_at(SimTime::from_millis(2500)), 3.0);
        assert_eq!(s.level_at(SimTime::from_millis(3500)), 2.0);
        assert_eq!(s.level_at(SimTime::from_millis(4500)), 0.0);
    }

    #[test]
    fn scaled_applies_factor() {
        let e = PowerEnvelope::constant(4.0).scaled(0.25);
        assert_eq!(e.level_at(SimTime::from_secs(10)), 1.0);
    }
}
