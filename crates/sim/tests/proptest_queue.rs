//! Property tests for the event queue and measurement primitives.

use powifi_sim::{
    Cdf, Dispatch, EventQueue, PowerEnvelope, SimDuration, SimTime, TimeWeighted, Welford,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Records the insertion index of every event that fires, typed or boxed.
#[derive(Default)]
struct Log {
    fired: Vec<usize>,
}

impl Dispatch<usize> for Log {
    fn dispatch(&mut self, _q: &mut EventQueue<Self, usize>, id: usize) {
        self.fired.push(id);
    }
}

proptest! {
    /// The wheel/heap/overflow queue is observationally identical to the
    /// naive model it replaced: a list of `(time, insertion-order)` pairs
    /// stably sorted by time. Same pop order, same FIFO tie-break between
    /// typed and boxed entries, same cancellation semantics — including
    /// cancels issued mid-run against handles that already fired.
    #[test]
    fn queue_matches_naive_model(
        ops in prop::collection::vec(
            // (time, typed-vs-boxed, 0 = keep / 1 = cancel now / 2 = cancel at mid)
            (0u64..60_000_000, prop::bool::ANY, 0u8..3),
            1..300,
        ),
        mid in 0u64..60_000_000,
    ) {
        let mut q = EventQueue::<Log, usize>::new();
        let mut later = Vec::new();
        for (i, &(t, typed, mode)) in ops.iter().enumerate() {
            let h = if typed {
                q.post_at(SimTime::from_nanos(t), i)
            } else {
                q.schedule_at(SimTime::from_nanos(t), move |w: &mut Log, _| w.fired.push(i))
            };
            match mode {
                1 => q.cancel(h),
                2 => later.push(h),
                _ => {}
            }
        }
        let mut w = Log::default();
        // Split the run so the mid-run cancels exercise every queue region
        // after the cursor has moved; cancelling an already-fired handle
        // must be a no-op.
        q.run_until(&mut w, SimTime::from_nanos(mid));
        for h in later {
            q.cancel(h);
        }
        q.run_to_completion(&mut w);

        // The reference model: survivors stably sorted by time (stable sort
        // on insertion order == the queue's FIFO-within-instant seq order).
        let mut model: Vec<(u64, usize)> = ops
            .iter()
            .enumerate()
            .filter(|&(_, &(t, _, mode))| mode == 0 || (mode == 2 && t <= mid))
            .map(|(i, &(t, _, _))| (t, i))
            .collect();
        model.sort_by_key(|&(t, _)| t);
        let expect: Vec<usize> = model.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(w.fired, expect);
        prop_assert_eq!(q.stored(), 0);
    }

    /// Events always fire in non-decreasing time order, regardless of the
    /// insertion order, and every non-cancelled event fires exactly once.
    #[test]
    fn queue_fires_in_order_and_exactly_once(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::<Vec<u64>>::new();
        let mut w: Vec<u64> = Vec::new();
        for &t in &times {
            q.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, q| {
                w.push(q.now().as_nanos());
            });
        }
        q.run_to_completion(&mut w);
        prop_assert_eq!(w.len(), times.len());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(w, sorted);
    }

    /// Cancelled events never fire; everything else does.
    #[test]
    fn cancellation_is_exact(spec in prop::collection::vec((0u64..100_000, prop::bool::ANY), 1..100)) {
        let mut q = EventQueue::<Vec<usize>>::new();
        let mut w: Vec<usize> = Vec::new();
        let mut cancelled = Vec::new();
        for (i, &(t, cancel)) in spec.iter().enumerate() {
            let h = q.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _| w.push(i));
            if cancel {
                q.cancel(h);
                cancelled.push(i);
            }
        }
        q.run_to_completion(&mut w);
        for i in &cancelled {
            prop_assert!(!w.contains(i));
        }
        prop_assert_eq!(w.len(), spec.len() - cancelled.len());
    }

    /// Repeating events fire exactly floor((horizon - first)/period) + 1 times.
    #[test]
    fn repeating_count_is_exact(first in 0u64..1000, period in 1u64..500, horizon in 1000u64..20_000) {
        let count = Rc::new(RefCell::new(0u64));
        let c = count.clone();
        let mut q = EventQueue::<()>::new();
        q.schedule_repeating(
            SimTime::from_nanos(first),
            SimDuration::from_nanos(period),
            move |_, _| *c.borrow_mut() += 1,
        );
        q.run_until(&mut (), SimTime::from_nanos(horizon));
        let expect = if first > horizon { 0 } else { (horizon - first) / period + 1 };
        prop_assert_eq!(*count.borrow(), expect);
    }

    /// Welford mean/min/max agree with direct computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert_eq!(w.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(w.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// CDF quantiles are monotone in q and bounded by min/max.
    #[test]
    fn cdf_quantiles_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut c = Cdf::new();
        c.extend(xs.iter().cloned());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=10 {
            let v = c.quantile(i as f64 / 10.0);
            prop_assert!(v >= prev);
            prev = v;
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(c.quantile(0.0) >= lo && c.quantile(1.0) <= hi);
    }

    /// Envelope integration equals the sum over its segments, and the level
    /// query agrees with the segment that contains the query point.
    #[test]
    fn envelope_integral_consistent(changes in prop::collection::vec((1u64..1_000_000, 0f64..100.0), 1..50)) {
        let mut sorted = changes.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut env = PowerEnvelope::new();
        for &(t, v) in &sorted {
            env.set(SimTime::from_nanos(t), v);
        }
        let end = SimTime::from_nanos(2_000_000);
        let total = env.integrate(SimTime::ZERO, end);
        let by_segments: f64 = env
            .segments(SimTime::ZERO, end)
            .map(|(a, b, v)| v * b.duration_since(a).as_secs_f64())
            .sum();
        prop_assert!((total - by_segments).abs() < 1e-12);
        // Split-interval additivity.
        let mid = SimTime::from_nanos(777_777);
        let sum = env.integrate(SimTime::ZERO, mid) + env.integrate(mid, end);
        prop_assert!((total - sum).abs() < 1e-12);
    }

    /// Pointwise envelope sum equals the sum of the parts at random times.
    #[test]
    fn envelope_sum_is_pointwise(
        a in prop::collection::vec((1u64..100_000, 0f64..10.0), 1..20),
        b in prop::collection::vec((1u64..100_000, 0f64..10.0), 1..20),
        probes in prop::collection::vec(0u64..120_000, 1..30),
    ) {
        let build = |mut v: Vec<(u64, f64)>| {
            v.sort_by_key(|&(t, _)| t);
            let mut e = PowerEnvelope::new();
            for (t, val) in v {
                e.set(SimTime::from_nanos(t), val);
            }
            e
        };
        let ea = build(a);
        let eb = build(b);
        let sum = ea.sum(&eb);
        for &p in &probes {
            let t = SimTime::from_nanos(p);
            prop_assert!((sum.level_at(t) - (ea.level_at(t) + eb.level_at(t))).abs() < 1e-12);
        }
    }

    /// Time-weighted mean lies within [min, max] of the recorded values.
    #[test]
    fn time_weighted_mean_bounded(vals in prop::collection::vec((1u64..1000, 0f64..50.0), 1..50)) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0u64;
        let mut lo: f64 = 0.0;
        let mut hi: f64 = 0.0;
        for &(dt, v) in &vals {
            t += dt;
            tw.set(SimTime::from_nanos(t), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let mean = tw.mean_at(SimTime::from_nanos(t + 100));
        prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
    }
}
