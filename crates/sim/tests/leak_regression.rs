//! Regression test for the event-queue cancellation leak.
//!
//! The pre-wheel queue kept cancelled entries in its heap as tombstones and
//! only dropped them lazily on pop, so a workload that schedules and
//! cancels without draining (rate controllers re-arming timeouts, TCP RTO
//! rescheduling) grew its heap without bound. The wheel reclaims eagerly;
//! these tests pin that down by scheduling and cancelling a million events
//! and asserting the queue's physical storage stays bounded by the batch
//! size — under the old scheme `stored()` would end at one million.

use powifi_sim::{Dispatch, EventQueue, SimTime};

#[derive(Default)]
struct Count(u64);

impl Dispatch<u32> for Count {
    fn dispatch(&mut self, _q: &mut EventQueue<Self, u32>, _ev: u32) {
        self.0 += 1;
    }
}

/// A million schedule+cancel cycles, in batches, without ever draining the
/// queue: storage must return to the floor after every batch instead of
/// accumulating tombstones.
#[test]
fn million_cancelled_events_do_not_accumulate() {
    const BATCHES: u64 = 1_000;
    const PER_BATCH: u64 = 1_000;
    let mut q = EventQueue::<Count, u32>::new();
    for batch in 0..BATCHES {
        let handles: Vec<_> = (0..PER_BATCH)
            .map(|i| {
                // Spread each batch over all three time regions: cursor
                // slot (ns), wheel (µs..ms), and past the ~33.5 ms horizon.
                let t = match i % 3 {
                    0 => SimTime::from_nanos(1_000 + i),
                    1 => SimTime::from_micros(50 + i),
                    _ => SimTime::from_millis(100 + i),
                };
                q.post_at(t, batch as u32)
            })
            .collect();
        for h in handles {
            q.cancel(h);
        }
        assert_eq!(
            q.stored(),
            0,
            "batch {batch}: cancelled entries were retained"
        );
        assert_eq!(q.pending(), 0);
    }
    let mut w = Count::default();
    q.run_to_completion(&mut w);
    assert_eq!(w.0, 0, "a cancelled event fired");
    assert_eq!(q.executed(), 0);
}

/// Interleaved live and cancelled events: exactly the live half fires, and
/// peak storage never exceeds what is genuinely pending.
#[test]
fn half_cancelled_half_live_storage_is_exact() {
    const N: u64 = 100_000;
    let mut q = EventQueue::<Count, u32>::new();
    let mut live = 0u64;
    for i in 0..N {
        let h = q.post_at(SimTime::from_nanos(i * 977), 0);
        if i % 2 == 0 {
            q.cancel(h);
        } else {
            live += 1;
        }
        assert_eq!(q.stored(), live as usize);
    }
    let mut w = Count::default();
    q.run_to_completion(&mut w);
    assert_eq!(w.0, live);
    assert_eq!(q.stored(), 0);
}
