//! The deprecated `telemetry` shim must keep forwarding to `obs::metrics`
//! until it is removed — out-of-tree callers depend on it.

#![allow(deprecated)]

use powifi_sim::telemetry::{
    add_events, record_frames, record_occupancy, reset, snapshot, RunTelemetry,
};
use powifi_sim::{EventQueue, SimTime};

#[test]
fn shim_forwards_to_the_registry() {
    reset();
    add_events(3);
    add_events(4);
    record_frames(10);
    record_occupancy(0.9);
    let t = snapshot();
    assert_eq!(t.events, 7);
    assert_eq!(t.frames, 10);
    assert_eq!(t.occupancy, 0.9);
    assert_eq!(
        powifi_sim::obs::metrics::snapshot().counter(powifi_sim::obs::metrics::keys::SIM_EVENTS),
        7
    );
    reset();
    assert_eq!(snapshot(), RunTelemetry::default());
}

#[test]
fn run_until_records_events() {
    reset();
    let mut q = EventQueue::<u32>::new();
    let mut w = 0u32;
    for i in 0..5u64 {
        q.schedule_at(SimTime::from_micros(i), |w, _| *w += 1);
    }
    q.run_until(&mut w, SimTime::from_secs(1));
    assert_eq!(w, 5);
    assert_eq!(snapshot().events, 5);
}
