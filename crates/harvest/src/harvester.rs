//! The assembled harvester pipeline:
//! antenna → matching network → rectifier → DC–DC converter → store.
//!
//! Because the rectifier is nonlinear, the pipeline is fed *instantaneous*
//! RF power (per channel) and integrated over time. Two integration styles
//! are supported:
//!
//! * [`Harvester::advance`] — step with explicit per-channel input powers
//!   (used with fine packet envelopes for Fig. 1 and the unit experiments);
//! * [`Harvester::advance_duty`] — step a longer interval with a duty factor
//!   per channel (used for the hour-scale deployment experiments where the
//!   MAC reports per-bin duty factors instead of per-packet envelopes).

use crate::dcdc::Converter;
use crate::matching::MatchingNetwork;
use crate::rectifier::{Rectifier, Variant};
use crate::storage::{Battery, Capacitor};
use powifi_rf::{Dbm, Hertz, Joules, MicroWatts};
use powifi_sim::obs::metrics as obs_metrics;
use powifi_sim::obs::prof;
use powifi_sim::obs::trace as obs;
use powifi_sim::{conformance, SimDuration, SimTime};

/// What the harvester charges.
#[derive(Debug, Clone, Copy)]
pub enum Store {
    /// A capacitor (battery-free designs).
    Cap(Capacitor),
    /// A rechargeable battery.
    Batt(Battery),
}

impl Store {
    /// Terminal voltage of the store.
    pub fn volts(&self) -> f64 {
        match self {
            Store::Cap(c) => c.volts,
            Store::Batt(b) => b.volts,
        }
    }
}

/// A complete PoWiFi harvester.
#[derive(Debug, Clone, Copy)]
pub struct Harvester {
    /// Which variant (affects calibration and reporting).
    pub variant: Variant,
    /// The LC matching network.
    pub matching: MatchingNetwork,
    /// The diode rectifier.
    pub rectifier: Rectifier,
    /// The DC–DC converter.
    pub converter: Converter,
    /// The energy store.
    pub store: Store,
    /// Output-switch state (capacitor stores only; hysteresis).
    output_on: bool,
    /// Total energy delivered into the store, J (for reporting).
    pub harvested: Joules,
    /// Total RF energy incident on the antenna, J (energy-conservation
    /// accounting: `harvested` may never exceed this).
    pub incident: Joules,
    /// Total simulated time this harvester has been advanced.
    elapsed: SimDuration,
    /// Converter efficiency at the MPPT design point, captured the first
    /// time [`Harvester::set_mppt_reference`] re-tunes it (so repeated
    /// re-tuning never compounds).
    design_efficiency: Option<f64>,
}

impl Harvester {
    /// Battery-free sensor harvester: S-882Z + 100 µF storage.
    pub fn battery_free_sensor() -> Harvester {
        Harvester {
            variant: Variant::BatteryFree,
            matching: MatchingNetwork::battery_free(),
            rectifier: Rectifier::battery_free(),
            converter: Converter::s882z(),
            store: Store::Cap(Capacitor::sensor_100uf()),
            output_on: false,
            harvested: Joules(0.0),
            incident: Joules(0.0),
            elapsed: SimDuration::ZERO,
            design_efficiency: None,
        }
    }

    /// Battery-free camera harvester: bq25570 + 6.8 mF BestCap.
    pub fn battery_free_camera() -> Harvester {
        Harvester {
            variant: Variant::BatteryFree,
            matching: MatchingNetwork::battery_free(),
            rectifier: Rectifier::battery_free(),
            converter: Converter::bq25570_supercap(),
            store: Store::Cap(Capacitor::bestcap_6_8mf()),
            output_on: false,
            harvested: Joules(0.0),
            incident: Joules(0.0),
            elapsed: SimDuration::ZERO,
            design_efficiency: None,
        }
    }

    /// Battery-recharging harvester around a given cell.
    pub fn recharging(battery: Battery) -> Harvester {
        Harvester {
            variant: Variant::BatteryCharging,
            matching: MatchingNetwork::battery_charging(),
            rectifier: Rectifier::battery_charging(),
            converter: Converter::bq25570_battery(),
            store: Store::Batt(battery),
            output_on: true,
            harvested: Joules(0.0),
            incident: Joules(0.0),
            elapsed: SimDuration::ZERO,
            design_efficiency: None,
        }
    }

    /// RF power accepted past the matching network, summed over channels.
    pub fn accepted_power(&self, inputs: &[(Hertz, Dbm)]) -> Dbm {
        let mut uw = 0.0;
        for &(f, p) in inputs {
            uw += p.to_uw().0 * self.matching.mismatch_factor(f);
        }
        MicroWatts(uw).to_dbm()
    }

    /// DC power the converter would deliver into the store for a given set
    /// of simultaneously active channels (steady-state, no storage effects).
    pub fn dc_power(&self, inputs: &[(Hertz, Dbm)]) -> MicroWatts {
        let _prof = prof::span("harvest.rectifier");
        let p_in = self.accepted_power(inputs);
        let rect_out = self.rectifier.output_power(p_in);
        let voc = self.rectifier.open_voltage(p_in);
        if self.converter.can_operate(voc, self.store.volts()) {
            MicroWatts(rect_out.0 * self.converter.efficiency)
        } else {
            MicroWatts(0.0)
        }
    }

    /// Checkpoint view of the private dynamic fields:
    /// `(output_on, elapsed, design_efficiency)`. The public fields
    /// (`store`, `harvested`, `incident`) are checkpointed directly by the
    /// deployment layer.
    pub fn ckpt_state(&self) -> (bool, SimDuration, Option<f64>) {
        (self.output_on, self.elapsed, self.design_efficiency)
    }

    /// Overlay the private dynamic fields captured by
    /// [`Harvester::ckpt_state`].
    pub fn ckpt_restore(
        &mut self,
        output_on: bool,
        elapsed: SimDuration,
        design_efficiency: Option<f64>,
    ) {
        self.output_on = output_on;
        self.elapsed = elapsed;
        self.design_efficiency = design_efficiency;
    }

    /// Step the harvester by `dt` with the given instantaneous per-channel
    /// input powers at the antenna.
    pub fn advance(&mut self, dt: SimDuration, inputs: &[(Hertz, Dbm)]) {
        let _prof = prof::span("harvest.advance");
        prof::attr(dt);
        let p_dc = self.dc_power(inputs);
        let mut uw_in = 0.0;
        for &(_, p) in inputs {
            uw_in += p.to_uw().0;
        }
        self.incident += MicroWatts(uw_in).to_watts() * dt.as_seconds();
        self.elapsed += dt;
        self.push_energy(dt, p_dc);
        self.housekeeping(dt);
        self.conformance_check();
    }

    /// Step the harvester by `dt` where each channel is active only a
    /// `duty` fraction of the time at power `p` (one entry per channel).
    /// Nonlinearity is respected by evaluating the rectifier at the single-
    /// channel instantaneous power and weighting by duty — the channels are
    /// mostly time-interleaved at the router (they rarely all burst at
    /// once), which matches the paper's observation that the harvester sees
    /// "an approximation of a continuous transmission".
    pub fn advance_duty(&mut self, dt: SimDuration, inputs: &[(Hertz, Dbm, f64)]) {
        let _prof = prof::span("harvest.advance");
        prof::attr(dt);
        let mut uw = 0.0;
        let mut uw_in = 0.0;
        for &(f, p, duty) in inputs {
            let single = self.dc_power(&[(f, p)]);
            let duty = duty.clamp(0.0, 1.0);
            uw += single.0 * duty;
            uw_in += p.to_uw().0 * duty;
        }
        self.incident += MicroWatts(uw_in).to_watts() * dt.as_seconds();
        self.elapsed += dt;
        self.push_energy(dt, MicroWatts(uw));
        self.housekeeping(dt);
        self.conformance_check();
    }

    fn push_energy(&mut self, dt: SimDuration, p: MicroWatts) {
        let e = p.to_watts() * dt.as_seconds();
        if e.0 > 0.0 {
            self.harvested += e;
            match &mut self.store {
                Store::Cap(c) => c.charge(e),
                Store::Batt(b) => b.charge_energy(e),
            }
        }
    }

    fn housekeeping(&mut self, dt: SimDuration) {
        let _prof = prof::span("harvest.storage");
        if let Store::Cap(c) = &mut self.store {
            c.leak(dt);
            // Quiescent drain while the converter runs.
            let q = self.converter.quiescent * dt.as_seconds();
            let _ = c.discharge(Joules(q.0.min(c.energy().0)));
            // Output-switch hysteresis.
            if !self.output_on && c.volts >= self.converter.output_on_volts {
                self.output_on = true;
                obs_metrics::counter(obs_metrics::keys::HARVEST_COLD_STARTS).inc();
                if obs::enabled() {
                    let at = SimTime::ZERO + self.elapsed;
                    obs::emit(
                        at,
                        obs::TraceEvent::StorageCross {
                            volts: c.volts,
                            threshold: self.converter.output_on_volts,
                            rising: true,
                        },
                    );
                    obs::emit(at, obs::TraceEvent::ColdStart { volts: c.volts });
                }
            } else if self.output_on && c.volts < self.converter.output_off_volts {
                self.output_on = false;
                obs_metrics::counter(obs_metrics::keys::HARVEST_BROWNOUTS).inc();
                if obs::enabled() {
                    let at = SimTime::ZERO + self.elapsed;
                    obs::emit(
                        at,
                        obs::TraceEvent::StorageCross {
                            volts: c.volts,
                            threshold: self.converter.output_off_volts,
                            rising: false,
                        },
                    );
                    obs::emit(at, obs::TraceEvent::Brownout { volts: c.volts });
                }
            }
        }
    }

    /// Re-tune the converter's MPPT reference voltage. The design point is
    /// the paper's 200 mV (§3.1); moving off it scales conversion
    /// efficiency by the relative [`crate::mppt_factor`] and emits an
    /// `MpptUpdate` trace event at the harvester's current elapsed time.
    pub fn set_mppt_reference(&mut self, vref_volts: f64) {
        const DESIGN_VREF: f64 = 0.20;
        let base = *self
            .design_efficiency
            .get_or_insert(self.converter.efficiency);
        let rel = crate::mppt_factor(vref_volts) / crate::mppt_factor(DESIGN_VREF);
        self.converter.efficiency = (base * rel).clamp(0.0, 1.0);
        if obs::enabled() {
            obs::emit(
                SimTime::ZERO + self.elapsed,
                obs::TraceEvent::MpptUpdate {
                    vref_volts,
                    factor: rel,
                },
            );
        }
    }

    /// Whether the output rail is powering the load.
    pub fn output_on(&self) -> bool {
        match self.store {
            Store::Cap(_) => self.output_on,
            Store::Batt(_) => true,
        }
    }

    /// Draw energy from the store for the load (MCU, sensor, radio…).
    /// Returns false if the store cannot supply it.
    pub fn draw(&mut self, e: Joules) -> bool {
        match &mut self.store {
            Store::Cap(c) => c.discharge(e),
            Store::Batt(b) => b.discharge_energy(e),
        }
    }

    /// The store, for inspection.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Set this thread's live harvest gauge (`harvest.live.energy_uj`) to
    /// the cumulative harvested energy in µJ. Idempotent (gauge `set`), so
    /// the streaming epoch driver calls it once per epoch; pass the sum when
    /// a deployment owns several harvesters.
    pub fn record_progress(&self) {
        use powifi_sim::obs::metrics::{gauge, keys};
        gauge(keys::HARVEST_LIVE_ENERGY_UJ).set(self.harvested.0 * 1e6);
    }

    /// Energy-conservation self-check, run after every integration step when
    /// conformance checking is enabled: the chain is lossy end to end
    /// (mismatch ≤ 1, rectifier sub-unity above its floor, converter
    /// efficiency < 1), storage voltage stays finite and non-negative, and a
    /// battery's charge stays within its capacity.
    fn conformance_check(&self) {
        if !conformance::enabled() {
            return;
        }
        let at = SimTime::ZERO + self.elapsed;
        // One f64 rounding error per step accumulates over hour-scale runs.
        if self.harvested.0 > self.incident.0 * (1.0 + 1e-9) + 1e-15 {
            conformance::report(
                "harvest/energy-conservation",
                at,
                format!(
                    "harvested {:.3e} J exceeds incident {:.3e} J",
                    self.harvested.0, self.incident.0
                ),
            );
        }
        let v = self.store.volts();
        if !v.is_finite() || v < 0.0 {
            conformance::report("harvest/storage-voltage", at, format!("store at {v} V"));
        }
        if let Store::Batt(b) = &self.store {
            if b.charge_mah < 0.0 || b.charge_mah > b.capacity_mah * (1.0 + 1e-9) {
                conformance::report(
                    "harvest/battery-charge",
                    at,
                    format!(
                        "charge {} mAh outside [0, {}]",
                        b.charge_mah, b.capacity_mah
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powifi_rf::WifiChannel;

    fn three_channels(p: Dbm) -> Vec<(Hertz, Dbm)> {
        WifiChannel::POWER_SET
            .iter()
            .map(|ch| (ch.center(), p))
            .collect()
    }

    #[test]
    fn multi_channel_beats_single_channel() {
        // The whole point of the multi-channel harvester (§3.1): power from
        // channels 1+6+11 accumulates.
        let h = Harvester::battery_free_sensor();
        let single = h.dc_power(&[(WifiChannel::CH6.center(), Dbm(-12.0))]);
        let triple = h.dc_power(&three_channels(Dbm(-12.0)));
        assert!(
            triple.0 > 1.5 * single.0,
            "single {single:?} triple {triple:?}"
        );
    }

    #[test]
    fn below_sensitivity_no_dc_power() {
        let h = Harvester::battery_free_sensor();
        let p = h.dc_power(&[(WifiChannel::CH6.center(), Dbm(-25.0))]);
        assert!(p.0 < 0.05, "p {p:?}");
    }

    #[test]
    fn battery_variant_harvests_at_minus_19dbm() {
        let bf = Harvester::battery_free_sensor();
        let bc = Harvester::recharging(Battery::nimh_aaa());
        let input = [(WifiChannel::CH6.center(), Dbm(-19.0))];
        assert!(bc.dc_power(&input).0 > 4.0 * bf.dc_power(&input).0);
    }

    #[test]
    fn capacitor_store_charges_to_output_threshold() {
        let mut h = Harvester::battery_free_sensor();
        assert!(!h.output_on());
        // Strong input: the 100 µF store must reach 2.4 V and trip the
        // output switch. ½·100µ·2.4² = 288 µJ.
        for _ in 0..10_000 {
            h.advance(SimDuration::from_millis(1), &three_channels(Dbm(0.0)));
            if h.output_on() {
                break;
            }
        }
        assert!(
            h.output_on(),
            "store never reached 2.4 V: {} V",
            h.store.volts()
        );
    }

    #[test]
    fn output_hysteresis_cycles() {
        let mut h = Harvester::battery_free_sensor();
        while !h.output_on() {
            h.advance(SimDuration::from_millis(1), &three_channels(Dbm(0.0)));
        }
        // Drain below the off threshold.
        let e_above_off = {
            let Store::Cap(c) = h.store else {
                unreachable!()
            };
            c.energy().0 - 0.5 * c.farads * 1.7 * 1.7
        };
        assert!(h.draw(Joules(e_above_off)));
        h.advance(SimDuration::from_micros(1), &[]);
        assert!(!h.output_on());
    }

    #[test]
    fn battery_store_accumulates_charge() {
        let mut h = Harvester::recharging(Battery::nimh_aaa());
        let Store::Batt(b0) = *h.store() else {
            unreachable!()
        };
        for _ in 0..1000 {
            h.advance(SimDuration::from_secs(1), &three_channels(Dbm(-10.0)));
        }
        let Store::Batt(b1) = *h.store() else {
            unreachable!()
        };
        assert!(b1.charge_mah > b0.charge_mah);
        assert!(h.harvested.0 > 0.0);
    }

    #[test]
    fn duty_scaling_is_linear_in_duty() {
        let mut a = Harvester::recharging(Battery::liion_coin());
        let mut b = Harvester::recharging(Battery::liion_coin());
        let ch = WifiChannel::CH6.center();
        a.advance_duty(SimDuration::from_secs(100), &[(ch, Dbm(-10.0), 0.9)]);
        b.advance_duty(SimDuration::from_secs(100), &[(ch, Dbm(-10.0), 0.45)]);
        assert!((a.harvested.0 / b.harvested.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn conformance_energy_conservation_holds() {
        let _g = conformance::check();
        let mut h = Harvester::battery_free_sensor();
        for _ in 0..1000 {
            h.advance(SimDuration::from_millis(10), &three_channels(Dbm(-6.0)));
        }
        assert!(h.harvested.0 > 0.0);
        assert!(h.harvested.0 <= h.incident.0);
        conformance::assert_clean("conformance_energy_conservation_holds");
    }

    #[test]
    fn conformance_flags_rigged_bookkeeping() {
        let _g = conformance::check();
        let ch6 = [(WifiChannel::CH6.center(), Dbm(-10.0))];
        let mut h = Harvester::recharging(Battery::nimh_aaa());
        h.advance(SimDuration::from_secs(1), &ch6);
        conformance::assert_clean("before rigging");
        h.harvested = Joules(h.incident.0 * 2.0 + 1.0); // corrupt the books
        h.advance(SimDuration::from_secs(1), &ch6);
        let (n, v) = conformance::take();
        assert!(n >= 1);
        assert!(
            v.iter().any(|v| v.rule == "harvest/energy-conservation"),
            "{v:?}"
        );
    }

    #[test]
    fn idle_harvester_leaks_down() {
        let mut h = Harvester::battery_free_camera();
        if let Store::Cap(c) = &mut h.store {
            c.charge(Joules(0.5 * c.farads * 3.0 * 3.0));
        }
        let v0 = h.store.volts();
        for _ in 0..3600 {
            h.advance(SimDuration::from_secs(1), &[]);
        }
        assert!(
            h.store.volts() < v0,
            "no leak: {} -> {}",
            v0,
            h.store.volts()
        );
    }
}
