//! Multi-band harvesting (§8e / related work \[43\] "Sifting through the
//! airwaves"): a bank of per-band front ends — each an LC match + rectifier
//! tuned to its ISM band — feeding one DC–DC converter and store.
//!
//! Matching-network values per band were derived the same way as the
//! 2.4 GHz design (numerical fit of the L-section against the rectifier's
//! RC input; see EXPERIMENTS.md §calibration).

use crate::matching::{MatchingNetwork, RectifierImpedance};
use crate::rectifier::Rectifier;
use powifi_rf::{Dbm, Hertz, IsmBand, MicroWatts};

/// One band's front end.
#[derive(Debug, Clone, Copy)]
pub struct BandFrontEnd {
    /// The band this front end is matched for.
    pub band: IsmBand,
    /// Its matching network.
    pub matching: MatchingNetwork,
    /// Its rectifier calibration.
    pub rectifier: Rectifier,
}

impl BandFrontEnd {
    /// A front end matched for `band` (battery-free calibration).
    pub fn for_band(band: IsmBand) -> BandFrontEnd {
        let matching = match band {
            // 27 nH + 1.8 pF against a 600 Ω ∥ 1.2 pF rectifier:
            // S11 < −22 dB across 902–928 MHz.
            IsmBand::Ism900 => MatchingNetwork {
                shunt_c: 1.8e-12,
                series_l: 27e-9,
                inductor_q: 100.0,
                rectifier: RectifierImpedance {
                    r_parallel: 600.0,
                    c_parallel: 1.2e-12,
                    r_series: 5.0,
                },
            },
            IsmBand::Ism2400 => MatchingNetwork::battery_free(),
            // 4 nH + 0.3 pF against a 600 Ω ∥ 0.2 pF rectifier:
            // S11 < −18 dB across 5725–5875 MHz.
            IsmBand::Ism5800 => MatchingNetwork {
                shunt_c: 0.3e-12,
                series_l: 4e-9,
                inductor_q: 100.0,
                rectifier: RectifierImpedance {
                    r_parallel: 600.0,
                    c_parallel: 0.2e-12,
                    r_series: 5.0,
                },
            },
        };
        // Diode losses grow with frequency (junction capacitance shunting);
        // Schottky rectifiers work somewhat better at UHF.
        let mut rectifier = Rectifier::battery_free();
        match band {
            IsmBand::Ism900 => {
                rectifier.coeff *= 1.15;
                rectifier.sensitivity = Dbm(rectifier.sensitivity.0 - 1.0);
            }
            IsmBand::Ism2400 => {}
            IsmBand::Ism5800 => {
                rectifier.coeff *= 0.70;
                rectifier.sensitivity = Dbm(rectifier.sensitivity.0 + 2.0);
            }
        }
        BandFrontEnd {
            band,
            matching,
            rectifier,
        }
    }

    /// DC output for an in-band input.
    pub fn dc_power(&self, f: Hertz, p: Dbm) -> MicroWatts {
        let accepted = p.to_uw().0 * self.matching.mismatch_factor(f);
        self.rectifier.output_power(MicroWatts(accepted).to_dbm())
    }
}

/// A bank of band front ends sharing one store.
#[derive(Debug, Clone)]
pub struct MultibandHarvester {
    /// The front ends, one per band.
    pub front_ends: Vec<BandFrontEnd>,
    /// DC–DC conversion efficiency into the shared store.
    pub converter_efficiency: f64,
}

impl MultibandHarvester {
    /// A harvester covering the given bands (battery-free calibration,
    /// S-882Z-class converter).
    pub fn covering(bands: &[IsmBand]) -> MultibandHarvester {
        MultibandHarvester {
            front_ends: bands.iter().map(|&b| BandFrontEnd::for_band(b)).collect(),
            converter_efficiency: 0.5,
        }
    }

    /// Total DC power into the store for per-frequency inputs with duty
    /// factors. Out-of-band inputs (no matching front end) contribute
    /// nothing — the selectivity a real multiband rectenna bank has.
    pub fn dc_power(&self, inputs: &[(Hertz, Dbm, f64)]) -> MicroWatts {
        let mut uw = 0.0;
        for &(f, p, duty) in inputs {
            if let Some(band) = IsmBand::containing(f) {
                if let Some(fe) = self.front_ends.iter().find(|fe| fe.band == band) {
                    uw += fe.dc_power(f, p).0 * duty.clamp(0.0, 1.0);
                }
            }
        }
        MicroWatts(uw * self.converter_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_band_matches_meet_minus_10db() {
        for band in IsmBand::ALL {
            let fe = BandFrontEnd::for_band(band);
            let (lo, hi) = band.edges();
            let mut f = lo.0;
            while f <= hi.0 {
                let rl = fe.matching.return_loss(Hertz(f)).0;
                assert!(rl < -10.0, "{band:?}: {rl} dB at {f} Hz");
                f += 1e6;
            }
        }
    }

    #[test]
    fn front_ends_reject_out_of_band_power() {
        let fe = BandFrontEnd::for_band(IsmBand::Ism900);
        let in_band = fe.dc_power(Hertz::from_mhz(915.0), Dbm(-10.0)).0;
        let out = fe.dc_power(Hertz::from_mhz(2437.0), Dbm(-10.0)).0;
        assert!(out < 0.5 * in_band, "in {in_band} out {out}");
    }

    #[test]
    fn more_bands_harvest_more() {
        let only_2g4 = MultibandHarvester::covering(&[IsmBand::Ism2400]);
        let all = MultibandHarvester::covering(&IsmBand::ALL);
        let mut inputs = Vec::new();
        for band in IsmBand::ALL {
            for ch in band.power_channels() {
                inputs.push((ch, Dbm(-12.0), 0.3));
            }
        }
        let p1 = only_2g4.dc_power(&inputs).0;
        let p3 = all.dc_power(&inputs).0;
        assert!(p3 > 1.5 * p1, "2.4-only {p1} vs all-band {p3}");
    }

    #[test]
    fn uncovered_bands_contribute_nothing() {
        let h = MultibandHarvester::covering(&[IsmBand::Ism2400]);
        let p = h.dc_power(&[(Hertz::from_mhz(915.0), Dbm(0.0), 1.0)]);
        assert_eq!(p.0, 0.0);
    }

    #[test]
    fn band_sensitivities_order_with_frequency() {
        // Lower carrier frequency → friendlier diode physics.
        let s900 = BandFrontEnd::for_band(IsmBand::Ism900)
            .rectifier
            .sensitivity
            .0;
        let s2400 = BandFrontEnd::for_band(IsmBand::Ism2400)
            .rectifier
            .sensitivity
            .0;
        let s5800 = BandFrontEnd::for_band(IsmBand::Ism5800)
            .rectifier
            .sensitivity
            .0;
        assert!(s900 < s2400 && s2400 < s5800);
    }
}
