//! Rectifier-voltage trace generation — the machinery behind Fig. 1 and the
//! §2 "would it just work?" experiment.

use crate::rectifier::{Rectifier, RectifierNode};
use powifi_rf::Dbm;
use powifi_sim::{PowerEnvelope, SimDuration, SimTime};

/// One sample of a rectifier-voltage trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Time, seconds.
    pub t: f64,
    /// Rectifier node voltage, volts.
    pub volts: f64,
    /// Whether RF was on the air at this instant.
    pub rf_on: bool,
}

/// Simulate the rectifier node against per-channel on/off envelopes.
/// `channels` pairs each channel's envelope (levels 0/1 from the occupancy
/// monitor) with the received power when that channel is active.
pub fn rectifier_trace(
    channels: &[(&PowerEnvelope, Dbm)],
    rect: &Rectifier,
    mut node: RectifierNode,
    t0: SimTime,
    t1: SimTime,
    step: SimDuration,
) -> Vec<TraceSample> {
    assert!(t1 > t0 && !step.is_zero());
    let mut out = Vec::new();
    let mut t = t0;
    while t < t1 {
        let mut uw = 0.0;
        for (env, p) in channels {
            if env.level_at(t) > 0.5 {
                uw += p.to_uw().0;
            }
        }
        let rf_on = uw > 0.0;
        let v_target = if rf_on {
            rect.open_voltage(powifi_rf::MicroWatts(uw).to_dbm())
        } else {
            0.0
        };
        node.step(step, v_target);
        out.push(TraceSample {
            t: t.as_secs_f64(),
            volts: node.volts,
            rf_on,
        });
        t += step;
    }
    out
}

/// Summary of a trace against the DC–DC converter's minimum input voltage.
#[derive(Debug, Clone, Copy)]
pub struct TraceSummary {
    /// Highest voltage reached.
    pub peak_volts: f64,
    /// Fraction of samples at or above the threshold.
    pub fraction_above: f64,
    /// Whether the threshold was ever reached.
    pub crossed: bool,
}

/// Evaluate a trace against a threshold (300 mV for the Seiko S-882Z).
pub fn summarize(trace: &[TraceSample], threshold: f64) -> TraceSummary {
    let peak = trace.iter().map(|s| s.volts).fold(0.0, f64::max);
    let above = trace.iter().filter(|s| s.volts >= threshold).count();
    TraceSummary {
        peak_volts: peak,
        fraction_above: if trace.is_empty() {
            0.0
        } else {
            above as f64 / trace.len() as f64
        },
        crossed: peak >= threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a bursty envelope: `on_us` on, `off_us` off, repeating.
    fn bursty(on_us: u64, off_us: u64, total_ms: u64) -> PowerEnvelope {
        let mut env = PowerEnvelope::new();
        let mut t = 0;
        while t < total_ms * 1000 {
            env.set(SimTime::from_micros(t), 1.0);
            env.set(SimTime::from_micros(t + on_us), 0.0);
            t += on_us + off_us;
        }
        env
    }

    #[test]
    fn low_occupancy_never_crosses_threshold() {
        // §2: a stock router at 10–40 % occupancy cannot push the node past
        // 300 mV at 10 ft (received power below sensitivity).
        let env = bursty(500, 2000, 5); // 20 % duty
        let rect = Rectifier::battery_free();
        let trace = rectifier_trace(
            &[(&env, Dbm(-21.0))],
            &rect,
            RectifierNode::fig1_default(),
            SimTime::ZERO,
            SimTime::from_millis(5),
            SimDuration::from_micros(5),
        );
        let s = summarize(&trace, 0.30);
        assert!(!s.crossed, "peak {}", s.peak_volts);
        assert!(s.peak_volts > 0.05, "harvests something during packets");
    }

    #[test]
    fn continuous_high_power_crosses_threshold() {
        let env = PowerEnvelope::constant(1.0);
        let rect = Rectifier::battery_free();
        let trace = rectifier_trace(
            &[(&env, Dbm(-15.0))],
            &rect,
            RectifierNode::fig1_default(),
            SimTime::ZERO,
            SimTime::from_millis(5),
            SimDuration::from_micros(5),
        );
        let s = summarize(&trace, 0.30);
        assert!(s.crossed);
        assert!(s.fraction_above > 0.8);
    }

    #[test]
    fn voltage_sawtooths_with_bursts() {
        let env = bursty(500, 1000, 6);
        let rect = Rectifier::battery_free();
        let trace = rectifier_trace(
            &[(&env, Dbm(-18.0))],
            &rect,
            RectifierNode::fig1_default(),
            SimTime::ZERO,
            SimTime::from_millis(6),
            SimDuration::from_micros(5),
        );
        // Rises while RF is on, falls while off (compare consecutive samples
        // mid-burst and mid-gap).
        let on_pair = trace.windows(2).find(|w| w[0].rf_on && w[1].rf_on).unwrap();
        assert!(on_pair[1].volts >= on_pair[0].volts);
        let off_pair = trace
            .windows(2)
            .find(|w| !w[0].rf_on && !w[1].rf_on && w[0].volts > 0.01)
            .unwrap();
        assert!(off_pair[1].volts < off_pair[0].volts);
    }

    #[test]
    fn two_channels_sum_power() {
        let a = bursty(500, 500, 4);
        let b = PowerEnvelope::constant(1.0);
        let rect = Rectifier::battery_free();
        let one = rectifier_trace(
            &[(&b, Dbm(-20.0))],
            &rect,
            RectifierNode::fig1_default(),
            SimTime::ZERO,
            SimTime::from_millis(4),
            SimDuration::from_micros(10),
        );
        let two = rectifier_trace(
            &[(&a, Dbm(-20.0)), (&b, Dbm(-20.0))],
            &rect,
            RectifierNode::fig1_default(),
            SimTime::ZERO,
            SimTime::from_millis(4),
            SimDuration::from_micros(10),
        );
        let p1 = summarize(&one, 0.0).peak_volts;
        let p2 = summarize(&two, 0.0).peak_volts;
        assert!(p2 > p1, "{p2} <= {p1}");
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = summarize(&[], 0.3);
        assert!(!s.crossed);
        assert_eq!(s.fraction_above, 0.0);
    }
}
