//! Energy storage elements: ceramic capacitors, the AVX BestCap
//! super-capacitor of the camera, and the NiMH / Li-Ion cells the paper
//! recharges.

use powifi_rf::{Joules, Watts};
use powifi_sim::SimDuration;

/// A capacitor with leakage, tracked by terminal voltage.
#[derive(Debug, Clone, Copy)]
pub struct Capacitor {
    /// Capacitance, F.
    pub farads: f64,
    /// Present voltage, V.
    pub volts: f64,
    /// Leakage resistance, Ω (`f64::INFINITY` = ideal).
    pub leak_ohms: f64,
}

impl Capacitor {
    /// New capacitor at 0 V.
    pub fn new(farads: f64, leak_ohms: f64) -> Capacitor {
        Capacitor {
            farads,
            volts: 0.0,
            leak_ohms,
        }
    }

    /// The camera's 6.8 mF AVX BestCap with its ultra-low leakage
    /// (modeled as ≈2 µW equivalent at 3 V → R ≈ 4.5 MΩ).
    pub fn bestcap_6_8mf() -> Capacitor {
        Capacitor::new(6.8e-3, 4.5e6)
    }

    /// The temperature sensor's storage capacitor (100 µF ceramic).
    pub fn sensor_100uf() -> Capacitor {
        Capacitor::new(100e-6, 20e6)
    }

    /// Stored energy, J.
    pub fn energy(&self) -> Joules {
        Joules(0.5 * self.farads * self.volts * self.volts)
    }

    /// Add energy (from the DC–DC converter).
    pub fn charge(&mut self, e: Joules) {
        assert!(e.0 >= 0.0);
        let new_e = self.energy().0 + e.0;
        self.volts = (2.0 * new_e / self.farads).sqrt();
    }

    /// Remove energy for a load; returns false (leaving state unchanged) if
    /// insufficient charge.
    pub fn discharge(&mut self, e: Joules) -> bool {
        assert!(e.0 >= 0.0);
        let have = self.energy().0;
        if e.0 > have {
            return false;
        }
        self.volts = (2.0 * (have - e.0) / self.farads).sqrt();
        true
    }

    /// Apply leakage over `dt` (exponential RC decay).
    pub fn leak(&mut self, dt: SimDuration) {
        if self.leak_ohms.is_finite() {
            let tau = self.leak_ohms * self.farads;
            self.volts *= (-dt.as_secs_f64() / tau).exp();
        }
    }

    /// Instantaneous leakage power at the present voltage.
    pub fn leak_power(&self) -> Watts {
        if self.leak_ohms.is_finite() {
            Watts(self.volts * self.volts / self.leak_ohms)
        } else {
            Watts::ZERO
        }
    }
}

/// Battery chemistry of a rechargeable cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chemistry {
    /// Nickel–metal hydride (2×AAA at 2.4 V in the paper).
    NiMh,
    /// Lithium-ion coin cell (Seiko MS412FE, 3.0 V, 1 mAh).
    LiIon,
}

/// A rechargeable battery tracked by accumulated charge.
#[derive(Debug, Clone, Copy)]
pub struct Battery {
    /// Chemistry (for reporting).
    pub chemistry: Chemistry,
    /// Nominal terminal voltage, V.
    pub volts: f64,
    /// Capacity, mAh.
    pub capacity_mah: f64,
    /// Present charge, mAh.
    pub charge_mah: f64,
    /// Coulombic charge efficiency (energy in → charge stored).
    pub charge_eff: f64,
}

impl Battery {
    /// The paper's 2×AAA 750 mAh NiMH pack at 2.4 V.
    pub fn nimh_aaa() -> Battery {
        Battery {
            chemistry: Chemistry::NiMh,
            volts: 2.4,
            capacity_mah: 750.0,
            charge_mah: 375.0,
            charge_eff: 0.80,
        }
    }

    /// The 1 mAh, 3.0 V Li-Ion coin cell of the camera.
    pub fn liion_coin() -> Battery {
        Battery {
            chemistry: Chemistry::LiIon,
            volts: 3.0,
            capacity_mah: 1.0,
            charge_mah: 0.5,
            charge_eff: 0.90,
        }
    }

    /// The Jawbone UP24's cell (≈14 mAh effective in the §8a demo: 2.3 mA
    /// average over 2.5 h charged it from empty to 41 %).
    pub fn jawbone_up24() -> Battery {
        Battery {
            chemistry: Chemistry::LiIon,
            volts: 3.8,
            capacity_mah: 14.0,
            charge_mah: 0.0,
            charge_eff: 1.0,
        }
    }

    /// Push `e` joules of charging energy in over some interval; charge
    /// accumulates as `e·η / V` coulombs, clamped at capacity.
    pub fn charge_energy(&mut self, e: Joules) {
        assert!(e.0 >= 0.0);
        let coulombs = e.0 * self.charge_eff / self.volts;
        let mah = coulombs / 3.6;
        self.charge_mah = (self.charge_mah + mah).min(self.capacity_mah);
    }

    /// Draw `e` joules; returns false if the battery is too empty.
    pub fn discharge_energy(&mut self, e: Joules) -> bool {
        let mah = e.0 / self.volts / 3.6;
        if mah > self.charge_mah {
            return false;
        }
        self.charge_mah -= mah;
        true
    }

    /// State of charge, 0–1.
    pub fn soc(&self) -> f64 {
        self.charge_mah / self.capacity_mah
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitor_energy_voltage_roundtrip() {
        let mut c = Capacitor::new(100e-6, f64::INFINITY);
        c.charge(Joules::from_uj(288.0)); // ½·100µ·V² = 288 µJ → V = 2.4
        assert!((c.volts - 2.4).abs() < 1e-9, "v {}", c.volts);
        assert!(c.discharge(Joules::from_uj(126.0))); // down to ½·100µ·1.8²
        assert!((c.volts - 1.8).abs() < 1e-9, "v {}", c.volts);
    }

    #[test]
    fn capacitor_refuses_overdraw() {
        let mut c = Capacitor::new(1e-6, f64::INFINITY);
        c.charge(Joules::from_uj(1.0));
        let v = c.volts;
        assert!(!c.discharge(Joules::from_uj(2.0)));
        assert_eq!(c.volts, v);
    }

    #[test]
    fn leakage_decays_voltage() {
        let mut c = Capacitor::new(1e-6, 1e6); // τ = 1 s
        c.charge(Joules::from_uj(0.5)); // 1 V
        c.leak(SimDuration::from_secs(1));
        assert!((c.volts - (-1.0f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn bestcap_frame_budget() {
        // ½·6.8m·(3.1² − 2.4²) ≈ 13.1 mJ — enough for one 10.4 mJ frame,
        // the design point of the battery-free camera (§5.2).
        let mut c = Capacitor::bestcap_6_8mf();
        c.charge(Joules(0.5 * 6.8e-3 * 3.1 * 3.1));
        let usable = c.energy().0 - 0.5 * 6.8e-3 * 2.4 * 2.4;
        assert!(usable > 10.4e-3, "usable {usable}");
        assert!(usable < 14.0e-3);
    }

    #[test]
    fn battery_charge_accounting() {
        let mut b = Battery::nimh_aaa();
        b.charge_mah = 0.0;
        // 1 J at 2.4 V, 80 % efficient → 0.333 C → 0.0926 mAh.
        b.charge_energy(Joules(1.0));
        assert!((b.charge_mah - 1.0 * 0.8 / 2.4 / 3.6).abs() < 1e-9);
        assert!(b.discharge_energy(Joules(0.1)));
        assert!(!b.discharge_energy(Joules(100.0)));
    }

    #[test]
    fn battery_clamps_at_capacity() {
        let mut b = Battery::liion_coin();
        b.charge_energy(Joules(1e6));
        assert_eq!(b.charge_mah, b.capacity_mah);
        assert_eq!(b.soc(), 1.0);
    }

    #[test]
    fn jawbone_demo_arithmetic() {
        // 2.3 mA for 2.5 h = 5.75 mAh ≈ 41 % of the 14 mAh effective cell.
        let mut b = Battery::jawbone_up24();
        let energy = 2.3e-3 * 3.8 * 2.5 * 3600.0; // I·V·t joules
        b.charge_energy(Joules(energy));
        assert!((b.soc() - 0.41).abs() < 0.01, "soc {}", b.soc());
    }
}
