//! # powifi-harvest
//!
//! The analog substrate of PoWiFi: the multi-channel 2.4 GHz RF harvester of
//! §3.1, modeled at circuit level — complex-impedance LC matching network
//! (return loss per Fig. 9), SMS7630-class voltage-doubler rectifier
//! (power curve per Fig. 10, node dynamics per Fig. 1), Seiko S-882Z and TI
//! bq25570 DC–DC behavioural models, and storage elements (capacitors,
//! the camera's super-capacitor, NiMH and Li-Ion cells).
//!
//! All calibration constants are documented at their definition sites and
//! cross-referenced in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod dcdc;
pub mod harvester;
pub mod matching;
pub mod multiband;
pub mod rectifier;
pub mod storage;
pub mod traces;

pub use complex::C64;
pub use dcdc::{mppt_factor, Converter};
pub use harvester::{Harvester, Store};
pub use matching::{MatchingNetwork, RectifierImpedance, Z0};
pub use multiband::{BandFrontEnd, MultibandHarvester};
pub use rectifier::{Rectifier, RectifierNode, Variant};
pub use storage::{Battery, Capacitor, Chemistry};
pub use traces::{rectifier_trace, summarize, TraceSample, TraceSummary};
