//! The co-designed matching network (§3.1, Fig. 4, Fig. 9).
//!
//! Topology: 50 Ω antenna → shunt capacitor → series inductor (0402, Q = 100
//! at 2.45 GHz, per the Coilcraft part the paper uses) → rectifier. The
//! rectifier presents a parallel-RC input impedance (diode junction
//! capacitance + video resistance) plus a small series loss; the DC–DC
//! converter's operating point shifts that RC — which is exactly the
//! co-design lever the paper pulls, and why the two harvester variants use
//! different shunt capacitors (1.5 pF battery-free, 1.3 pF recharging).

use crate::complex::C64;
use powifi_rf::{Db, Hertz};

/// Reference impedance of the antenna port.
pub const Z0: f64 = 50.0;

/// Small-signal input impedance of the rectifier (parallel RC + series R).
#[derive(Debug, Clone, Copy)]
pub struct RectifierImpedance {
    /// Parallel (video) resistance, Ω. Set by the DC–DC converter's load
    /// line — the co-design knob.
    pub r_parallel: f64,
    /// Effective junction + layout capacitance, F.
    pub c_parallel: f64,
    /// Series loss resistance, Ω.
    pub r_series: f64,
}

impl RectifierImpedance {
    /// Impedance at frequency `f`.
    pub fn at(&self, f: Hertz) -> C64 {
        let w = f.omega();
        let y = C64::new(1.0 / self.r_parallel, w * self.c_parallel);
        C64::real(self.r_series) + y.recip()
    }
}

/// Single-stage LC match: shunt C at the antenna, series L to the rectifier.
#[derive(Debug, Clone, Copy)]
pub struct MatchingNetwork {
    /// Shunt capacitance at the antenna port, F.
    pub shunt_c: f64,
    /// Series inductance, H.
    pub series_l: f64,
    /// Inductor quality factor at 2.45 GHz (losses scale with ωL/Q).
    pub inductor_q: f64,
    /// Rectifier the network is terminated by.
    pub rectifier: RectifierImpedance,
}

impl MatchingNetwork {
    /// The battery-free harvester: 6.8 nH + 1.5 pF (§3.1), with the
    /// rectifier impedance the Seiko charge pump biases it to.
    pub fn battery_free() -> MatchingNetwork {
        MatchingNetwork {
            shunt_c: 1.5e-12,
            series_l: 6.8e-9,
            inductor_q: 100.0,
            rectifier: RectifierImpedance {
                r_parallel: 410.0,
                c_parallel: 0.80e-12,
                r_series: 5.0,
            },
        }
    }

    /// The battery-recharging harvester: 6.8 nH + 1.3 pF, with the bq25570's
    /// MPPT (200 mV reference) holding the rectifier at a slightly different
    /// operating impedance.
    pub fn battery_charging() -> MatchingNetwork {
        MatchingNetwork {
            shunt_c: 1.3e-12,
            series_l: 6.8e-9,
            inductor_q: 100.0,
            rectifier: RectifierImpedance {
                r_parallel: 460.0,
                c_parallel: 0.80e-12,
                r_series: 10.0,
            },
        }
    }

    /// Input impedance seen from the antenna at `f`.
    pub fn input_impedance(&self, f: Hertz) -> C64 {
        let w = f.omega();
        let z_l = C64::new(w * self.series_l / self.inductor_q, w * self.series_l);
        let z_branch = z_l + self.rectifier.at(f);
        let y_in = C64::imag(w * self.shunt_c) + z_branch.recip();
        y_in.recip()
    }

    /// Reflection coefficient Γ at `f`.
    pub fn reflection(&self, f: Hertz) -> C64 {
        let z = self.input_impedance(f);
        (z - C64::real(Z0)) / (z + C64::real(Z0))
    }

    /// Return loss (negative dB; more negative = better match) — Fig. 9.
    pub fn return_loss(&self, f: Hertz) -> Db {
        Db(20.0 * self.reflection(f).abs().log10())
    }

    /// Fraction of incident power accepted by the harvester: 1 − |Γ|².
    pub fn mismatch_factor(&self, f: Hertz) -> f64 {
        1.0 - self.reflection(f).norm_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powifi_rf::channel::{harvest_band_high, harvest_band_low};
    use powifi_rf::WifiChannel;

    fn band_scan(n: &MatchingNetwork) -> Vec<(f64, f64)> {
        let lo = harvest_band_low().mhz().min(2401.0);
        let hi = harvest_band_high().mhz().max(2473.0);
        let mut out = Vec::new();
        let mut f = lo;
        while f <= hi {
            out.push((f, n.return_loss(Hertz::from_mhz(f)).0));
            f += 1.0;
        }
        out
    }

    #[test]
    fn battery_free_under_minus_10db_across_band() {
        // Fig. 9a: return loss < −10 dB across 2.401–2.473 GHz.
        let n = MatchingNetwork::battery_free();
        for (f, rl) in band_scan(&n) {
            assert!(rl < -10.0, "return loss {rl} dB at {f} MHz");
        }
    }

    #[test]
    fn battery_charging_under_minus_10db_across_band() {
        // Fig. 9b.
        let n = MatchingNetwork::battery_charging();
        for (f, rl) in band_scan(&n) {
            assert!(rl < -10.0, "return loss {rl} dB at {f} MHz");
        }
    }

    #[test]
    fn match_has_a_deep_dip_inside_band() {
        for n in [
            MatchingNetwork::battery_free(),
            MatchingNetwork::battery_charging(),
        ] {
            let best = band_scan(&n)
                .into_iter()
                .map(|(_, rl)| rl)
                .fold(f64::INFINITY, f64::min);
            assert!(best < -25.0, "dip only {best} dB");
        }
    }

    #[test]
    fn mismatch_loss_below_half_db() {
        // §4.2a: "−10 dB … translates to less than 0.5 dB of lost power".
        let n = MatchingNetwork::battery_free();
        for ch in WifiChannel::POWER_SET {
            let accepted = n.mismatch_factor(ch.center());
            let loss_db = -10.0 * accepted.log10();
            assert!(loss_db < 0.5, "loss {loss_db} dB on {ch:?}");
        }
    }

    #[test]
    fn out_of_band_match_degrades() {
        let n = MatchingNetwork::battery_free();
        let in_band = n.return_loss(Hertz::from_mhz(2440.0)).0;
        let far = n.return_loss(Hertz::from_mhz(2900.0)).0;
        assert!(far > in_band + 10.0, "in {in_band}, far {far}");
    }

    #[test]
    fn impedance_is_near_50_ohm_at_match() {
        let n = MatchingNetwork::battery_free();
        let z = n.input_impedance(Hertz::from_mhz(2426.0));
        assert!((z.re - Z0).abs() < 5.0, "re {}", z.re);
        assert!(z.im.abs() < 5.0, "im {}", z.im);
    }
}
