//! Minimal complex arithmetic for impedance math (no external num crate).

use core::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct from rectangular parts.
    pub const fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// Purely real value.
    pub const fn real(re: f64) -> C64 {
        C64 { re, im: 0.0 }
    }

    /// Purely imaginary value.
    pub const fn imag(im: f64) -> C64 {
        C64 { re: 0.0, im }
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(self) -> C64 {
        let n = self.norm_sq();
        assert!(n > 0.0, "reciprocal of zero");
        C64::new(self.re / n, -self.im / n)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
impl Div for C64 {
    type Output = C64;
    // Division via reciprocal multiplication is the intended algorithm.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: C64) -> C64 {
        self * o.recip()
    }
}
impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}
impl Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, s: f64) -> C64 {
        C64::new(self.re * s, self.im * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(-1.0, 2.0);
        assert_eq!(a + b, C64::new(2.0, 6.0));
        assert_eq!(a - b, C64::new(4.0, 2.0));
        assert_eq!(a * b, C64::new(-11.0, 2.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), C64::new(3.0, -4.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(-1.0, 2.0);
        let c = (a * b) / b;
        assert!((c.re - a.re).abs() < 1e-12 && (c.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn recip_of_unit() {
        let i = C64::imag(1.0);
        assert_eq!(i.recip(), C64::imag(-1.0));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        C64::default().recip();
    }
}
