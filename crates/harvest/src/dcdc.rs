//! DC–DC converter behavioural models (§3.1 "DC–DC converter design").
//!
//! * **Seiko S-882Z** charge pump: the battery-free path. Cold-starts from
//!   0 V once the rectifier provides ≥ 300 mV, pumps the storage capacitor to
//!   2.4 V, then connects the output until the store droops to 1.8 V.
//! * **TI bq25570**: boost converter with MPPT (200 mV reference in the
//!   paper's configuration), battery charger, and a 2.55 V buck used by the
//!   camera. With a battery attached there is no cold-start problem, which
//!   is why the recharging harvester reaches −19.3 dBm.

/// bq25570 MPPT model: relative harvest efficiency as a function of the
/// MPPT reference voltage. The boost converter holds the rectifier's output
/// at the reference; maximum power transfer happens near the rectifier's
/// half-open-circuit point, which the paper's co-design lands at 200 mV
/// (§3.1: "we set the buck converter's MPPT reference voltage to 200 mV").
/// Off-reference operation loads the rectifier away from its optimum and
/// also detunes its input impedance (the matching network was fitted at the
/// design point), costing efficiency on both counts.
pub fn mppt_factor(vref_volts: f64) -> f64 {
    const OPTIMUM: f64 = 0.20;
    const WIDTH: f64 = 0.11;
    if vref_volts <= 0.0 {
        return 0.0;
    }
    (-((vref_volts - OPTIMUM) / WIDTH).powi(2)).exp()
}

use powifi_rf::Watts;

/// A behavioural DC–DC converter.
#[derive(Debug, Clone, Copy)]
pub struct Converter {
    /// Power conversion efficiency into the store.
    pub efficiency: f64,
    /// Minimum rectifier open-circuit voltage to operate from a dead store.
    pub cold_start_volts: f64,
    /// True when a battery pre-biases the chip (no cold-start requirement).
    pub battery_assisted: bool,
    /// Quiescent drain from the store while operating.
    pub quiescent: Watts,
    /// Store voltage at which the output switch engages (cap stores only).
    pub output_on_volts: f64,
    /// Store voltage at which the output switch disengages.
    pub output_off_volts: f64,
}

impl Converter {
    /// Seiko S-882Z: 300 mV start-up, charges to 2.4 V then releases
    /// (datasheet VOUT hysteresis ≈ 1.8 V low side).
    pub fn s882z() -> Converter {
        Converter {
            efficiency: 0.50,
            cold_start_volts: 0.30,
            battery_assisted: false,
            quiescent: Watts(0.3e-6),
            output_on_volts: 2.4,
            output_off_volts: 1.8,
        }
    }

    /// bq25570 charging a battery (MPPT at 200 mV reference).
    pub fn bq25570_battery() -> Converter {
        Converter {
            efficiency: 0.70,
            cold_start_volts: 0.10,
            battery_assisted: true,
            quiescent: Watts(0.5e-6),
            output_on_volts: 0.0,
            output_off_volts: 0.0,
        }
    }

    /// bq25570 with the camera's super-capacitor: buck engages at 3.1 V and
    /// runs the 2.55 V rail down to 2.4 V (§5.2).
    pub fn bq25570_supercap() -> Converter {
        Converter {
            efficiency: 0.65,
            cold_start_volts: 0.33,
            battery_assisted: false,
            quiescent: Watts(0.5e-6),
            output_on_volts: 3.1,
            output_off_volts: 2.4,
        }
    }

    /// Whether the converter can move energy given the rectifier's
    /// open-circuit voltage and the present store voltage.
    pub fn can_operate(&self, rect_voc: f64, store_volts: f64) -> bool {
        if self.battery_assisted {
            // Battery keeps internal rails alive; only needs some input.
            rect_voc > 0.05
        } else {
            // Cold start from the rectifier, or stay alive off a store that
            // has already been pumped above the internal supply minimum.
            rect_voc >= self.cold_start_volts || store_volts >= 1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s882z_requires_300mv_cold_start() {
        let c = Converter::s882z();
        assert!(!c.can_operate(0.25, 0.0));
        assert!(c.can_operate(0.31, 0.0));
    }

    #[test]
    fn s882z_stays_alive_once_bootstrapped() {
        let c = Converter::s882z();
        assert!(c.can_operate(0.2, 1.5));
    }

    #[test]
    fn battery_assist_removes_cold_start() {
        let c = Converter::bq25570_battery();
        assert!(c.can_operate(0.12, 0.0));
        assert!(!c.can_operate(0.0, 0.0));
    }

    #[test]
    fn battery_path_is_more_efficient() {
        // The bq25570 boost beats the S-882Z charge pump — part of why the
        // recharging variants extend range in Figs. 11–12.
        assert!(Converter::bq25570_battery().efficiency > Converter::s882z().efficiency);
    }

    #[test]
    fn mppt_peaks_at_the_papers_200mv() {
        let peak = mppt_factor(0.20);
        assert!((peak - 1.0).abs() < 1e-12);
        for v in [0.05, 0.10, 0.15, 0.25, 0.30, 0.40] {
            assert!(mppt_factor(v) < peak, "not a peak at {v} V");
        }
        // Symmetric-ish near the optimum, dead at zero.
        assert_eq!(mppt_factor(0.0), 0.0);
        assert!(mppt_factor(0.15) > 0.7 && mppt_factor(0.25) > 0.7);
    }

    #[test]
    fn supercap_hysteresis_matches_camera_design() {
        let c = Converter::bq25570_supercap();
        assert_eq!(c.output_on_volts, 3.1);
        assert_eq!(c.output_off_volts, 2.4);
    }
}
