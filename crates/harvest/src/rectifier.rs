//! Rectifier power conversion (§3.1 "Rectifier Design", Fig. 10, Fig. 1).
//!
//! The voltage-doubler built from SMS7630-061 Schottky diodes is modeled at
//! two levels:
//!
//! * a **power curve** `P_out(P_in)` calibrated against Fig. 10 — a soft
//!   threshold at the variant's sensitivity followed by a sub-linear power
//!   law (`P_out = a·P_in^β`), reflecting the diode's square-law-to-linear
//!   transition;
//! * a **node-voltage model** for the rectifier output capacitor used to
//!   regenerate Fig. 1: the voltage relaxes toward the open-circuit voltage
//!   while RF is present and leaks away during Wi-Fi silence.
//!
//! Calibration anchors (see EXPERIMENTS.md): battery-free sensitivity
//! −17.8 dBm, battery-charging −19.3 dBm, and ≈150 µW output at +4 dBm input.

use powifi_rf::{Dbm, MicroWatts};
use powifi_sim::SimDuration;

/// Which harvester front-end variant (they differ in cold-start behaviour
/// and the DC–DC operating point biasing the diodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Seiko S-882Z charge pump; must cold-start from 0 V (§3.1).
    BatteryFree,
    /// TI bq25570 with a battery present; MPPT holds the rectifier at its
    /// optimum, buying ≈1.5 dB of sensitivity (Fig. 10).
    BatteryCharging,
}

/// The rectifier's DC conversion model.
#[derive(Debug, Clone, Copy)]
pub struct Rectifier {
    /// Power-law coefficient `a` in `P_out = a·P_in^β` (µW units).
    pub coeff: f64,
    /// Power-law exponent `β` (< 1: efficiency falls at high power as the
    /// measurement in Fig. 10 shows).
    pub exponent: f64,
    /// Minimum input power for any usable output.
    pub sensitivity: Dbm,
    /// Width of the soft turn-on around the sensitivity, dB.
    pub knee_width_db: f64,
    /// Open-circuit voltage coefficient, volts per √µW.
    pub voc_gamma: f64,
}

impl Rectifier {
    /// Battery-free calibration.
    pub fn battery_free() -> Rectifier {
        Rectifier {
            coeff: 0.2195,
            exponent: 0.835,
            sensitivity: Dbm(-17.8),
            knee_width_db: 1.2,
            voc_gamma: 0.086,
        }
    }

    /// Battery-recharging calibration (MPPT-assisted).
    pub fn battery_charging() -> Rectifier {
        Rectifier {
            coeff: 0.2415,
            exponent: 0.835,
            sensitivity: Dbm(-19.3),
            knee_width_db: 1.2,
            voc_gamma: 0.086,
        }
    }

    /// DC output power available for the given RF input power (post-match).
    pub fn output_power(&self, p_in: Dbm) -> MicroWatts {
        let p_uw = p_in.to_uw().0;
        if p_uw <= 0.0 {
            return MicroWatts(0.0);
        }
        let raw = self.coeff * p_uw.powf(self.exponent);
        // Soft threshold: logistic in dB around the sensitivity, with a hard
        // floor 1 dB below it (the DC-DC converter simply cannot start).
        let margin_db = p_in.0 - self.sensitivity.0;
        if margin_db < -1.0 {
            return MicroWatts(0.0);
        }
        let gate = 1.0 / (1.0 + (-(margin_db) / (self.knee_width_db / 4.0)).exp());
        MicroWatts(raw * gate)
    }

    /// Open-circuit output voltage for the given RF input power.
    pub fn open_voltage(&self, p_in: Dbm) -> f64 {
        let p_uw = p_in.to_uw().0;
        if p_uw <= 0.0 {
            0.0
        } else {
            self.voc_gamma * p_uw.sqrt()
        }
    }

    /// Conversion efficiency at the given input (for reporting).
    pub fn efficiency(&self, p_in: Dbm) -> f64 {
        let p_uw = p_in.to_uw().0;
        if p_uw <= 0.0 {
            0.0
        } else {
            self.output_power(p_in).0 / p_uw
        }
    }
}

/// The rectifier output node: reservoir capacitor charged through the
/// rectifier's source resistance while RF is present, discharged by leakage
/// (DC–DC quiescent draw + diode reverse leakage) during silence — the
/// physics behind Fig. 1's sawtooth.
#[derive(Debug, Clone, Copy)]
pub struct RectifierNode {
    /// Reservoir capacitance, F.
    pub cap: f64,
    /// Charging source resistance, Ω (sets the attack time constant).
    pub charge_r: f64,
    /// Leakage resistance, Ω (sets the decay time constant).
    pub leak_r: f64,
    /// Present node voltage, V.
    pub volts: f64,
}

impl RectifierNode {
    /// Node matching the paper's §2 measurement setup: the observed rise
    /// over a ~0.5 ms packet and fall over ~1 ms gaps in Fig. 1 imply
    /// attack/decay constants of a few hundred µs.
    pub fn fig1_default() -> RectifierNode {
        RectifierNode {
            cap: 1.0e-6,
            charge_r: 220.0,
            leak_r: 1_500.0,
            volts: 0.0,
        }
    }

    /// Advance the node by `dt` with `v_target` the rectifier open-circuit
    /// voltage (0 when the channel is silent).
    pub fn step(&mut self, dt: SimDuration, v_target: f64) {
        let dt_s = dt.as_secs_f64();
        if v_target > self.volts {
            let tau = self.charge_r * self.cap;
            self.volts = v_target + (self.volts - v_target) * (-dt_s / tau).exp();
        } else {
            let tau = self.leak_r * self.cap;
            // Decay toward the (lower) target — usually 0 during silence.
            self.volts = v_target + (self.volts - v_target) * (-dt_s / tau).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_gates_output() {
        let r = Rectifier::battery_free();
        let below = r.output_power(Dbm(-22.0)).0;
        let above = r.output_power(Dbm(-14.0)).0;
        assert!(below < 0.05 * above, "below {below} above {above}");
    }

    #[test]
    fn battery_charging_works_at_lower_power() {
        // Fig. 10: the recharging harvester operates down to −19.3 dBm vs
        // −17.8 dBm battery-free.
        let bf = Rectifier::battery_free();
        let bc = Rectifier::battery_charging();
        let p = Dbm(-18.5); // between the two sensitivities
        assert!(bc.output_power(p).0 > 4.0 * bf.output_power(p).0);
    }

    #[test]
    fn output_at_4dbm_near_150uw() {
        let r = Rectifier::battery_free();
        let out = r.output_power(Dbm(4.0)).0;
        assert!((130.0..=170.0).contains(&out), "out {out} µW");
    }

    #[test]
    fn output_monotone_in_input() {
        let r = Rectifier::battery_charging();
        let mut prev = -1.0;
        for tenth_db in -220..=60 {
            let out = r.output_power(Dbm(tenth_db as f64 / 10.0)).0;
            assert!(out >= prev);
            prev = out;
        }
    }

    #[test]
    fn efficiency_is_sane() {
        let r = Rectifier::battery_free();
        for dbm in [-10.0, -4.0, 0.0, 4.0] {
            let e = r.efficiency(Dbm(dbm));
            assert!(e > 0.0 && e < 1.0, "efficiency {e} at {dbm} dBm");
        }
    }

    #[test]
    fn open_voltage_reaches_threshold_at_sensitivity() {
        // At −17.8 dBm (≈16.6 µW) the open voltage must exceed the Seiko's
        // 300 mV cold-start threshold — that is what defines the sensitivity.
        let r = Rectifier::battery_free();
        let v = r.open_voltage(r.sensitivity);
        assert!((0.30..0.45).contains(&v), "v {v}");
    }

    #[test]
    fn node_charges_during_packets_and_leaks_in_silence() {
        let mut n = RectifierNode::fig1_default();
        // 500 µs of RF at a target of 0.25 V.
        for _ in 0..50 {
            n.step(SimDuration::from_micros(10), 0.25);
        }
        let peak = n.volts;
        assert!(peak > 0.2, "peak {peak}");
        // 1 ms of silence: leaks but does not vanish instantly.
        for _ in 0..100 {
            n.step(SimDuration::from_micros(10), 0.0);
        }
        assert!(
            n.volts < 0.6 * peak && n.volts > 0.05 * peak,
            "v {}",
            n.volts
        );
    }

    #[test]
    fn node_never_exceeds_target() {
        let mut n = RectifierNode::fig1_default();
        for _ in 0..10_000 {
            n.step(SimDuration::from_micros(10), 0.3);
        }
        assert!(n.volts <= 0.3 + 1e-9);
    }
}
