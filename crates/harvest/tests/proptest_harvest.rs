//! Property tests for the analog models.

use powifi_harvest::{Capacitor, MatchingNetwork, Rectifier, RectifierNode};
use powifi_rf::{Dbm, Hertz, Joules};
use powifi_sim::SimDuration;
use proptest::prelude::*;

proptest! {
    /// The matching network is passive: it can never reflect more power
    /// than arrives (|Γ| ≤ 1 ⇒ mismatch factor within [0, 1]).
    #[test]
    fn matching_network_is_passive(f_mhz in 100f64..10_000.0) {
        for n in [MatchingNetwork::battery_free(), MatchingNetwork::battery_charging()] {
            let m = n.mismatch_factor(Hertz::from_mhz(f_mhz));
            prop_assert!((0.0..=1.0).contains(&m), "mismatch {m} at {f_mhz} MHz");
            prop_assert!(n.return_loss(Hertz::from_mhz(f_mhz)).0 <= 1e-9);
        }
    }

    /// Rectifier output power is monotone in input power and never exceeds
    /// the input (passivity).
    #[test]
    fn rectifier_monotone_and_passive(p in -30f64..20.0, delta in 0.01f64..10.0) {
        for r in [Rectifier::battery_free(), Rectifier::battery_charging()] {
            let lo = r.output_power(Dbm(p)).0;
            let hi = r.output_power(Dbm(p + delta)).0;
            prop_assert!(hi >= lo);
            prop_assert!(lo <= Dbm(p).to_uw().0 + 1e-12, "gain from nothing at {p} dBm");
        }
    }

    /// Capacitor charge/discharge conserves energy exactly.
    #[test]
    fn capacitor_energy_conservation(c_uf in 1f64..10_000.0, e1 in 0f64..1e-2, e2_frac in 0f64..1.0) {
        let mut cap = Capacitor::new(c_uf * 1e-6, f64::INFINITY);
        cap.charge(Joules(e1));
        prop_assert!((cap.energy().0 - e1).abs() < 1e-12 + 1e-9 * e1);
        let e2 = e1 * e2_frac;
        prop_assert!(cap.discharge(Joules(e2)));
        prop_assert!((cap.energy().0 - (e1 - e2)).abs() < 1e-12 + 1e-9 * e1);
    }

    /// The rectifier node voltage never overshoots its drive and never goes
    /// negative, for any step pattern.
    #[test]
    fn node_voltage_bounded(steps in prop::collection::vec((0f64..2.0, 1u64..2000), 1..200)) {
        let mut node = RectifierNode::fig1_default();
        let vmax = steps.iter().map(|&(v, _)| v).fold(0.0f64, f64::max);
        for &(v, us) in &steps {
            node.step(SimDuration::from_micros(us), v);
            prop_assert!(node.volts >= -1e-12);
            prop_assert!(node.volts <= vmax + 1e-9);
        }
    }

    /// Capacitor leakage is monotone: more time leaks more charge.
    #[test]
    fn leak_monotone(ms1 in 1u64..1000, extra in 1u64..1000) {
        let mut a = Capacitor::new(1e-6, 1e6);
        a.charge(Joules(0.5e-6));
        let mut b = a;
        a.leak(SimDuration::from_millis(ms1));
        b.leak(SimDuration::from_millis(ms1 + extra));
        prop_assert!(b.volts < a.volts);
    }
}
