// Fixture: R5 must fire — bare float→int casts.
pub fn to_ns(us: f64, rate_mbps: f64) -> (u64, u32) {
    let a = (us * 1_000.0) as u64;
    let b = 2.5 as u32;
    let _ = a;
    (us as u64, b)
}
