// Fixture: R5 must stay quiet — rounding helpers and int→int casts.
pub fn to_ns(us: f64, n: u32) -> (u64, u64) {
    let a = (us * 1_000.0).round() as u64;
    let b = n as u64;
    (a, b)
}
