// Fixture: R7 must fire — `Instant` wall-clock timing in a simulation crate.
use std::time::Instant;

pub fn timed_step(world: &mut World) -> u128 {
    let start = Instant::now();
    world.step();
    start.elapsed().as_nanos()
}
