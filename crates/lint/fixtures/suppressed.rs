// Fixture: every violation here carries a justified allow — zero findings.
use std::collections::HashMap; // powifi-lint: allow(R1) — fixture exercising same-line allow

// powifi-lint: allow(unwrap) — fixture exercising slug + standalone comment
// spanning multiple lines before the guarded statement.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // powifi-lint: allow(R3) — fixture
}

pub fn exact(x: f64) -> bool {
    // powifi-lint: allow(float-eq) — fixture: sentinel compare
    x == -1.0
}

pub fn audit(q: &mut Queue) {
    // powifi-lint: allow(R8) — fixture: one closure per run, cold path
    q.schedule_repeating(START, PERIOD, |w, _| w.audit());
}

pub fn replay_probe(rng: &mut SimRng) -> SimRng {
    // powifi-lint: allow(rng-stream-discipline) — fixture: deliberate twin
    // stream for a divergence probe
    rng.clone()
}

pub fn dispatch_legacy(w: &mut World, ev: MacEvent) {
    match ev {
        MacEvent::ArbFire(m) => fire(w, m),
        // powifi-lint: allow(R11) — fixture: legacy kinds routed elsewhere
        _ => {}
    }
}

pub fn peek(p: *const u8) -> u8 {
    // powifi-lint: allow(unsafe-in-sim) — fixture: p is checked non-null
    unsafe { core::ptr::read(p) }
}
