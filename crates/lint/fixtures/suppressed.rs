// Fixture: every violation here carries a justified allow — zero findings.
use std::collections::HashMap; // powifi-lint: allow(R1) — fixture exercising same-line allow

// powifi-lint: allow(unwrap) — fixture exercising slug + standalone comment
// spanning multiple lines before the guarded statement.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // powifi-lint: allow(R3) — fixture
}

pub fn exact(x: f64) -> bool {
    // powifi-lint: allow(float-eq) — fixture: sentinel compare
    x == -1.0
}

pub fn audit(q: &mut Queue) {
    // powifi-lint: allow(R8) — fixture: one closure per run, cold path
    q.schedule_repeating(START, PERIOD, |w, _| w.audit());
}
