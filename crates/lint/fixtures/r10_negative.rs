// Fixture: disciplined RNG streams — everything derives from the run's
// root seed, and seeding happens only inside construction helpers.

pub fn run(seed: u64) {
    let root = SimRng::from_seed(seed);
    let mac = root.derive("mac");
    let medium = root.derive_idx("medium", 3);
    let _ = (mac, medium);
}

pub fn build_shard(world: &mut World, m: MediumId, root: &SimRng) {
    world.seed_medium_rng(m, root.derive_idx("city-medium", 7));
}

pub fn with_harvest(world: &mut World, root: &SimRng) {
    world.seed_harvest_rng(root.derive("harvest"));
}

pub fn snapshot(cfg: &Config) -> Config {
    // Cloning non-RNG values is not stream duplication.
    cfg.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seeds_are_fine_in_tests() {
        let r = SimRng::from_seed(42);
        let _ = r;
    }
}
