// Fixture: safe code only — zero R12 findings. Mentions of the word in
// strings and comments ("unsafe") do not count, nor do test-only blocks.

pub fn describe() -> &'static str {
    "nothing unsafe here"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_poke_at_memory() {
        let x = 1u8;
        let p = &x as *const u8;
        let y = unsafe { *p };
        assert_eq!(y, 1);
    }
}
