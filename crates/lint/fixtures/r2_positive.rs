// Fixture: R2 must fire — wall clock and ambient RNG outside crates/bench.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let start = Instant::now();
    let _ = SystemTime::now();
    let mut rng = rand::thread_rng();
    start.elapsed().as_nanos()
}
