// Fixture: R14 must stay quiet — checkpoint state as a pure function of
// simulation state (sim time, counters, deterministic f64 bits). Wall-time
// provenance, when wanted, belongs in the run manifest outside the hashed
// state tree.
pub fn save_run(run: &Run) -> Value {
    Value::map()
        .field("now_ns", Value::U64(run.queue.now().nanos()))
        .field("executed", Value::U64(run.queue.executed()))
        .field("harvested_j", Value::f64(run.harvester.harvested.0))
        .build()
}
