// Fixture: R6 must stay quiet — typed emission and unrelated installs.
use powifi_sim::obs::trace;
use powifi_sim::SimTime;

pub fn record(now: SimTime, iface: u32, qdepth: u32) {
    trace::emit(
        now,
        trace::TraceEvent::InjectorGate {
            iface,
            open: true,
            qdepth,
        },
    );
    let _on = trace::enabled();
}

pub fn audit(q: &mut powifi_sim::EventQueue<()>) {
    conformance::install_audit(q);
}
