// Fixture: zero R13 findings — simulation code that wants telemetry on
// the wire hands records to the obs::stream egress and never names a
// socket type. The word in strings/comments does not count, nor do
// test-only blocks (integration harnesses may open loopback sockets).

pub fn emit_epoch(t: powifi_sim::SimTime) {
    // "TcpStream" in a comment is documentation, not I/O.
    powifi_sim::obs::stream::epoch_mark(t);
}

pub fn describe() -> &'static str {
    "egress rides a TcpStream owned by obs::stream, not by this layer"
}

#[cfg(test)]
mod tests {
    #[test]
    fn loopback_harness_may_open_sockets() {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(l.local_addr().is_ok());
    }
}
