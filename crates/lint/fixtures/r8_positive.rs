// Fixture: R8 must fire — boxed-closure scheduling on the hot path. Each
// call below heap-allocates one handler per event; under saturation that is
// one malloc per frame, per retry, per tick.
pub type Callback = Box<dyn FnMut(&mut World)>;

pub fn arm_timers(world: &mut World, q: &mut Queue) {
    q.schedule_at(world.now, |w, _| w.fire());
    q.schedule_in(BACKOFF, move |w, q| retry(w, q));
    q.schedule_repeating(START, TICK, |w, _| w.poll());
    q.schedule_repeating_while(START, TICK, |w, _| w.alive());
}
