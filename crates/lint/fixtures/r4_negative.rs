// Fixture: R4 must stay quiet — integer comparisons and epsilon checks.
pub fn depleted(energy_ns: u64, acc: f64) -> bool {
    energy_ns == 0 || acc.abs() < 1e-12
}
