// Fixture: R1 must fire — hash collections in a simulation crate.
use std::collections::{HashMap, HashSet};

pub struct Registry {
    by_id: HashMap<u32, String>,
    seen: HashSet<u32>,
}
