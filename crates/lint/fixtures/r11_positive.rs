// Fixture: R11 non-exhaustive-dispatch violations — wildcard arms that
// would silently swallow a newly added event kind.

pub fn dispatch_mac(w: &mut World, ev: MacEvent) {
    match ev {
        MacEvent::ArbFire(m) => arb_fire(w, m),
        MacEvent::TxDone { medium, .. } => tx_done(w, medium),
        _ => {}
    }
}

pub fn dispatch_stack(w: &mut World, ev: Stacked) {
    match ev {
        Stacked::Mac(m) => dispatch_mac(w, m),
        _ if w.lenient => {}
        Stacked::Net(n) => dispatch_net(w, n),
    }
}
