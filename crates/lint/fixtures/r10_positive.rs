// Fixture: R10 rng-stream-discipline violations — rogue streams that
// ignore the experiment seed or sever replay mid-run.

pub fn jitter_stream() -> SimRng {
    SimRng::from_seed(1234)
}

pub fn raw_generator() {
    let r = StdRng::seed_from_u64(7);
    let s = SmallRng::from_seed(SEED_BYTES);
    let _ = (r, s);
}

pub fn fork_stream(rng: &mut SimRng) -> SimRng {
    rng.clone()
}

pub fn rearm(rng: &mut SimRng) {
    rng.reseed(99);
}

pub fn tick_medium(world: &mut World, m: MediumId, root: &SimRng) {
    world.seed_medium_rng(m, root.derive_idx("city-medium", 3));
}
