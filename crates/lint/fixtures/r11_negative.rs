// Fixture: exhaustive event dispatch, plus wildcard arms in matches that
// are not event dispatch — zero R11 findings.

pub fn dispatch_mac(w: &mut World, ev: MacEvent) {
    match ev {
        MacEvent::ArbFire(m) => arb_fire(w, m),
        MacEvent::TxDone { medium, .. } => tx_done(w, medium),
        MacEvent::Backoff(slot) => backoff(w, slot),
    }
}

pub fn frame_class(kind: FrameKind) -> usize {
    // Non-event matches may classify with wildcards freely.
    match kind {
        FrameKind::Power => 1,
        _ => 0,
    }
}

pub fn classify(ev: Stacked) -> u8 {
    // `ev` scrutinee outside a dispatch fn is not an event match.
    match ev {
        Stacked::Mac(_) => 1,
        _ => 0,
    }
}
