// Fixture: R13 socket-outside-stream violations — a simulation layer
// opening its own network connections instead of emitting through the
// obs::stream egress. Alias renames do not hide the type.

use std::net::TcpStream as Wire;
use std::net::{TcpListener, UdpSocket};

pub struct RogueUplink {
    conn: Wire,
}

pub fn phone_home(addr: &str) -> std::io::Result<RogueUplink> {
    let conn = Wire::connect(addr)?;
    Ok(RogueUplink { conn })
}

pub fn listen_for_peers(addr: &str) -> std::io::Result<TcpListener> {
    TcpListener::bind(addr)
}

pub fn beacon(addr: &str) -> std::io::Result<UdpSocket> {
    UdpSocket::bind(addr)
}
