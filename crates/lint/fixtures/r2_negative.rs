// Fixture: R2 must stay quiet — simulation time and a seeded RNG.
use powifi_sim::{SimRng, SimTime};

pub fn stamp(now: SimTime, seed: u64) -> u64 {
    let mut rng = SimRng::seed_from(seed);
    now.as_nanos() ^ rng.next_u64()
}
