// Fixture: R7 must stay quiet — time attribution goes through profiler
// spans, which cost sim time deterministically and add wall time only when
// the bench harness opts in.
use powifi_sim::obs::prof;

pub fn timed_step(world: &mut World, dt: powifi_sim::SimDuration) {
    let span = prof::span("mac.step");
    world.step();
    span.attr(dt);
}
