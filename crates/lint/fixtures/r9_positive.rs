// Fixture: R9 shard-isolation violations — a city worker reaching around
// the export-table protocol. Scanned as crates/deploy/src/city/runtime.rs.
use std::cell::RefCell;
use std::sync::Mutex;

static mut EPOCH_TALLY: u64 = 0;
static SHARED_TABLE: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn run_city(jobs: usize) {
    let scratch: RefCell<Vec<u64>> = RefCell::new(Vec::new());
    std::thread::scope(|s| {
        for _t in 0..jobs {
            s.spawn(|| {
                let mut tbl = SHARED_TABLE.lock().unwrap();
                tbl[0] += 1;
                let mine = scratch;
                unsafe {
                    EPOCH_TALLY += 1;
                }
            });
        }
    });
}
