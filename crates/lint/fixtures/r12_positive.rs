// Fixture: R12 unsafe-in-sim violations — unsafe blocks and fns in a
// simulation crate.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { core::ptr::read(p) }
}

pub unsafe fn transmute_state(bits: u64) -> State {
    core::mem::transmute(bits)
}
