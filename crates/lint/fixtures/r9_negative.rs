// Fixture: the blessed export-table protocol — workers exchange state only
// through the free lock() helper and barriers. Zero R9 findings when
// scanned as crates/deploy/src/city/runtime.rs.
use std::sync::{Barrier, Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

pub fn run_city(jobs: usize) {
    let table: Mutex<Vec<u64>> = Mutex::new(vec![0; jobs]);
    let barrier = Barrier::new(jobs);
    std::thread::scope(|s| {
        for t in 0..jobs {
            s.spawn(|| {
                let mut epochs = 0u64;
                {
                    let mut tbl = lock(&table);
                    tbl[t] += 1;
                }
                barrier.wait();
                epochs += 1;
                epochs
            });
        }
    });
}
