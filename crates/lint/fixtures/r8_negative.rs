// Fixture: R8 must stay quiet — the allocation-free typed path. Events are
// plain enum values posted by value; the world's `Dispatch` impl routes
// them, so nothing is boxed per event.
pub fn arm_timers(world: &mut World, q: &mut Queue) {
    q.post_at(world.now, MacEvent::ArbFire { sta: world.sta });
    q.post_in(BACKOFF, MacEvent::TxEnd { sta: world.sta });
    // Unrelated identifiers that merely resemble the scheduling API.
    world.schedule.push(SLOT);
    let boxed = Box::new(Payload::default());
    let sink: Box<dyn Sink> = make_sink();
    let _ = (boxed, sink);
}
