// Fixture: R3 must fire — unwrap/expect in library code.
pub fn head(xs: &[u32]) -> u32 {
    let first = xs.first().unwrap();
    let last = xs.last().expect("non-empty");
    first + last
}
