// Fixture: R6 must fire — trace sinks built/installed outside obs/bench.
use powifi_sim::obs::trace::{JsonlSink, RingSink};

pub fn capture(path: &std::path::Path) {
    let ring = RingSink::unbounded();
    let prev = powifi_sim::obs::trace::install(Box::new(ring));
    let _ = prev;
    let _file = JsonlSink::create(path);
    let _quiet = powifi_sim::obs::trace::NullSink;
}
