// Fixture: R4 must fire — equality against float literals.
pub fn depleted(energy_j: f64, acc: f64) -> bool {
    energy_j == 0.0 || acc != -1.5
}
