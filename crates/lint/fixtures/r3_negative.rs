// Fixture: R3 must stay quiet — typed errors, defaults, and test-only
// unwraps.
pub fn head(xs: &[u32]) -> Option<u32> {
    let first = xs.first()?;
    let last = xs.last().copied().unwrap_or_default();
    Some(first + last)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_ok_in_tests() {
        super::head(&[1, 2]).unwrap();
    }
}
