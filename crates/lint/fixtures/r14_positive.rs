// Fixture: R14 must fire — wall-clock sources in checkpoint-serialization
// code. Scanned as `crates/bench/src/ckpt_run.rs`, where R2/R7 are exempt
// and R14 is the only guard.
use std::time::{SystemTime, UNIX_EPOCH};

pub fn save_run(run: &Run) -> Value {
    let stamp = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let t0 = Instant::now();
    Value::map()
        .field("saved_at_secs", Value::U64(stamp))
        .field("elapsed_ns", Value::U64(t0.elapsed().as_nanos() as u64))
        .build()
}
