// Fixture: R1 must stay quiet — sorted collections, hash names only in
// strings/comments/tests.
use std::collections::{BTreeMap, BTreeSet};

pub struct Registry {
    by_id: BTreeMap<u32, String>,
    seen: BTreeSet<u32>,
}

pub fn describe() -> &'static str {
    "a HashMap would be nondeterministic" // HashMap in comment is fine
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_ok_in_tests() {
        let _ = HashSet::<u8>::new();
    }
}
