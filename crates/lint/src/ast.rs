//! A lightweight hand-written parser over the lexer's token stream — the
//! "engine v2" behind the flow-aware rules (R9–R12) and the AST upgrades to
//! R1–R8.
//!
//! This is not a full Rust grammar. It recovers exactly the structure the
//! rule catalogue reasons about:
//!
//! * the **item tree** (fns, impls, mods, traits, statics, uses, …) with
//!   attributes, so `#[cfg(test)]`/`#[test]` scoping and `static mut`
//!   detection are structural rather than token-window heuristics;
//! * **`use` resolution** (`use a::b::{C, D as E}`) so a rule can see
//!   through renames (`use std::collections::HashMap as Map`);
//! * per-fn **local bindings** (name, declared type, initializer span) and
//!   parameters, giving rules a little typed-expression context;
//! * **closures** with parameter lists, body spans, and enough provenance
//!   to compute captures and spot worker closures handed to `spawn`;
//! * **`match` expressions** with scrutinee and per-arm pattern spans, so
//!   exhaustive-dispatch rules can flag wildcard arms.
//!
//! The parser is *permissive*: malformed or exotic input degrades into
//! `Other` items or skipped spans, never a panic — the engine round-trip
//! test in `tests/engine.rs` runs it over every first-party file to pin
//! that. Macro invocation bodies are left in the token stream (token-level
//! rules still see them) but are not structured.

use std::collections::BTreeMap;

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// Half-open token index range `[start, end)`.
pub type Span = (usize, usize);

/// What kind of item a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (index into [`FileAst::fns`]).
    Fn(usize),
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `impl` block.
    Impl,
    /// `mod` (inline or declaration).
    Mod,
    /// `static` (index into [`FileAst::statics`]).
    Static(usize),
    /// `const` item.
    Const,
    /// `use` declaration.
    Use,
    /// `type` alias.
    TypeAlias,
    /// Macro definition or item-level macro invocation.
    Macro,
    /// `extern` crate/block.
    Extern,
    /// Anything the parser stepped over to recover.
    Other,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Kind (with payload index for fns/statics).
    pub kind: ItemKind,
    /// Declared name (`""` for impls and recovery nodes).
    pub name: String,
    /// 1-based line of the item's first token (after attributes).
    pub line: u32,
    /// Token span covering the whole item including attributes.
    pub tokens: Span,
    /// Attributes, normalized by concatenating token texts
    /// (`#[cfg(test)]` → `"cfg(test)"`).
    pub attrs: Vec<String>,
    /// True when this item (or an ancestor) carries `#[test]`/`#[cfg(test)]`.
    pub is_test: bool,
    /// Nested items (mods, impls, traits).
    pub children: Vec<Item>,
}

/// A `static` declaration.
#[derive(Debug, Clone)]
pub struct StaticInfo {
    /// Item name (`UPPER_SNAKE` by convention).
    pub name: String,
    /// `static mut`?
    pub is_mut: bool,
    /// Declared type, normalized by concatenating token texts.
    pub ty: String,
    /// 1-based line of the `static` keyword.
    pub line: u32,
    /// 1-based column of the `static` keyword.
    pub col: u32,
    /// Declared under `#[cfg(test)]`/`#[test]`?
    pub is_test: bool,
}

impl StaticInfo {
    /// Does the declared type carry interior mutability (so a shared
    /// reference still permits writes)?
    pub fn interior_mutable(&self) -> bool {
        [
            "Mutex<",
            "RwLock<",
            "RefCell<",
            "Cell<",
            "UnsafeCell<",
            "Atomic",
        ]
        .iter()
        .any(|t| self.ty.contains(t))
    }
}

/// One name introduced by a `use` declaration.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name visible in this file (the alias, if `as` was used).
    pub name: String,
    /// Full normalized path (`std::collections::HashMap`).
    pub path: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// Declared under a test region?
    pub is_test: bool,
}

/// A local binding (`let` statement or fn parameter).
#[derive(Debug, Clone)]
pub struct Local {
    /// Bound name (one entry per name for tuple/struct patterns).
    pub name: String,
    /// Declared type, normalized by concatenating token texts (`""` when
    /// inferred).
    pub ty: String,
    /// Initializer token span (empty for parameters / uninitialized lets).
    pub init: Span,
    /// 1-based line of the binding.
    pub line: u32,
    /// Token index of the `let` keyword (or the parameter name).
    pub tok: usize,
}

/// A closure expression.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Span from `move`/`|` through the end of the body.
    pub tokens: Span,
    /// Body span (block contents or the trailing expression).
    pub body: Span,
    /// Parameter names.
    pub params: Vec<String>,
    /// `move` closure?
    pub is_move: bool,
    /// 1-based line of the opening `|`.
    pub line: u32,
    /// True when the closure is the first argument of a call to an ident
    /// named `spawn` (`s.spawn(move || …)`, `thread::spawn(|| …)`).
    pub spawned: bool,
}

/// One arm of a `match`.
#[derive(Debug, Clone)]
pub struct Arm {
    /// Pattern token span (includes any `if` guard).
    pub pat: Span,
    /// 1-based line of the pattern's first token.
    pub line: u32,
    /// 1-based column of the pattern's first token.
    pub col: u32,
}

/// A `match` expression.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Scrutinee token span.
    pub scrutinee: Span,
    /// Arms in source order.
    pub arms: Vec<Arm>,
    /// 1-based line of the `match` keyword.
    pub line: u32,
}

/// A parsed function (free, method, or trait default).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token span (inside the braces), empty for bodyless decls.
    pub body: Span,
    /// Parameters.
    pub params: Vec<Local>,
    /// `let` bindings anywhere in the body (closure-internal ones
    /// included; filter by token index against a closure's span).
    pub locals: Vec<Local>,
    /// Closures anywhere in the body, in source order.
    pub closures: Vec<Closure>,
    /// `match` expressions anywhere in the body, in source order.
    pub matches: Vec<MatchExpr>,
    /// Inside a test region (own or inherited attribute)?
    pub is_test: bool,
}

/// The parse result for one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// The token stream the tree indexes into.
    pub tokens: Vec<Token>,
    /// Comments (for suppression parsing).
    pub comments: Vec<Comment>,
    /// Top-level item tree.
    pub items: Vec<Item>,
    /// All fns, flattened in source order.
    pub fns: Vec<FnInfo>,
    /// All statics, flattened in source order.
    pub statics: Vec<StaticInfo>,
    /// All `use` bindings, flattened in source order.
    pub uses: Vec<UseDecl>,
    /// Inner attributes (`#![…]`) at any level, normalized.
    pub inner_attrs: Vec<String>,
}

impl FileAst {
    /// Resolve a bare name through this file's `use` declarations.
    /// Returns the full path when the name was imported (test-region
    /// imports resolve too — rules scope by *use site*).
    pub fn resolve_use(&self, name: &str) -> Option<&str> {
        self.uses
            .iter()
            .find(|u| u.name == name)
            .map(|u| u.path.as_str())
    }

    /// The innermost fn whose body contains token index `tok`.
    pub fn enclosing_fn(&self, tok: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= tok && tok < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Workspace-wide symbol index: what the rules need to reason across
/// files. Built once per run from every parsed file.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Non-test statics by name (last declaration wins on collision —
    /// adequate for the flat `UPPER_SNAKE` namespace this workspace uses).
    pub statics: BTreeMap<String, StaticSym>,
    /// Non-test enum names.
    pub enums: BTreeMap<String, String>,
}

/// A static as seen by the index.
#[derive(Debug, Clone)]
pub struct StaticSym {
    /// Repo-relative path of the declaring file.
    pub path: String,
    /// `static mut`?
    pub is_mut: bool,
    /// Interior-mutable type (`Mutex`, `RefCell`, `Atomic*`, …)?
    pub interior_mutable: bool,
}

impl SymbolIndex {
    /// Fold one parsed file into the index.
    pub fn add_file(&mut self, rel: &str, ast: &FileAst) {
        for s in &ast.statics {
            if s.is_test {
                continue;
            }
            self.statics.insert(
                s.name.clone(),
                StaticSym {
                    path: rel.to_string(),
                    is_mut: s.is_mut,
                    interior_mutable: s.interior_mutable(),
                },
            );
        }
        collect_enums(&ast.items, rel, &mut self.enums);
    }
}

fn collect_enums(items: &[Item], rel: &str, out: &mut BTreeMap<String, String>) {
    for it in items {
        if it.kind == ItemKind::Enum && !it.is_test {
            out.insert(it.name.clone(), rel.to_string());
        }
        collect_enums(&it.children, rel, out);
    }
}

const KEYWORDS: [&str; 36] = [
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while",
];

/// Is `s` a Rust keyword (as far as capture analysis cares)?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Parse a lexed file into a [`FileAst`]. Never panics; unparseable spans
/// become `Other` items or are skipped.
pub fn parse(lexed: Lexed) -> FileAst {
    let mut ast = FileAst {
        tokens: lexed.tokens,
        comments: lexed.comments,
        ..FileAst::default()
    };
    let end = ast.tokens.len();
    let mut p = Parser {
        out_fns: Vec::new(),
        out_statics: Vec::new(),
        out_uses: Vec::new(),
        inner_attrs: Vec::new(),
    };
    let items = p.items(&ast.tokens, 0, end, false);
    ast.items = items;
    ast.fns = p.out_fns;
    ast.statics = p.out_statics;
    ast.uses = p.out_uses;
    ast.inner_attrs = p.inner_attrs;
    ast
}

struct Parser {
    out_fns: Vec<FnInfo>,
    out_statics: Vec<StaticInfo>,
    out_uses: Vec<UseDecl>,
    inner_attrs: Vec<String>,
}

/// Concatenate token texts over a span (type/attr normalization).
fn join(toks: &[Token], span: Span) -> String {
    let mut s = String::new();
    for t in &toks[span.0..span.1.min(toks.len())] {
        s.push_str(&t.text);
    }
    s
}

/// Index just past the `]`/`)`/`}` matching the opener at `open`.
/// Returns `end` when unclosed (error recovery).
fn match_delim(toks: &[Token], open: usize, end: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return (open + 1).min(end),
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        let t = toks[i].text.as_str();
        if t == o {
            depth += 1;
        } else if t == c {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Scan from `i` to the first token in `stops` at bracket depth 0
/// (counting `(`/`[`/`{`). Returns the stop index (or `end`).
fn scan_to(toks: &[Token], i: usize, end: usize, stops: &[&str]) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        let t = toks[j].text.as_str();
        if depth == 0 && stops.contains(&t) {
            return j;
        }
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
        j += 1;
    }
    end
}

fn is_test_attr(attr: &str) -> bool {
    attr == "test" || attr.ends_with("::test") || attr.starts_with("cfg(test")
}

impl Parser {
    /// Parse items in `[i, end)`. `inherited_test` marks everything inside
    /// a `#[cfg(test)]` ancestor.
    fn items(
        &mut self,
        toks: &[Token],
        mut i: usize,
        end: usize,
        inherited_test: bool,
    ) -> Vec<Item> {
        let mut items = Vec::new();
        while i < end {
            let start = i;
            // Attributes.
            let mut attrs = Vec::new();
            while i + 1 < end && toks[i].text == "#" {
                if toks[i + 1].text == "[" {
                    let close = match_delim(toks, i + 1, end);
                    attrs.push(join(toks, (i + 2, close.saturating_sub(1))));
                    i = close;
                } else if toks[i + 1].text == "!" && i + 2 < end && toks[i + 2].text == "[" {
                    let close = match_delim(toks, i + 2, end);
                    self.inner_attrs
                        .push(join(toks, (i + 3, close.saturating_sub(1))));
                    i = close;
                } else {
                    break;
                }
            }
            if i >= end {
                break;
            }
            let is_test = inherited_test || attrs.iter().any(|a| is_test_attr(a));
            // Modifiers: `pub`, `pub(crate)`, `unsafe`, `async`, `default`,
            // `const fn`, `extern "C" fn`.
            let mut j = i;
            loop {
                let t = toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
                match t {
                    "pub" => {
                        j += 1;
                        if toks.get(j).map(|t| t.text == "(").unwrap_or(false) {
                            j = match_delim(toks, j, end);
                        }
                    }
                    "unsafe" | "async" | "default" => j += 1,
                    "const" if toks.get(j + 1).map(|t| t.text == "fn").unwrap_or(false) => j += 1,
                    "extern"
                        if toks
                            .get(j + 1)
                            .map(|t| t.kind == TokKind::Str)
                            .unwrap_or(false)
                            && toks.get(j + 2).map(|t| t.text == "fn").unwrap_or(false) =>
                    {
                        j += 2
                    }
                    _ => break,
                }
            }
            let head = toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
            let line = toks.get(j).map(|t| t.line).unwrap_or(0);
            let item = match head {
                "fn" => {
                    let (item, next) = self.parse_fn(toks, (start, end), j, attrs, is_test, line);
                    i = next;
                    item
                }
                "struct" | "enum" | "union" | "trait" => {
                    let kind = match head {
                        "struct" => ItemKind::Struct,
                        "enum" => ItemKind::Enum,
                        "union" => ItemKind::Union,
                        _ => ItemKind::Trait,
                    };
                    let name = ident_after(toks, j + 1, end);
                    let stop = scan_to(toks, j + 1, end, &["{", ";"]);
                    let (children, next) = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false)
                    {
                        let close = match_delim(toks, stop, end);
                        let kids = if kind == ItemKind::Trait {
                            self.items(toks, stop + 1, close.saturating_sub(1), is_test)
                        } else {
                            Vec::new()
                        };
                        (kids, close)
                    } else {
                        (Vec::new(), (stop + 1).min(end))
                    };
                    i = next;
                    Item {
                        kind,
                        name,
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children,
                    }
                }
                "impl" => {
                    let stop = scan_to(toks, j + 1, end, &["{", ";"]);
                    let (children, next) = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false)
                    {
                        let close = match_delim(toks, stop, end);
                        (
                            self.items(toks, stop + 1, close.saturating_sub(1), is_test),
                            close,
                        )
                    } else {
                        (Vec::new(), (stop + 1).min(end))
                    };
                    i = next;
                    Item {
                        kind: ItemKind::Impl,
                        name: String::new(),
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children,
                    }
                }
                "mod" => {
                    let name = ident_after(toks, j + 1, end);
                    let stop = scan_to(toks, j + 1, end, &["{", ";"]);
                    let (children, next) = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false)
                    {
                        let close = match_delim(toks, stop, end);
                        (
                            self.items(toks, stop + 1, close.saturating_sub(1), is_test),
                            close,
                        )
                    } else {
                        (Vec::new(), (stop + 1).min(end))
                    };
                    i = next;
                    Item {
                        kind: ItemKind::Mod,
                        name,
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children,
                    }
                }
                "static" => {
                    let (item, next) = self.parse_static(toks, start, j, end, attrs, is_test);
                    i = next;
                    item
                }
                "const" => {
                    let name = ident_after(toks, j + 1, end);
                    let stop = scan_to(toks, j + 1, end, &[";"]);
                    i = (stop + 1).min(end);
                    Item {
                        kind: ItemKind::Const,
                        name,
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children: Vec::new(),
                    }
                }
                "use" => {
                    let stop = scan_to(toks, j + 1, end, &[";"]);
                    self.parse_use(toks, j + 1, stop, is_test);
                    i = (stop + 1).min(end);
                    Item {
                        kind: ItemKind::Use,
                        name: String::new(),
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children: Vec::new(),
                    }
                }
                "type" => {
                    let name = ident_after(toks, j + 1, end);
                    let stop = scan_to(toks, j + 1, end, &[";"]);
                    i = (stop + 1).min(end);
                    Item {
                        kind: ItemKind::TypeAlias,
                        name,
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children: Vec::new(),
                    }
                }
                "extern" => {
                    // `extern crate name;` or `extern "C" { … }`.
                    let stop = scan_to(toks, j + 1, end, &["{", ";"]);
                    i = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false) {
                        match_delim(toks, stop, end)
                    } else {
                        (stop + 1).min(end)
                    };
                    Item {
                        kind: ItemKind::Extern,
                        name: String::new(),
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children: Vec::new(),
                    }
                }
                "macro_rules" => {
                    let name = ident_after(toks, j + 2, end); // skip `!`
                    let open = scan_to(toks, j + 1, end, &["{", "(", "["]);
                    i = match_delim(toks, open.min(end.saturating_sub(1)), end);
                    Item {
                        kind: ItemKind::Macro,
                        name,
                        line,
                        tokens: (start, i),
                        attrs,
                        is_test,
                        children: Vec::new(),
                    }
                }
                _ => {
                    // Item-level macro invocation (`thread_local! { … }`) or
                    // unknown input: skip a path, a `!`, one delimited group
                    // or to the next `;`.
                    let mut k = j;
                    let mut name = String::new();
                    while k < end
                        && (toks[k].kind == TokKind::Ident || toks[k].text == "::")
                        && toks[k].text != "!"
                    {
                        if toks[k].kind == TokKind::Ident {
                            name = toks[k].text.clone();
                        }
                        k += 1;
                    }
                    if toks.get(k).map(|t| t.text == "!").unwrap_or(false) && k > j {
                        let open = scan_to(toks, k + 1, end, &["{", "(", "["]);
                        if open < end {
                            let close = match_delim(toks, open, end);
                            i = if toks[open].text == "{" {
                                close
                            } else {
                                // `foo!(…);`
                                let semi = scan_to(toks, close, end, &[";"]);
                                (semi + 1).min(end)
                            };
                        } else {
                            i = end;
                        }
                        Item {
                            kind: ItemKind::Macro,
                            name,
                            line,
                            tokens: (start, i),
                            attrs,
                            is_test,
                            children: Vec::new(),
                        }
                    } else {
                        // Recovery: swallow to the next `;` or block.
                        let stop = scan_to(toks, j, end, &["{", ";"]);
                        i = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false) {
                            match_delim(toks, stop, end)
                        } else {
                            (stop + 1).min(end)
                        };
                        if i <= start {
                            i = start + 1; // guarantee progress
                        }
                        Item {
                            kind: ItemKind::Other,
                            name: String::new(),
                            line,
                            tokens: (start, i),
                            attrs,
                            is_test,
                            children: Vec::new(),
                        }
                    }
                }
            };
            items.push(item);
        }
        items
    }

    fn parse_static(
        &mut self,
        toks: &[Token],
        start: usize,
        kw: usize,
        end: usize,
        attrs: Vec<String>,
        is_test: bool,
    ) -> (Item, usize) {
        let mut j = kw + 1;
        let is_mut = toks.get(j).map(|t| t.text == "mut").unwrap_or(false);
        if is_mut {
            j += 1;
        }
        let name = ident_after(toks, j, end);
        let colon = scan_to(toks, j, end, &[":", ";", "="]);
        let ty_end = if toks.get(colon).map(|t| t.text == ":").unwrap_or(false) {
            scan_to_type_end(toks, colon + 1, end)
        } else {
            colon
        };
        let ty = if toks.get(colon).map(|t| t.text == ":").unwrap_or(false) {
            join(toks, (colon + 1, ty_end))
        } else {
            String::new()
        };
        let semi = scan_to(toks, ty_end, end, &[";"]);
        let next = (semi + 1).min(end);
        let (line, col) = toks.get(kw).map(|t| (t.line, t.col)).unwrap_or((0, 0));
        self.out_statics.push(StaticInfo {
            name: name.clone(),
            is_mut,
            ty,
            line,
            col,
            is_test,
        });
        (
            Item {
                kind: ItemKind::Static(self.out_statics.len() - 1),
                name,
                line,
                tokens: (start, next),
                attrs,
                is_test,
                children: Vec::new(),
            },
            next,
        )
    }

    /// Parse `use` tree content in `[i, end)` (the span between `use` and
    /// `;`), emitting one [`UseDecl`] per bound name.
    fn parse_use(&mut self, toks: &[Token], i: usize, end: usize, is_test: bool) {
        self.parse_use_prefixed(toks, i, end, String::new(), is_test);
    }

    fn parse_use_prefixed(
        &mut self,
        toks: &[Token],
        mut i: usize,
        end: usize,
        prefix: String,
        is_test: bool,
    ) {
        // Collect the leading path; recurse into `{…}` groups; emit leaves.
        let mut path = prefix;
        while i < end {
            match toks[i].text.as_str() {
                "::" => {
                    i += 1;
                }
                "{" => {
                    let close = match_delim(toks, i, end);
                    // Split group members on top-level commas.
                    let mut m = i + 1;
                    let inner_end = close.saturating_sub(1);
                    while m < inner_end {
                        let comma = scan_to(toks, m, inner_end, &[","]);
                        self.parse_use_prefixed(toks, m, comma, path.clone(), is_test);
                        m = comma + 1;
                    }
                    return;
                }
                "*" => return, // glob: nothing nameable to record
                "as" => {
                    let alias = ident_after(toks, i + 1, end);
                    if !alias.is_empty() && !path.is_empty() {
                        let line = toks[i].line;
                        self.out_uses.push(UseDecl {
                            name: alias,
                            path,
                            line,
                            is_test,
                        });
                    }
                    return;
                }
                _ if toks[i].kind == TokKind::Ident => {
                    if !path.is_empty() {
                        path.push_str("::");
                    }
                    path.push_str(&toks[i].text);
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        // Leaf without alias: bound name is the last segment.
        if let Some(last) = path.rsplit("::").next() {
            if !last.is_empty() && last != "self" {
                let line = toks.get(i.saturating_sub(1)).map(|t| t.line).unwrap_or(0);
                self.out_uses.push(UseDecl {
                    name: last.to_string(),
                    path: path.clone(),
                    line,
                    is_test,
                });
            }
        }
    }

    fn parse_fn(
        &mut self,
        toks: &[Token],
        span: Span,
        kw: usize,
        attrs: Vec<String>,
        is_test: bool,
        line: u32,
    ) -> (Item, usize) {
        let (start, end) = span;
        let name = ident_after(toks, kw + 1, end);
        // Skip generics.
        let mut j = kw + 1;
        while j < end && toks[j].text != "(" && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        let mut params = Vec::new();
        if toks.get(j).map(|t| t.text == "(").unwrap_or(false) {
            let close = match_delim(toks, j, end);
            parse_params(toks, j + 1, close.saturating_sub(1), &mut params);
            j = close;
        }
        // Return type / where clause up to the body or `;`.
        let stop = scan_to(toks, j, end, &["{", ";"]);
        let (body, next) = if toks.get(stop).map(|t| t.text == "{").unwrap_or(false) {
            let close = match_delim(toks, stop, end);
            ((stop + 1, close.saturating_sub(1)), close)
        } else {
            ((stop, stop), (stop + 1).min(end))
        };
        let mut info = FnInfo {
            name: name.clone(),
            line,
            body,
            params,
            locals: Vec::new(),
            closures: Vec::new(),
            matches: Vec::new(),
            is_test,
        };
        analyze_body(toks, body, &mut info);
        self.out_fns.push(info);
        (
            Item {
                kind: ItemKind::Fn(self.out_fns.len() - 1),
                name,
                line,
                tokens: (start, next),
                attrs,
                is_test,
                children: Vec::new(),
            },
            next,
        )
    }
}

fn ident_after(toks: &[Token], i: usize, end: usize) -> String {
    toks.get(i)
        .filter(|t| i < end && t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// Type spans stop at `=`, `;` or `,` at *angle* depth 0 (so
/// `Box<dyn Iterator<Item = u8>>` stays whole).
fn scan_to_type_end(toks: &[Token], i: usize, end: usize) -> usize {
    let mut angle = 0i32;
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        let t = toks[j].text.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            "=" | ";" | "," if angle <= 0 && depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    end
}

/// Parse a parameter list span into locals (`name: Type`, `&self`, …).
fn parse_params(toks: &[Token], i: usize, end: usize, out: &mut Vec<Local>) {
    let mut m = i;
    while m < end {
        let comma = {
            // Commas inside generic types (`BTreeMap<K, V>`) are not
            // separators: track angle depth alongside brackets.
            let mut angle = 0i32;
            let mut depth = 0i32;
            let mut j = m;
            loop {
                if j >= end {
                    break end;
                }
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if angle <= 0 && depth <= 0 => break j,
                    _ => {}
                }
                j += 1;
            }
        };
        let colon = scan_to(toks, m, comma, &[":"]);
        let mut name = String::new();
        for t in &toks[m..colon.min(end)] {
            if t.kind == TokKind::Ident && !is_keyword(&t.text) {
                name = t.text.clone();
            } else if t.text == "self" {
                name = "self".into();
            }
        }
        if toks[m..colon.min(end)].iter().any(|t| t.text == "self") {
            name = "self".into();
        }
        if !name.is_empty() {
            let ty = if colon < comma {
                join(toks, (colon + 1, comma))
            } else {
                String::new()
            };
            out.push(Local {
                name,
                ty,
                init: (m, m),
                line: toks.get(m).map(|t| t.line).unwrap_or(0),
                tok: m,
            });
        }
        m = comma + 1;
    }
}

/// Tokens that may directly precede a closure's `|`/`||` in expression
/// position (so `a | b` bitwise-or is not misread as a closure).
fn closure_can_start_after(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(t) => matches!(
            t.text.as_str(),
            "(" | "," | "=" | "=>" | "{" | ";" | "return" | ":" | "[" | "&&" | "||" | "else"
        ),
    }
}

/// Linear scan of a fn body collecting locals, closures and matches.
fn analyze_body(toks: &[Token], body: Span, info: &mut FnInfo) {
    let (start, end) = body;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        match t.text.as_str() {
            "let" => {
                i = parse_let(toks, i, end, info);
            }
            "match" if t.kind == TokKind::Ident => {
                parse_match(toks, i, end, info);
                i += 1; // keep scanning inside (nested lets/closures/matches)
            }
            "move"
                if toks
                    .get(i + 1)
                    .map(|n| n.text == "|" || n.text == "||")
                    .unwrap_or(false) =>
            {
                i = parse_closure(toks, i, end, true, info);
            }
            "|" | "||"
                if closure_can_start_after(if i > start { toks.get(i - 1) } else { None }) =>
            {
                i = parse_closure(toks, i, end, false, info);
            }
            _ => i += 1,
        }
    }
}

/// Parse one `let` statement starting at `let_idx`; returns the index to
/// resume scanning from (just past the pattern/type, so initializer
/// contents still get scanned for closures and matches).
fn parse_let(toks: &[Token], let_idx: usize, end: usize, info: &mut FnInfo) -> usize {
    let mut j = let_idx + 1;
    // Pattern: idents up to `:`, `=` or `;` at depth 0.
    let pat_end = scan_to(toks, j, end, &[":", "=", ";"]);
    let mut names = Vec::new();
    while j < pat_end {
        let t = &toks[j];
        if t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && !t
                .text
                .chars()
                .next()
                .map(char::is_uppercase)
                .unwrap_or(false)
            && toks.get(j + 1).map(|n| n.text != "::").unwrap_or(true)
        {
            names.push((t.text.clone(), t.line));
        }
        j += 1;
    }
    let mut ty = String::new();
    let mut k = pat_end;
    if toks.get(k).map(|t| t.text == ":").unwrap_or(false) {
        let ty_end = scan_to_type_end(toks, k + 1, end);
        ty = join(toks, (k + 1, ty_end));
        k = ty_end;
    }
    let init = if toks.get(k).map(|t| t.text == "=").unwrap_or(false) {
        let init_end = scan_to(toks, k + 1, end, &[";", "else"]);
        (k + 1, init_end)
    } else {
        (k, k)
    };
    for (name, line) in names {
        info.locals.push(Local {
            name,
            ty: ty.clone(),
            init,
            line,
            tok: let_idx,
        });
    }
    k.max(let_idx + 1)
}

/// Parse one closure starting at `start` (`move` or the pipe). Returns the
/// index just past the parameter list so body contents still get scanned.
fn parse_closure(
    toks: &[Token],
    start: usize,
    end: usize,
    is_move: bool,
    info: &mut FnInfo,
) -> usize {
    let pipe = if is_move { start + 1 } else { start };
    let Some(pt) = toks.get(pipe) else {
        return start + 1;
    };
    let (params_span, after_params) = if pt.text == "||" {
        ((pipe, pipe), pipe + 1)
    } else {
        // `|params|` — find the closing pipe.
        let mut j = pipe + 1;
        let mut depth = 0i32;
        while j < end {
            match toks[j].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "|" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= end {
            return start + 1; // not a closure after all
        }
        ((pipe + 1, j), j + 1)
    };
    let mut params = Vec::new();
    {
        let mut locals = Vec::new();
        parse_params(toks, params_span.0, params_span.1, &mut locals);
        for l in locals {
            params.push(l.name);
        }
    }
    // Optional `-> Type`, then the body.
    let mut b = after_params;
    if toks.get(b).map(|t| t.text == "->").unwrap_or(false) {
        b = scan_to(toks, b + 1, end, &["{"]);
    }
    let body = if toks.get(b).map(|t| t.text == "{").unwrap_or(false) {
        let close = match_delim(toks, b, end);
        (b + 1, close.saturating_sub(1))
    } else {
        // Expression body: to the first `,`/`;` at depth 0 or a closing
        // delimiter of the surrounding group.
        let stop = scan_to(toks, b, end, &[",", ";"]);
        (b, stop)
    };
    // `spawn(move || …)` / `spawn(|| …)` detection.
    let spawned = start >= 2
        && toks[start - 1].text == "("
        && toks[start - 2].kind == TokKind::Ident
        && toks[start - 2].text == "spawn";
    info.closures.push(Closure {
        tokens: (start, body.1),
        body,
        params,
        is_move,
        line: pt.line,
        spawned,
    });
    after_params
}

/// Parse one `match` expression starting at the `match` keyword.
fn parse_match(toks: &[Token], kw: usize, end: usize, info: &mut FnInfo) {
    let scrut_end = scan_to(toks, kw + 1, end, &["{"]);
    if !toks.get(scrut_end).map(|t| t.text == "{").unwrap_or(false) {
        return;
    }
    let close = match_delim(toks, scrut_end, end);
    let block_end = close.saturating_sub(1);
    let mut arms = Vec::new();
    let mut i = scrut_end + 1;
    while i < block_end {
        let arrow = scan_to(toks, i, block_end, &["=>"]);
        if arrow >= block_end {
            break;
        }
        let first = &toks[i];
        arms.push(Arm {
            pat: (i, arrow),
            line: first.line,
            col: first.col,
        });
        // Arm body: block or expression up to the next top-level comma.
        let b = arrow + 1;
        if toks.get(b).map(|t| t.text == "{").unwrap_or(false) {
            i = match_delim(toks, b, block_end);
        } else {
            i = scan_to(toks, b, block_end, &[","]);
        }
        if toks.get(i).map(|t| t.text == ",").unwrap_or(false) {
            i += 1;
        }
    }
    info.matches.push(MatchExpr {
        scrutinee: (kw + 1, scrut_end),
        arms,
        line: toks[kw].line,
    });
}

/// A reference to an outer binding from inside a closure body.
#[derive(Debug, Clone)]
pub struct CaptureRef {
    /// Captured name.
    pub name: String,
    /// Token index of the reference.
    pub tok: usize,
    /// Declared type of the outer binding (`""` when unknown).
    pub ty: String,
}

/// Compute the outer bindings a closure captures: identifiers used in its
/// body that are bound by the *enclosing fn* (params or earlier locals)
/// rather than by the closure's own params/lets. Path segments, field and
/// method names are excluded.
pub fn closure_captures(toks: &[Token], f: &FnInfo, c: &Closure) -> Vec<CaptureRef> {
    let inner_names: Vec<&str> = c
        .params
        .iter()
        .map(String::as_str)
        .chain(
            f.locals
                .iter()
                .filter(|l| l.tok >= c.tokens.0 && l.tok < c.body.1)
                .map(|l| l.name.as_str()),
        )
        .collect();
    let mut outer: BTreeMap<&str, &str> = BTreeMap::new();
    for l in f
        .params
        .iter()
        .chain(f.locals.iter().filter(|l| l.tok < c.tokens.0))
    {
        outer.insert(&l.name, &l.ty);
    }
    let mut out = Vec::new();
    for i in c.body.0..c.body.1.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        if inner_names.contains(&t.text.as_str()) {
            continue;
        }
        let prev = i
            .checked_sub(1)
            .map(|p| toks[p].text.as_str())
            .unwrap_or("");
        let next = toks.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        if prev == "." || prev == "::" || next == "::" || next == "!" {
            continue;
        }
        if let Some(ty) = outer.get(t.text.as_str()) {
            out.push(CaptureRef {
                name: t.text.clone(),
                tok: i,
                ty: ty.to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileAst {
        parse(lex(src))
    }

    #[test]
    fn item_tree_kinds_and_names() {
        let ast = parse_src(
            "use std::collections::HashMap as Map;\n\
             pub struct S { x: u8 }\n\
             pub enum E { A, B }\n\
             static mut COUNT: u64 = 0;\n\
             static TABLE: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n\
             impl S { pub fn get(&self) -> u8 { self.x } }\n\
             mod inner { pub fn f() {} }\n\
             pub fn top(a: u32, b: &str) -> u32 { a }\n",
        );
        let kinds: Vec<&ItemKind> = ast.items.iter().map(|i| &i.kind).collect();
        assert!(matches!(kinds[0], ItemKind::Use));
        assert!(matches!(kinds[1], ItemKind::Struct));
        assert!(matches!(kinds[2], ItemKind::Enum));
        assert!(matches!(kinds[3], ItemKind::Static(_)));
        assert!(matches!(kinds[4], ItemKind::Static(_)));
        assert!(matches!(kinds[5], ItemKind::Impl));
        assert!(matches!(kinds[6], ItemKind::Mod));
        assert!(matches!(kinds[7], ItemKind::Fn(_)));
        assert_eq!(ast.items[2].name, "E");
        assert_eq!(ast.statics.len(), 2);
        assert!(ast.statics[0].is_mut);
        assert!(!ast.statics[0].interior_mutable());
        assert!(!ast.statics[1].is_mut);
        assert!(ast.statics[1].interior_mutable());
        assert_eq!(ast.statics[1].ty, "Mutex<Vec<u64>>");
        // Fns: S::get, inner::f, top.
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["get", "f", "top"]);
        assert_eq!(ast.fns[2].params.len(), 2);
        assert_eq!(ast.fns[2].params[0].name, "a");
        assert_eq!(ast.fns[2].params[0].ty, "u32");
    }

    #[test]
    fn use_resolution_handles_groups_globs_and_aliases() {
        let ast = parse_src(
            "use std::collections::{BTreeMap, HashMap as Map};\n\
             use std::time::Instant;\n\
             use crate::foo::*;\n",
        );
        assert_eq!(ast.resolve_use("Map"), Some("std::collections::HashMap"));
        assert_eq!(
            ast.resolve_use("BTreeMap"),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(ast.resolve_use("Instant"), Some("std::time::Instant"));
        assert_eq!(ast.resolve_use("foo"), None);
    }

    #[test]
    fn test_attrs_mark_items_and_descendants() {
        let ast = parse_src(
            "pub fn lib_code() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let x = 1; }\n  fn helper() {}\n}\n",
        );
        assert!(
            !ast.fns
                .iter()
                .find(|f| f.name == "lib_code")
                .unwrap()
                .is_test
        );
        assert!(ast.fns.iter().find(|f| f.name == "t").unwrap().is_test);
        assert!(ast.fns.iter().find(|f| f.name == "helper").unwrap().is_test);
    }

    #[test]
    fn locals_record_types_and_float_inits() {
        let ast = parse_src(
            "fn f() {\n\
               let a: f64 = compute();\n\
               let b = 1.5;\n\
               let (c, d) = (1, 2);\n\
               let e: BTreeMap<u32, Vec<u8>> = BTreeMap::new();\n\
               let Some(g) = opt else { return; };\n\
             }\n",
        );
        let f = &ast.fns[0];
        let get = |n: &str| f.locals.iter().find(|l| l.name == n).unwrap();
        assert_eq!(get("a").ty, "f64");
        assert_eq!(get("b").ty, "");
        assert!(get("c").ty.is_empty() && get("d").ty.is_empty());
        assert_eq!(get("e").ty, "BTreeMap<u32,Vec<u8>>");
        assert_eq!(get("g").name, "g");
        assert_eq!(f.locals.len(), 6);
    }

    #[test]
    fn match_arms_and_scrutinee() {
        let ast = parse_src(
            "fn f(ev: E) -> u32 {\n\
               match ev {\n\
                 E::A(x) => x,\n\
                 E::B { y, .. } => { y + 1 }\n\
                 _ => 0,\n\
               }\n\
             }\n",
        );
        let m = &ast.fns[0].matches[0];
        assert_eq!(m.arms.len(), 3);
        // Wildcard arm is the last, pattern exactly `_`.
        let last = &m.arms[2];
        assert_eq!(last.pat.1 - last.pat.0, 1);
    }

    #[test]
    fn empty_and_nested_matches() {
        let ast = parse_src(
            "fn f(ev: V, o: Option<u8>) {\n\
               match ev {}\n\
               match o {\n\
                 Some(x) => match x { 0 => (), _ => () },\n\
                 None => (),\n\
               }\n\
             }\n",
        );
        let f = &ast.fns[0];
        assert_eq!(f.matches.len(), 3);
        assert!(f.matches[0].arms.is_empty());
        assert_eq!(f.matches[1].arms.len(), 2);
        assert_eq!(f.matches[2].arms.len(), 2);
    }

    #[test]
    fn closures_captures_and_spawn_detection() {
        let ast = parse_src(
            "fn f(jobs: usize) {\n\
               let table: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n\
               let plain = 3u64;\n\
               std::thread::scope(|s| {\n\
                 for _t in 0..jobs {\n\
                   s.spawn(move || {\n\
                     let local = plain + 1;\n\
                     let g = table.lock();\n\
                     drop(g);\n\
                     local\n\
                   });\n\
                 }\n\
               });\n\
               let add = |x: u64, y: u64| x + y;\n\
               let or = plain | 4;\n\
               let _ = (add, or);\n\
             }\n",
        );
        let f = &ast.fns[0];
        // scope closure, spawn closure, add closure (`plain | 4` is not one).
        assert_eq!(f.closures.len(), 3, "{:#?}", f.closures);
        let spawn = f.closures.iter().find(|c| c.spawned).unwrap();
        assert!(spawn.is_move);
        let caps = closure_captures(&ast.tokens, f, spawn);
        let names: Vec<&str> = caps.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"table"), "{names:?}");
        assert!(names.contains(&"plain"), "{names:?}");
        assert!(!names.contains(&"local"), "{names:?}");
        let table_cap = caps.iter().find(|c| c.name == "table").unwrap();
        assert_eq!(table_cap.ty, "Mutex<Vec<u64>>");
        let add = f.closures.iter().find(|c| c.params.len() == 2).unwrap();
        assert_eq!(add.params, vec!["x", "y"]);
        assert!(!add.spawned);
    }

    #[test]
    fn enclosing_fn_finds_the_innermost() {
        let ast = parse_src("fn outer() { let x = 1; }\nfn other() { let y = 2; }\n");
        let f = ast.enclosing_fn(ast.fns[0].body.0).unwrap();
        assert_eq!(f.name, "outer");
    }

    #[test]
    fn symbol_index_collects_statics_and_enums() {
        let ast = parse_src(
            "pub enum MacEvent { A }\n\
             static mut RAW: u64 = 0;\n\
             static CELL: RefCell<u8> = RefCell::new(0);\n\
             #[cfg(test)]\nmod tests { pub enum TestOnly { X } static T: u8 = 0; }\n",
        );
        let mut ix = SymbolIndex::default();
        ix.add_file("crates/mac/src/a.rs", &ast);
        assert!(ix.statics.get("RAW").unwrap().is_mut);
        assert!(ix.statics.get("CELL").unwrap().interior_mutable);
        assert!(!ix.statics.contains_key("T"), "test statics excluded");
        assert!(ix.enums.contains_key("MacEvent"));
        assert!(!ix.enums.contains_key("TestOnly"));
    }

    #[test]
    fn malformed_input_never_panics() {
        for src in [
            "fn broken( { let x = ",
            "impl { }",
            "match",
            "| | |",
            "static X",
            "use ;",
            "macro_rules! m",
            "#[cfg(test)",
            "fn f() { let = ; }",
        ] {
            let _ = parse_src(src);
        }
    }
}
