//! # powifi-lint
//!
//! In-repo static analyzer enforcing the workspace's determinism and
//! unit-safety rules (R1–R7, see `docs/STATIC_ANALYSIS.md`). Self-contained:
//! a hand-written lexer, no external dependencies, so it builds wherever the
//! workspace builds.
//!
//! The flow: walk `crates/*/src` (and sibling trees), lex each file, run the
//! rule catalogue, drop findings covered by inline
//! `// powifi-lint: allow(<rule>) — <reason>` suppressions, then split the
//! rest into *baselined* (grandfathered in `lint-baseline.txt`) and *new*.
//! `--deny-new` exits non-zero iff any new finding survives.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use rules::{FileContext, Rule};

/// A finding after suppression filtering, attached to its file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What and why.
    pub message: String,
    /// Trimmed source line, used for line-drift-tolerant baseline matching.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}\n    {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.slug(),
            self.message,
            self.snippet
        )
    }
}

/// Result of a full run: findings partitioned against the baseline.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not in the baseline — these fail `--deny-new`.
    pub new: Vec<Finding>,
    /// Findings matched (and consumed) by baseline entries.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — stale, should be pruned.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Walk the workspace under `root` and collect every `.rs` file to scan.
///
/// Scans `crates/<name>/**.rs`; skips `target/`, the lint crate's own
/// `fixtures/` tree (test inputs violate rules on purpose), and anything
/// outside `crates/`. Vendored dependencies are third-party code and out of
/// scope. Output is sorted for stable reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let rd = match fs::read_dir(&dir) {
            Ok(rd) => rd,
            Err(_) => continue,
        };
        for entry in rd {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Classify a repo-relative path (`crates/<name>/…`) into a [`FileContext`].
/// Returns `None` for paths not under `crates/`.
pub fn classify(rel: &str) -> Option<FileContext> {
    let mut parts = rel.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    let crate_name = parts.next()?.to_string();
    let rest: Vec<&str> = parts.collect();
    let top = rest.first().copied().unwrap_or("");
    let is_test_file = matches!(top, "tests" | "benches" | "examples");
    let is_bin = rest == ["src", "main.rs"] || (top == "src" && rest.get(1) == Some(&"bin"));
    // The profiler is the one library file sanctioned to read `Instant`
    // (wall-clock span timing, bench-only) — R7's file-level carve-out.
    let is_prof_impl = crate_name == "sim" && rest == ["src", "obs", "prof.rs"];
    // The queue defines (and internally uses) the boxed-closure scheduling
    // API — R8's file-level carve-out.
    let is_queue_impl = crate_name == "sim" && rest == ["src", "queue.rs"];
    Some(FileContext {
        crate_name,
        is_test_file,
        is_bin,
        is_prof_impl,
        is_queue_impl,
    })
}

/// Rules allowed on a given line by `// powifi-lint: allow(...)` comments.
/// A trailing suppression covers its own line; a standalone one covers the
/// whole statement starting at the first code line below its comment block.
fn suppressions(lexed: &lexer::Lexed, src: &str) -> BTreeMap<u32, Vec<Rule>> {
    let mut by_line: BTreeMap<u32, Vec<Rule>> = BTreeMap::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("powifi-lint:") else {
            continue;
        };
        let after = &c.text[pos + "powifi-lint:".len()..];
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let args = &after[open + "allow(".len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<Rule> = args[..close].split(',').filter_map(Rule::parse).collect();
        if rules.is_empty() {
            continue;
        }
        by_line
            .entry(c.line)
            .or_default()
            .extend(rules.iter().copied());
        // A comment on a line of its own covers the first code line below
        // it, skipping the rest of its own comment block — so a multi-line
        // justification still lands on the statement it guards.
        let lines: Vec<&str> = src.lines().collect();
        let own_line = lines
            .get(c.line as usize - 1)
            .map(|l| l.trim_start().starts_with("//"))
            .unwrap_or(false);
        if own_line {
            let mut target = c.line as usize; // 0-based index of next line
            while lines
                .get(target)
                .map(|l| l.trim_start().starts_with("//"))
                .unwrap_or(false)
            {
                target += 1;
            }
            let first = target as u32 + 1;
            // Cover the whole statement, not just its first line — rustfmt
            // is free to split a guarded chain across lines. The statement
            // ends at the first `;` or block-opening `{` at nesting depth 0.
            let last = statement_end_line(&lexed.tokens, first);
            for line in first..=last.max(first) {
                by_line
                    .entry(line)
                    .or_default()
                    .extend(rules.iter().copied());
            }
        }
    }
    by_line
}

/// Line of the token ending the statement that starts at `first_line`: the
/// first `;` or block-opening `{` at bracket depth zero. Falls back to
/// `first_line` when the line holds no tokens.
fn statement_end_line(tokens: &[lexer::Token], first_line: u32) -> u32 {
    let Some(start) = tokens.iter().position(|t| t.line >= first_line) else {
        return first_line;
    };
    if tokens[start].line != first_line {
        return first_line;
    }
    let mut depth = 0i32;
    for t in &tokens[start..] {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" | "{" if depth <= 0 => return t.line,
            _ => {}
        }
    }
    first_line
}

/// Scan one file (already read) and return surviving findings.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let Some(ctx) = classify(rel) else {
        return Vec::new();
    };
    let lexed = lexer::lex(src);
    let raw = rules::check_file(&ctx, &lexed);
    if raw.is_empty() {
        return Vec::new();
    }
    let allowed = suppressions(&lexed, src);
    let lines: Vec<&str> = src.lines().collect();
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !allowed
                .get(&f.line)
                .map(|rs| rs.contains(&f.rule))
                .unwrap_or(false)
        })
        .map(|f| Finding {
            path: rel.to_string(),
            line: f.line,
            col: f.col,
            rule: f.rule,
            message: f.message,
            snippet: lines
                .get(f.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        })
        .collect();
    out.sort();
    out
}

/// Baseline entry key: line numbers deliberately excluded so entries survive
/// unrelated edits above them.
fn baseline_key(rule: Rule, path: &str, snippet: &str) -> String {
    format!("{}\t{}\t{}", rule.id(), path, snippet)
}

/// Parse a baseline file into a multiset of keys.
pub fn parse_baseline(text: &str) -> BTreeMap<String, u32> {
    let mut set = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *set.entry(line.to_string()).or_insert(0) += 1;
    }
    set
}

/// Render findings as baseline file content (header + sorted keys).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# powifi-lint baseline: grandfathered findings, one per line as\n\
         # <rule>\\t<path>\\t<snippet>. Regenerate with `cargo lint --write-baseline`.\n\
         # Burn these down; never add to this file to dodge a new finding.\n",
    );
    let mut keys: Vec<String> = findings
        .iter()
        .map(|f| baseline_key(f.rule, &f.path, &f.snippet))
        .collect();
    keys.sort();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Run the analyzer over the workspace at `root`.
///
/// `baseline` is the parsed content of `lint-baseline.txt` (empty map if the
/// file is absent). Each baseline entry absorbs at most its multiplicity of
/// matching findings; leftovers surface in [`Report::stale_baseline`].
pub fn run(root: &Path, baseline: &BTreeMap<String, u32>) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut remaining = baseline.clone();
    let mut all = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        all.extend(scan_source(&rel, &src));
    }
    all.sort();
    for f in all {
        let key = baseline_key(f.rule, &f.path, &f.snippet);
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                report.baselined.push(f);
            }
            _ => report.new.push(f),
        }
    }
    for (key, n) in remaining {
        for _ in 0..n {
            report.stale_baseline.push(key.clone());
        }
    }
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = classify("crates/mac/src/world.rs").unwrap();
        assert_eq!(c.crate_name, "mac");
        assert!(!c.is_test_file && !c.is_bin);
        let c = classify("crates/bench/src/bin/fig05.rs").unwrap();
        assert!(c.is_bin);
        let c = classify("crates/sim/tests/determinism.rs").unwrap();
        assert!(c.is_test_file);
        let c = classify("crates/core/src/main.rs").unwrap();
        assert!(c.is_bin);
        let c = classify("crates/sim/src/obs/prof.rs").unwrap();
        assert!(c.is_prof_impl);
        let c = classify("crates/sim/src/queue.rs").unwrap();
        assert!(c.is_queue_impl);
        assert!(!classify("crates/sim/src/lib.rs").unwrap().is_queue_impl);
        assert!(
            !classify("crates/sim/src/obs/metrics.rs")
                .unwrap()
                .is_prof_impl
        );
        assert!(classify("vendor/rand/src/lib.rs").is_none());
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let src = "fn f(x: Option<u8>) {\n\
                   x.unwrap(); // powifi-lint: allow(R3) — invariant: checked above\n\
                   // powifi-lint: allow(unwrap) — startup only\n\
                   x.unwrap();\n\
                   x.unwrap();\n}\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn suppression_covers_a_statement_split_across_lines() {
        let src = "fn f(x: Option<u8>) {\n\
                   // powifi-lint: allow(R3) — invariant documented here\n\
                   let v = x\n\
                       .map(|v| v + 1)\n\
                       .unwrap();\n\
                   let w = x.unwrap();\n}\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src = "// powifi-lint: allow(R1) — wrong rule\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Unwrap);
    }

    #[test]
    fn baseline_roundtrip_and_multiplicity() {
        let src = "fn f(a: Option<u8>, b: Option<u8>) { a.unwrap(); b.unwrap(); }\n";
        let findings = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
        let text = render_baseline(&findings);
        let parsed = parse_baseline(&text);
        // Same snippet twice → one key with multiplicity 2.
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.values().copied().sum::<u32>(), 2);
    }

    #[test]
    fn baseline_ignores_line_numbers() {
        let a = scan_source(
            "crates/mac/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let b = scan_source(
            "crates/mac/src/lib.rs",
            "// a new comment shifting lines\n\nfn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let key_a = baseline_key(a[0].rule, &a[0].path, &a[0].snippet);
        let key_b = baseline_key(b[0].rule, &b[0].path, &b[0].snippet);
        assert_eq!(key_a, key_b);
        assert_ne!(a[0].line, b[0].line);
    }
}
