//! # powifi-lint
//!
//! In-repo static analyzer enforcing the workspace's determinism and
//! unit-safety rules (R1–R14, see `docs/STATIC_ANALYSIS.md`). Self-contained:
//! a hand-written lexer and parser, no external dependencies, so it builds
//! wherever the workspace builds.
//!
//! The flow (engine v2): walk `crates/*/src` (and sibling trees), lex and
//! parse each file into a [`ast::FileAst`], pool every file's items into a
//! workspace [`ast::SymbolIndex`], run the rule catalogue over each parsed
//! file with the index in hand, drop findings covered by inline
//! `// powifi-lint: allow(<rule>) — <reason>` suppressions, then split the
//! rest into *baselined* (grandfathered in `lint-baseline.txt`) and *new*.
//! `--deny-new` exits non-zero iff any new finding survives.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use ast::{FileAst, SymbolIndex};
use rules::{FileContext, Rule};

/// A finding after suppression filtering, attached to its file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What and why.
    pub message: String,
    /// Trimmed source line, used for line-drift-tolerant baseline matching.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}\n    {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.rule.slug(),
            self.message,
            self.snippet
        )
    }
}

/// Result of a full run: findings partitioned against the baseline.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not in the baseline — these fail `--deny-new`.
    pub new: Vec<Finding>,
    /// Findings matched (and consumed) by baseline entries.
    pub baselined: Vec<Finding>,
    /// Baseline entries that matched nothing — stale, should be pruned.
    pub stale_baseline: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Walk the workspace under `root` and collect every `.rs` file to scan.
///
/// Scans `crates/<name>/**.rs`; skips `target/`, the lint crate's own
/// `fixtures/` tree (test inputs violate rules on purpose), and anything
/// outside `crates/`. Vendored dependencies are third-party code and out of
/// scope. Output is sorted for stable reports.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates];
    while let Some(dir) = stack.pop() {
        let rd = match fs::read_dir(&dir) {
            Ok(rd) => rd,
            Err(_) => continue,
        };
        for entry in rd {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == "fixtures" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Classify a repo-relative path (`crates/<name>/…`) into a [`FileContext`].
/// Returns `None` for paths not under `crates/`.
pub fn classify(rel: &str) -> Option<FileContext> {
    let mut parts = rel.split('/');
    if parts.next()? != "crates" {
        return None;
    }
    let crate_name = parts.next()?.to_string();
    let rest: Vec<&str> = parts.collect();
    let top = rest.first().copied().unwrap_or("");
    let is_test_file = matches!(top, "tests" | "benches" | "examples");
    let is_bin = rest == ["src", "main.rs"] || (top == "src" && rest.get(1) == Some(&"bin"));
    // The profiler is the one library file sanctioned to read `Instant`
    // (wall-clock span timing, bench-only) — R7's file-level carve-out.
    let is_prof_impl = crate_name == "sim" && rest == ["src", "obs", "prof.rs"];
    // The queue defines (and internally uses) the boxed-closure scheduling
    // API — R8's file-level carve-out.
    let is_queue_impl = crate_name == "sim" && rest == ["src", "queue.rs"];
    // The RNG implementation is the one place allowed to seed raw
    // generators — R10's file-level carve-out.
    let is_rng_impl = crate_name == "sim" && rest == ["src", "rng.rs"];
    // The sharded city runtime and its helpers — R9's scope.
    let is_city = crate_name == "deploy" && top == "src" && rest.get(1) == Some(&"city");
    // The streaming-telemetry wire layer is the one sim file allowed to
    // touch sockets — R13's file-level carve-out.
    let is_stream_impl = crate_name == "sim" && rest == ["src", "obs", "stream.rs"];
    // Checkpoint-serialization code — R14's scope: library files named
    // `ckpt*.rs` (ckpt.rs, ckpt_run.rs, …) or anywhere under a `ckpt/`
    // directory, in every crate.
    let fname = rest.last().copied().unwrap_or("");
    let is_ckpt = !is_test_file
        && (fname.starts_with("ckpt") && fname.ends_with(".rs") || rest.contains(&"ckpt"));
    Some(FileContext {
        crate_name,
        rel_path: rel.to_string(),
        is_test_file,
        is_bin,
        is_prof_impl,
        is_queue_impl,
        is_rng_impl,
        is_city,
        is_stream_impl,
        is_ckpt,
    })
}

/// Rules allowed on a given line by `// powifi-lint: allow(...)` comments.
/// A trailing suppression covers its own line; a standalone one covers the
/// whole statement starting at the first code line below its comment block.
fn suppressions(ast: &FileAst, src: &str) -> BTreeMap<u32, Vec<Rule>> {
    let mut by_line: BTreeMap<u32, Vec<Rule>> = BTreeMap::new();
    for c in &ast.comments {
        let Some(pos) = c.text.find("powifi-lint:") else {
            continue;
        };
        let after = &c.text[pos + "powifi-lint:".len()..];
        let Some(open) = after.find("allow(") else {
            continue;
        };
        let args = &after[open + "allow(".len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<Rule> = args[..close].split(',').filter_map(Rule::parse).collect();
        if rules.is_empty() {
            continue;
        }
        by_line
            .entry(c.line)
            .or_default()
            .extend(rules.iter().copied());
        // A comment on a line of its own covers the first code line below
        // it, skipping the rest of its own comment block — so a multi-line
        // justification still lands on the statement it guards.
        let lines: Vec<&str> = src.lines().collect();
        let own_line = lines
            .get(c.line as usize - 1)
            .map(|l| l.trim_start().starts_with("//"))
            .unwrap_or(false);
        if own_line {
            let mut target = c.line as usize; // 0-based index of next line
            while lines
                .get(target)
                .map(|l| l.trim_start().starts_with("//"))
                .unwrap_or(false)
            {
                target += 1;
            }
            let first = target as u32 + 1;
            // Cover the whole statement, not just its first line — rustfmt
            // is free to split a guarded chain across lines. The statement
            // ends at the first `;` or block-opening `{` at nesting depth 0.
            let last = statement_end_line(&ast.tokens, first);
            for line in first..=last.max(first) {
                by_line
                    .entry(line)
                    .or_default()
                    .extend(rules.iter().copied());
            }
        }
    }
    by_line
}

/// Line of the token ending the statement that starts at `first_line`: the
/// first `;` or block-opening `{` at bracket depth zero. Falls back to
/// `first_line` when the line holds no tokens.
fn statement_end_line(tokens: &[lexer::Token], first_line: u32) -> u32 {
    let Some(start) = tokens.iter().position(|t| t.line >= first_line) else {
        return first_line;
    };
    if tokens[start].line != first_line {
        return first_line;
    }
    let mut depth = 0i32;
    for t in &tokens[start..] {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            ";" | "{" if depth <= 0 => return t.line,
            _ => {}
        }
    }
    first_line
}

/// Run the rule catalogue over one already-parsed file and return surviving
/// findings, sorted. `index` should cover the whole workspace for
/// cross-file rules; a single-file index degrades gracefully.
pub fn scan_parsed(
    ctx: &FileContext,
    ast: &FileAst,
    index: &SymbolIndex,
    src: &str,
) -> Vec<Finding> {
    let raw = rules::check_file(ctx, ast, index);
    if raw.is_empty() {
        return Vec::new();
    }
    let allowed = suppressions(ast, src);
    let lines: Vec<&str> = src.lines().collect();
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            !allowed
                .get(&f.line)
                .map(|rs| rs.contains(&f.rule))
                .unwrap_or(false)
        })
        .map(|f| Finding {
            path: ctx.rel_path.clone(),
            line: f.line,
            col: f.col,
            rule: f.rule,
            message: f.message,
            snippet: lines
                .get(f.line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        })
        .collect();
    out.sort();
    out
}

/// Scan one file (already read) in isolation: parse it, index only its own
/// symbols, run the rules. Cross-file context (other files' statics) is
/// absent — [`run`] provides it for full-workspace scans.
pub fn scan_source(rel: &str, src: &str) -> Vec<Finding> {
    let Some(ctx) = classify(rel) else {
        return Vec::new();
    };
    let ast = ast::parse(lexer::lex(src));
    let mut index = SymbolIndex::default();
    index.add_file(rel, &ast);
    scan_parsed(&ctx, &ast, &index, src)
}

/// Baseline entry key: line numbers deliberately excluded so entries survive
/// unrelated edits above them.
fn baseline_key(rule: Rule, path: &str, snippet: &str) -> String {
    format!("{}\t{}\t{}", rule.id(), path, snippet)
}

/// Parse a baseline file into a multiset of keys.
pub fn parse_baseline(text: &str) -> BTreeMap<String, u32> {
    let mut set = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        *set.entry(line.to_string()).or_insert(0) += 1;
    }
    set
}

/// Render findings as baseline file content (header + sorted keys).
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# powifi-lint baseline: grandfathered findings, one per line as\n\
         # <rule>\\t<path>\\t<snippet>. Regenerate with `cargo lint --write-baseline`.\n\
         # Burn these down; never add to this file to dodge a new finding.\n",
    );
    let mut keys: Vec<String> = findings
        .iter()
        .map(|f| baseline_key(f.rule, &f.path, &f.snippet))
        .collect();
    keys.sort();
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Escape a string for JSON output.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(f: &Finding, out: &mut String) {
    out.push_str(&format!(
        "{{\"path\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"slug\":\"{}\",\
         \"message\":\"{}\",\"snippet\":\"{}\"}}",
        json_escape(&f.path),
        f.line,
        f.col,
        f.rule.id(),
        f.rule.slug(),
        json_escape(&f.message),
        json_escape(&f.snippet),
    ));
}

/// Render a [`Report`] as machine-readable JSON with a stable field order
/// (`files_scanned`, `new`, `baselined`, `stale_baseline`; findings carry
/// `path`, `line`, `col`, `rule`, `slug`, `message`, `snippet`). Findings
/// are already sorted by [`run`], so the output is byte-stable for a given
/// tree. One trailing newline, no pretty-printing — consumers pipe it
/// through their own formatter.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    for (name, findings) in [("new", &report.new), ("baselined", &report.baselined)] {
        out.push_str(&format!("\"{name}\":["));
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_finding(f, &mut out);
        }
        out.push_str("],");
    }
    out.push_str("\"stale_baseline\":[");
    for (i, k) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(k)));
    }
    out.push_str("]}\n");
    out
}

/// Run the analyzer over the workspace at `root`.
///
/// Two passes: first lex+parse every file and pool statics/enums into the
/// workspace [`SymbolIndex`]; then run the rules per file with the full
/// index in hand, so cross-file facts (a mutable static declared in one
/// module, touched in another) are visible. `baseline` is the parsed
/// content of `lint-baseline.txt` (empty map if the file is absent). Each
/// baseline entry absorbs at most its multiplicity of matching findings;
/// leftovers surface in [`Report::stale_baseline`].
pub fn run(root: &Path, baseline: &BTreeMap<String, u32>) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    // Pass 1: parse everything, build the index.
    let mut parsed: Vec<(FileContext, FileAst, String)> = Vec::new();
    let mut index = SymbolIndex::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(path)?;
        let ast = ast::parse(lexer::lex(&src));
        index.add_file(&rel, &ast);
        parsed.push((ctx, ast, src));
    }
    // Pass 2: rules, with the whole workspace visible.
    let mut all = Vec::new();
    for (ctx, ast, src) in &parsed {
        all.extend(scan_parsed(ctx, ast, &index, src));
    }
    all.sort();
    let mut remaining = baseline.clone();
    for f in all {
        let key = baseline_key(f.rule, &f.path, &f.snippet);
        match remaining.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                report.baselined.push(f);
            }
            _ => report.new.push(f),
        }
    }
    for (key, n) in remaining {
        for _ in 0..n {
            report.stale_baseline.push(key.clone());
        }
    }
    Ok(report)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// containing a `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        let c = classify("crates/mac/src/world.rs").unwrap();
        assert_eq!(c.crate_name, "mac");
        assert_eq!(c.rel_path, "crates/mac/src/world.rs");
        assert!(!c.is_test_file && !c.is_bin);
        let c = classify("crates/bench/src/bin/fig05.rs").unwrap();
        assert!(c.is_bin);
        let c = classify("crates/sim/tests/determinism.rs").unwrap();
        assert!(c.is_test_file);
        let c = classify("crates/core/src/main.rs").unwrap();
        assert!(c.is_bin);
        let c = classify("crates/sim/src/obs/prof.rs").unwrap();
        assert!(c.is_prof_impl);
        let c = classify("crates/sim/src/queue.rs").unwrap();
        assert!(c.is_queue_impl);
        let c = classify("crates/sim/src/rng.rs").unwrap();
        assert!(c.is_rng_impl && !c.is_queue_impl);
        let c = classify("crates/deploy/src/city/runtime.rs").unwrap();
        assert!(c.is_city);
        let c = classify("crates/deploy/src/city/mod.rs").unwrap();
        assert!(c.is_city);
        let c = classify("crates/sim/src/obs/stream.rs").unwrap();
        assert!(c.is_stream_impl && !c.is_prof_impl);
        assert!(
            !classify("crates/sim/src/obs/agg.rs")
                .unwrap()
                .is_stream_impl,
            "the carve-out is the wire layer only, not the whole obs tree"
        );
        let c = classify("crates/deploy/src/ckpt.rs").unwrap();
        assert!(c.is_ckpt);
        assert!(classify("crates/bench/src/ckpt_run.rs").unwrap().is_ckpt);
        assert!(classify("crates/net/src/ckpt/frames.rs").unwrap().is_ckpt);
        assert!(
            !classify("crates/bench/src/replay.rs").unwrap().is_ckpt,
            "the inspector reads checkpoints, it does not serialize state"
        );
        assert!(
            !classify("crates/deploy/tests/ckpt_roundtrip.rs")
                .unwrap()
                .is_ckpt,
            "test trees are out of every rule's scope, R14 included"
        );
        assert!(!classify("crates/deploy/src/lib.rs").unwrap().is_city);
        assert!(!classify("crates/sim/src/lib.rs").unwrap().is_queue_impl);
        assert!(
            !classify("crates/sim/src/obs/metrics.rs")
                .unwrap()
                .is_prof_impl
        );
        assert!(classify("vendor/rand/src/lib.rs").is_none());
    }

    #[test]
    fn suppression_same_line_and_line_above() {
        let src = "fn f(x: Option<u8>) {\n\
                   x.unwrap(); // powifi-lint: allow(R3) — invariant: checked above\n\
                   // powifi-lint: allow(unwrap) — startup only\n\
                   x.unwrap();\n\
                   x.unwrap();\n}\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn suppression_covers_a_statement_split_across_lines() {
        let src = "fn f(x: Option<u8>) {\n\
                   // powifi-lint: allow(R3) — invariant documented here\n\
                   let v = x\n\
                       .map(|v| v + 1)\n\
                       .unwrap();\n\
                   let w = x.unwrap();\n}\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src = "// powifi-lint: allow(R1) — wrong rule\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Unwrap);
    }

    #[test]
    fn suppression_works_for_new_rules() {
        let src = "fn dispatch(ev: MacEvent) {\n\
                   match ev {\n\
                   MacEvent::A => (),\n\
                   // powifi-lint: allow(non-exhaustive-dispatch) — legacy kinds TBD\n\
                   _ => (),\n\
                   }\n}\n";
        let f = scan_source("crates/mac/src/lib.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn baseline_roundtrip_and_multiplicity() {
        let src = "fn f(a: Option<u8>, b: Option<u8>) { a.unwrap(); b.unwrap(); }\n";
        let findings = scan_source("crates/mac/src/lib.rs", src);
        assert_eq!(findings.len(), 2);
        let text = render_baseline(&findings);
        let parsed = parse_baseline(&text);
        // Same snippet twice → one key with multiplicity 2.
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.values().copied().sum::<u32>(), 2);
    }

    #[test]
    fn baseline_ignores_line_numbers() {
        let a = scan_source(
            "crates/mac/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let b = scan_source(
            "crates/mac/src/lib.rs",
            "// a new comment shifting lines\n\nfn f(x: Option<u8>) { x.unwrap(); }\n",
        );
        let key_a = baseline_key(a[0].rule, &a[0].path, &a[0].snippet);
        let key_b = baseline_key(b[0].rule, &b[0].path, &b[0].snippet);
        assert_eq!(key_a, key_b);
        assert_ne!(a[0].line, b[0].line);
    }

    #[test]
    fn json_output_is_stable_and_escaped() {
        let report = Report {
            new: vec![Finding {
                path: "crates/mac/src/lib.rs".into(),
                line: 3,
                col: 7,
                rule: Rule::Unwrap,
                message: "`.unwrap()` in library code; return a typed error".into(),
                snippet: "x.unwrap(); // says \"hi\"".into(),
            }],
            baselined: Vec::new(),
            stale_baseline: vec!["R1\tcrates/x.rs\tlet m: HashMap<u8,u8>;".into()],
            files_scanned: 1,
        };
        let js = render_json(&report);
        assert!(js.starts_with("{\"files_scanned\":1,\"new\":[{\"path\":"));
        assert!(js.contains("\\\"hi\\\""), "{js}");
        assert!(js.contains("\"rule\":\"R3\",\"slug\":\"unwrap\""));
        assert!(js.contains("R1\\tcrates/x.rs"), "{js}");
        assert!(js.ends_with("]}\n"));
        // Byte-stable across calls.
        assert_eq!(js, render_json(&report));
    }
}
