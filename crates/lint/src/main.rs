//! CLI for powifi-lint. Usually invoked through the cargo alias:
//! `cargo lint [--deny-new] [--write-baseline]`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use powifi_lint::{find_root, parse_baseline, render_baseline, render_json, rules::Rule, run};

const USAGE: &str = "\
powifi-lint: workspace determinism/unit-safety analyzer

USAGE:
    cargo lint [OPTIONS]
    cargo run -p powifi-lint -- [OPTIONS]

OPTIONS:
    --deny-new            Exit 1 if any finding is not in the baseline
    --write-baseline      Rewrite the baseline from current findings
    --root <DIR>          Workspace root (default: auto-detected)
    --baseline <FILE>     Baseline path (default: <root>/lint-baseline.txt)
    --rules               Print the rule catalogue and exit
    --json                Emit the report as JSON (stable field order)
    -h, --help            Show this help

Findings are suppressed inline with:
    // powifi-lint: allow(<rule>) — <reason>
where <rule> is an id (R1..R14) or slug. See docs/STATIC_ANALYSIS.md.";

fn main() -> ExitCode {
    let mut deny_new = false;
    let mut write_baseline = false;
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut baseline_arg: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-new" => deny_new = true,
            "--write-baseline" => write_baseline = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_arg = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--rules" => {
                for r in Rule::ALL {
                    println!("{} ({}): {}", r.id(), r.slug(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown option `{other}`")),
        }
    }

    let root = match root_arg.or_else(|| {
        std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .map(PathBuf::from)
            .and_then(|p| find_root(&p))
            .or_else(|| std::env::current_dir().ok().and_then(|p| find_root(&p)))
    }) {
        Some(r) => r,
        None => {
            eprintln!("powifi-lint: cannot locate workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let baseline_path = baseline_arg.unwrap_or_else(|| root.join("lint-baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => parse_baseline(&text),
        Err(_) => BTreeMap::new(),
    };

    let report = match run(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("powifi-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        let mut all = report.baselined.clone();
        all.extend(report.new.iter().cloned());
        let text = render_baseline(&all);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("powifi-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "powifi-lint: wrote {} entries to {}",
            all.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if json {
        print!("{}", render_json(&report));
        if deny_new && !report.new.is_empty() {
            return ExitCode::from(1);
        }
        return ExitCode::SUCCESS;
    }

    for f in &report.new {
        println!("{f}");
    }
    if !deny_new {
        for f in &report.baselined {
            println!("{f}  [baselined]");
        }
    }
    for key in &report.stale_baseline {
        eprintln!("powifi-lint: stale baseline entry (prune it): {key}");
    }
    println!(
        "powifi-lint: {} files scanned, {} new finding(s), {} baselined, {} stale baseline entr(ies)",
        report.files_scanned,
        report.new.len(),
        report.baselined.len(),
        report.stale_baseline.len()
    );

    if deny_new && !report.new.is_empty() {
        eprintln!(
            "powifi-lint: {} new finding(s); fix them, add a justified \
             `// powifi-lint: allow(...)`, or (last resort) extend the baseline",
            report.new.len()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("powifi-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
