//! A small self-contained Rust lexer — just enough token structure for the
//! rule catalogue (identifiers, literals, punctuation, comment positions),
//! with strings/chars/comments handled so that a `HashMap` inside a string
//! literal or a doc comment never produces a false finding.
//!
//! No external dependencies on purpose: the vendor directory is frozen, and
//! the analyzer must build everywhere the workspace builds.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Floating-point literal (`1.0`, `1e9`, `2.5f64`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, greedily grouped (`==`, `::`, `->`, `..=`, `(`, …).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Raw text (string/char literals keep delimiters).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A comment with its position, kept out of the token stream; suppression
/// directives (`// powifi-lint: allow(...)`) are parsed from these.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// Output of [`lex`]: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Two- and three-character operators the rules care about being atomic.
const MULTI_PUNCT: [&str; 19] = [
    "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=", "-=", "*=",
    "/=", "%=", "^=", "<<",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenize `src`. The lexer is permissive: malformed input never panics,
/// it just degrades into punctuation tokens.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos;
                while let Some(nb) = c.peek(0) {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..c.pos].to_string(),
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            c.bump();
                            c.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            c.bump();
                            c.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..c.pos].to_string(),
                });
            }
            b'"' => {
                let text = lex_string(&mut c, src);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'r' | b'b' if raw_or_byte_string_starts(&c) => {
                let text = lex_raw_or_byte(&mut c, src);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                // Char literal vs lifetime/label.
                let is_char = match (c.peek(1), c.peek(2)) {
                    (Some(b'\\'), _) => true,
                    (Some(x), Some(b'\'')) if x != b'\'' => true,
                    _ => false,
                };
                if is_char {
                    let start = c.pos;
                    c.bump(); // opening '
                    if c.peek(0) == Some(b'\\') {
                        c.bump();
                        c.bump();
                        // \u{...} and multi-byte escapes: consume to the quote.
                        while let Some(nb) = c.peek(0) {
                            if nb == b'\'' {
                                break;
                            }
                            c.bump();
                        }
                    } else {
                        c.bump();
                    }
                    c.bump(); // closing '
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    // Lifetime: skip it (rules never need lifetimes).
                    c.bump();
                    while let Some(nb) = c.peek(0) {
                        if !is_ident_continue(nb) {
                            break;
                        }
                        c.bump();
                    }
                }
            }
            _ if b.is_ascii_digit() => {
                let (text, is_float) = lex_number(&mut c, src);
                out.tokens.push(Token {
                    kind: if is_float {
                        TokKind::Float
                    } else {
                        TokKind::Int
                    },
                    text,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while let Some(nb) = c.peek(0) {
                    if !is_ident_continue(nb) {
                        break;
                    }
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
            }
            _ => {
                let rest = &src[c.pos..];
                let mut matched = None;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        matched = Some(op);
                        break;
                    }
                }
                let text = match matched {
                    Some(op) => {
                        for _ in 0..op.len() {
                            c.bump();
                        }
                        op.to_string()
                    }
                    None => {
                        c.bump();
                        (b as char).to_string()
                    }
                };
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn raw_or_byte_string_starts(c: &Cursor<'_>) -> bool {
    match (c.peek(0), c.peek(1), c.peek(2)) {
        (Some(b'r'), Some(b'"'), _) | (Some(b'r'), Some(b'#'), _) => {
            // r" or r#...# — but r#ident is a raw identifier, so require a
            // quote at the end of the # run.
            let mut i = 1;
            while c.peek(i) == Some(b'#') {
                i += 1;
            }
            c.peek(i) == Some(b'"')
        }
        (Some(b'b'), Some(b'"'), _) | (Some(b'b'), Some(b'\''), _) => true,
        (Some(b'b'), Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'r'), Some(b'#')) => true,
        _ => false,
    }
}

fn lex_string(c: &mut Cursor<'_>, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening "
    while let Some(b) = c.peek(0) {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

fn lex_raw_or_byte(c: &mut Cursor<'_>, src: &str) -> String {
    let start = c.pos;
    if c.peek(0) == Some(b'b') {
        c.bump();
    }
    if c.peek(0) == Some(b'\'') {
        // Byte char literal b'x'.
        c.bump();
        if c.peek(0) == Some(b'\\') {
            c.bump();
        }
        c.bump();
        if c.peek(0) == Some(b'\'') {
            c.bump();
        }
        return src[start..c.pos].to_string();
    }
    let raw = c.peek(0) == Some(b'r');
    if raw {
        c.bump();
    }
    let mut hashes = 0usize;
    while c.peek(0) == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    c.bump(); // opening "
    loop {
        match c.peek(0) {
            None => break,
            Some(b'\\') if !raw => {
                c.bump();
                c.bump();
            }
            Some(b'"') => {
                c.bump();
                let mut seen = 0usize;
                while seen < hashes && c.peek(0) == Some(b'#') {
                    seen += 1;
                    c.bump();
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

fn lex_number(c: &mut Cursor<'_>, src: &str) -> (String, bool) {
    let start = c.pos;
    let radix_prefixed = c.peek(0) == Some(b'0')
        && matches!(
            c.peek(1),
            Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B') | Some(b'o')
        );
    let mut saw_dot = false;
    let mut saw_exp = false;
    while let Some(b) = c.peek(0) {
        if b.is_ascii_alphanumeric() || b == b'_' {
            if !radix_prefixed && (b == b'e' || b == b'E') {
                // Exponent only if followed by digit or sign+digit.
                let next = c.peek(1);
                let nn = c.peek(2);
                let exp = matches!(next, Some(d) if d.is_ascii_digit())
                    || (matches!(next, Some(b'+') | Some(b'-'))
                        && matches!(nn, Some(d) if d.is_ascii_digit()));
                if exp {
                    saw_exp = true;
                    c.bump(); // e
                    if matches!(c.peek(0), Some(b'+') | Some(b'-')) {
                        c.bump();
                    }
                    continue;
                }
            }
            c.bump();
        } else if b == b'.' && !saw_dot && !radix_prefixed {
            // A dot only continues the number when a digit follows (so `1..2`
            // and `1.max(2)` stay integers).
            if matches!(c.peek(1), Some(d) if d.is_ascii_digit()) {
                saw_dot = true;
                c.bump();
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let text = src[start..c.pos].to_string();
    let float_suffix = !radix_prefixed && (text.ends_with("f32") || text.ends_with("f64"));
    (
        text.clone(),
        saw_dot || (saw_exp && !radix_prefixed) || float_suffix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let l = lex("let x = \"HashMap\"; // HashMap here\n/* HashSet */ let y = 1;");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "HashSet"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let k = kinds("1.0 1e9 2.5f64 0x1E 10 1..2 3.max(4) 1_000.0");
        assert_eq!(k[0], (TokKind::Float, "1.0".into()));
        assert_eq!(k[1], (TokKind::Float, "1e9".into()));
        assert_eq!(k[2], (TokKind::Float, "2.5f64".into()));
        assert_eq!(k[3], (TokKind::Int, "0x1E".into()));
        assert_eq!(k[4], (TokKind::Int, "10".into()));
        assert_eq!(k[5], (TokKind::Int, "1".into()));
        assert_eq!(k[6], (TokKind::Punct, "..".into()));
        assert_eq!(k[7], (TokKind::Int, "2".into()));
        assert_eq!(k[8], (TokKind::Int, "3".into()));
        assert_eq!(k.last().unwrap(), &(TokKind::Float, "1_000.0".into()));
    }

    #[test]
    fn lifetimes_are_skipped_chars_kept() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        // The lifetime `'a` is swallowed whole: neither a Char token nor a
        // stray `a` identifier survives.
        assert!(k.iter().all(|(_, t)| t != "a" && t != "'a"));
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::Char && t == "'x'"));
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn multi_char_punct_is_atomic() {
        let k = kinds("a == b != c :: d -> e ..= f");
        let puncts: Vec<&str> = k
            .iter()
            .filter(|(kind, _)| *kind == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->", "..="]);
    }

    #[test]
    fn raw_strings_consume_hashes() {
        let l = lex("let s = r#\"a \" HashMap \"#; let t = 5;");
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Int && t.text == "5"));
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
