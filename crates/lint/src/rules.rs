//! The rule catalogue: R1–R8, each a token-level pass over one lexed file.
//!
//! Scope model: every rule declares which crates it patrols and whether it
//! looks inside test regions. "Simulation crates" are the ones whose
//! iteration order, clocks, and float handling feed the golden artifacts;
//! `crates/bench` is the sanctioned boundary where wall clocks and ambient
//! randomness are allowed (progress bars, run timing), so R2 and R7 exempt
//! it. The profiler implementation (`crates/sim/src/obs/prof.rs`) is the one
//! other place allowed to read `Instant` — R7 carries a file-level carve-out
//! for it via [`FileContext::is_prof_impl`]. The event-queue implementation
//! (`crates/sim/src/queue.rs`) defines the closure-scheduling API itself, so
//! R8 carves it out via [`FileContext::is_queue_impl`].

use crate::lexer::{Lexed, TokKind, Token};

/// Crates whose behavior feeds simulation results (R1/R3/R4/R5 scope).
pub const SIM_CRATES: [&str; 8] = [
    "core", "deploy", "harvest", "mac", "net", "rf", "sensors", "sim",
];

/// Crates whose event handling is hot enough that per-event heap
/// allocation is a perf bug (R8 scope). Deployment scenarios and test
/// support stay closure-friendly.
pub const HOT_CRATES: [&str; 5] = ["core", "harvest", "mac", "net", "sim"];

/// The eight rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no `HashMap`/`HashSet` in simulation crates.
    HashIteration,
    /// R2: no ambient randomness or non-`Instant` wall clocks outside
    /// `crates/bench`.
    AmbientNondeterminism,
    /// R3: no `unwrap()`/`expect()` in non-test library code.
    Unwrap,
    /// R4: no `==`/`!=` against float values.
    FloatEq,
    /// R5: no bare `as` float→int casts without a rounding helper.
    BareCast,
    /// R6: no direct `TraceSink` construction/installation outside
    /// `crates/sim` (the `obs` layer) and `crates/bench` (the runner).
    SinkConstruction,
    /// R7: no `std::time::Instant` outside `crates/bench` and the profiler
    /// implementation (`crates/sim/src/obs/prof.rs`).
    WallClockScope,
    /// R8: no per-event heap allocation (`Box<dyn Fn…>`, closure
    /// scheduling) in hot simulation layers; post typed events through the
    /// world's `Dispatch` impl instead.
    HotPathAlloc,
}

impl Rule {
    /// All rules, in id order.
    pub const ALL: [Rule; 8] = [
        Rule::HashIteration,
        Rule::AmbientNondeterminism,
        Rule::Unwrap,
        Rule::FloatEq,
        Rule::BareCast,
        Rule::SinkConstruction,
        Rule::WallClockScope,
        Rule::HotPathAlloc,
    ];

    /// Short id (`R1`…`R7`), used in output and baseline entries.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIteration => "R1",
            Rule::AmbientNondeterminism => "R2",
            Rule::Unwrap => "R3",
            Rule::FloatEq => "R4",
            Rule::BareCast => "R5",
            Rule::SinkConstruction => "R6",
            Rule::WallClockScope => "R7",
            Rule::HotPathAlloc => "R8",
        }
    }

    /// Human slug, accepted in `allow(...)` alongside the id.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::AmbientNondeterminism => "ambient-nondeterminism",
            Rule::Unwrap => "unwrap",
            Rule::FloatEq => "float-eq",
            Rule::BareCast => "bare-cast",
            Rule::SinkConstruction => "sink-construction",
            Rule::WallClockScope => "instant-outside-bench",
            Rule::HotPathAlloc => "no-hot-path-alloc",
        }
    }

    /// Parse an id or slug (case-insensitive for ids).
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.slug() == s)
    }

    /// One-line description for `--rules` and reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "HashMap/HashSet iteration order is seeded per process; use BTreeMap/BTreeSet"
            }
            Rule::AmbientNondeterminism => {
                "ambient clocks and RNGs (SystemTime, thread_rng, OsRng, …) break replay"
            }
            Rule::Unwrap => "unwrap()/expect() in library code; use typed errors or justify",
            Rule::FloatEq => "==/!= on floats; compare integer ns/tolerances instead",
            Rule::BareCast => "bare `as` float→int cast; go through .round()/.floor()/.ceil()",
            Rule::SinkConstruction => {
                "direct TraceSink construction; simulation layers emit typed events only — \
                 sinks are wired by obs and the bench runner"
            }
            Rule::WallClockScope => {
                "std::time::Instant outside crates/bench and obs::prof; wall time is a \
                 harness/profiler concern — instrument with obs::prof spans instead"
            }
            Rule::HotPathAlloc => {
                "Box<dyn Fn…>/closure scheduling allocates per event; hot layers post \
                 typed events (EventQueue::post_at/post_in) routed by Dispatch"
            }
        }
    }

    /// Does this rule patrol `crate_name`?
    pub fn applies_to_crate(self, crate_name: &str) -> bool {
        match self {
            Rule::AmbientNondeterminism | Rule::WallClockScope => crate_name != "bench",
            // Sinks may only be built where they are defined (`sim`, home of
            // the `obs` layer) or wired (`bench`, the sweep runner).
            Rule::SinkConstruction => crate_name != "sim" && crate_name != "bench",
            Rule::HotPathAlloc => HOT_CRATES.contains(&crate_name),
            _ => SIM_CRATES.contains(&crate_name),
        }
    }
}

/// Where a file sits, as far as rule scoping cares.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name under `crates/` (e.g. `mac`).
    pub crate_name: String,
    /// Entire file is test/bench/example code (`tests/`, `benches/`,
    /// `examples/` trees) — R1/R3/R4/R5 skip it wholesale.
    pub is_test_file: bool,
    /// File is a binary entry point (`src/bin/`, `src/main.rs`) — R3 skips
    /// it (CLIs may exit via expect on startup errors).
    pub is_bin: bool,
    /// File is the profiler implementation itself
    /// (`crates/sim/src/obs/prof.rs`) — the one library file allowed to read
    /// `Instant`, so R7 skips it.
    pub is_prof_impl: bool,
    /// File is the event-queue implementation (`crates/sim/src/queue.rs`) —
    /// it defines the boxed-closure scheduling API, so R8 skips it.
    pub is_queue_impl: bool,
}

/// One raw finding, before suppression/baseline filtering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What and why, with the offending token inline.
    pub message: String,
}

/// Token index ranges (half-open) covered by `#[test]` / `#[cfg(test)]`.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute token span.
            let attr_start = i + 2;
            let mut depth = 1u32;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            // `#[test]`, `#[cfg(test)]`, `#[tokio::test]`-style. The
            // consecutive `cfg ( test` check deliberately rejects
            // `#[cfg(not(test))]`.
            let is_test_attr = (attr.len() == 1 && attr[0].text == "test")
                || attr
                    .windows(3)
                    .any(|w| w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test")
                || (attr.len() >= 3
                    && attr[attr.len() - 1].text == "test"
                    && attr[attr.len() - 2].text == "::");
            if is_test_attr {
                // Guarded item: from here to the close of the first brace
                // block after the attribute (skipping further attributes).
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut d = 1u32;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let mut d = 1u32;
                    let mut e = k + 1;
                    while e < toks.len() && d > 0 {
                        match toks[e].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        e += 1;
                    }
                    regions.push((i, e));
                    i = e;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const ROUNDING_HELPERS: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// Idents whose mere presence means ambient nondeterminism (R2). `Instant`
/// is deliberately absent: it has its own rule (R7) with a carve-out for the
/// profiler implementation.
const AMBIENT_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "from_entropy", "OsRng"];

/// Trace-sink types whose mere mention outside obs/bench means a simulation
/// layer is wiring its own observability plumbing (R6).
const SINK_IDENTS: [&str; 3] = ["NullSink", "RingSink", "JsonlSink"];

/// Closure-scheduling entry points on the event queue: each call boxes its
/// handler on the heap, so one of these per event is a hot-path perf bug
/// (R8). Typed posting (`post_at`/`post_in`) is the allocation-free path.
const CLOSURE_SCHEDULERS: [&str; 4] = [
    "schedule_at",
    "schedule_in",
    "schedule_repeating",
    "schedule_repeating_while",
];

/// Run every applicable rule over one lexed file.
pub fn check_file(ctx: &FileContext, lexed: &Lexed) -> Vec<RawFinding> {
    let toks = &lexed.tokens;
    let regions = test_regions(toks);
    let mut out = Vec::new();

    // Test trees are out of scope for every rule — including R2, since
    // timing a test harness is not a simulation concern.
    if ctx.is_test_file {
        return out;
    }
    let active: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|r| r.applies_to_crate(&ctx.crate_name))
        .collect();
    if active.is_empty() {
        return out;
    }

    for (i, t) in toks.iter().enumerate() {
        if in_regions(&regions, i) {
            continue;
        }
        // R1 — hash collections.
        if active.contains(&Rule::HashIteration)
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::HashIteration,
                message: format!(
                    "`{}` has per-process iteration order; use BTree{} (or a sorted Vec)",
                    t.text,
                    &t.text[4..]
                ),
            });
        }
        // R2 — ambient nondeterminism.
        if active.contains(&Rule::AmbientNondeterminism)
            && t.kind == TokKind::Ident
            && AMBIENT_IDENTS.contains(&t.text.as_str())
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::AmbientNondeterminism,
                message: format!(
                    "`{}` is ambient nondeterminism; simulations must use SimTime and seeded SimRng",
                    t.text
                ),
            });
        }
        // R7 — wall-clock `Instant` outside bench and the profiler itself.
        if active.contains(&Rule::WallClockScope)
            && !ctx.is_prof_impl
            && t.kind == TokKind::Ident
            && t.text == "Instant"
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::WallClockScope,
                message: "`Instant` is a wall clock; only crates/bench and obs::prof may \
                          read it — attribute time with obs::prof spans instead"
                    .to_string(),
            });
        }
        // R3 — unwrap/expect in library code.
        if active.contains(&Rule::Unwrap)
            && !ctx.is_bin
            && t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::Unwrap,
                message: format!(
                    "`.{}()` in library code; return a typed error or justify with an allow",
                    t.text
                ),
            });
        }
        // R4 — float equality.
        if active.contains(&Rule::FloatEq)
            && t.kind == TokKind::Punct
            && (t.text == "==" || t.text == "!=")
        {
            let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
            // Allow a unary minus between the operator and the literal.
            let next_float = match (toks.get(i + 1), toks.get(i + 2)) {
                (Some(n), _) if n.kind == TokKind::Float => true,
                (Some(n), Some(nn)) if n.text == "-" && nn.kind == TokKind::Float => true,
                _ => false,
            };
            if prev_float || next_float {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::FloatEq,
                    message: format!(
                        "`{}` against a float literal; accumulated f64 time/energy never \
                         compares exactly — use integer ns or an epsilon",
                        t.text
                    ),
                });
            }
        }
        // R6 — trace-sink construction outside obs/bench. Flags the sink
        // type names themselves plus `trace::install`/`trace::uninstall`
        // (path-qualified, so unrelated `install_*` helpers stay quiet).
        if active.contains(&Rule::SinkConstruction) && t.kind == TokKind::Ident {
            if SINK_IDENTS.contains(&t.text.as_str()) {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::SinkConstruction,
                    message: format!(
                        "`{}` constructed outside obs/bench; emit typed events via \
                         obs::trace::emit and let the runner wire sinks",
                        t.text
                    ),
                });
            } else if (t.text == "install" || t.text == "uninstall")
                && i >= 2
                && toks[i - 1].text == "::"
                && toks[i - 2].text == "trace"
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::SinkConstruction,
                    message: format!(
                        "`trace::{}` outside obs/bench; sink lifecycle belongs to the \
                         obs layer and the bench runner",
                        t.text
                    ),
                });
            }
        }
        // R8 — per-event heap allocation in hot layers: method calls on the
        // closure-scheduling API, and `Box<dyn Fn…>` handler types. The
        // queue implementation itself (which defines both) is carved out.
        if active.contains(&Rule::HotPathAlloc) && !ctx.is_queue_impl && t.kind == TokKind::Ident {
            if CLOSURE_SCHEDULERS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "`.{}()` boxes one closure per event; post a typed event \
                         (post_at/post_in) routed by the world's Dispatch impl, or \
                         justify a cold path with an allow",
                        t.text
                    ),
                });
            } else if t.text == "Box"
                && toks.get(i + 1).map(|n| n.text == "<").unwrap_or(false)
                && toks.get(i + 2).map(|n| n.text == "dyn").unwrap_or(false)
                && toks
                    .get(i + 3)
                    .map(|n| n.kind == TokKind::Ident && n.text.starts_with("Fn"))
                    .unwrap_or(false)
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "`Box<dyn {}…>` is a per-event heap allocation; hot layers \
                         carry typed event enums instead of boxed handlers",
                        toks[i + 3].text
                    ),
                });
            }
        }
        // R5 — bare float→int cast.
        if active.contains(&Rule::BareCast)
            && t.kind == TokKind::Ident
            && t.text == "as"
            && toks
                .get(i + 1)
                .map(|n| n.kind == TokKind::Ident && INT_TYPES.contains(&n.text.as_str()))
                .unwrap_or(false)
            && i > 0
        {
            if let Some(msg) = bare_cast_evidence(toks, i) {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::BareCast,
                    message: msg,
                });
            }
        }
    }
    out
}

/// Decide whether the expression left of `toks[as_idx]` (`as`) is a float
/// being truncated without a rounding helper. Purely lexical, so this is a
/// heuristic: it flags float literals, `f64`/`f32` casts, `*_f64()` getters,
/// and parenthesized groups containing any of those — and accepts anything
/// that went through `.round()`/`.floor()`/`.ceil()`/`.trunc()`.
fn bare_cast_evidence(toks: &[Token], as_idx: usize) -> Option<String> {
    let prev = &toks[as_idx - 1];
    match prev.kind {
        TokKind::Float => Some(format!(
            "float literal `{}` truncated by bare `as`; use .round()/.floor()/.ceil() first \
             (see SimDuration::from_micros_f64)",
            prev.text
        )),
        TokKind::Ident if prev.text == "f64" || prev.text == "f32" => Some(
            "float value truncated by bare `as`; use .round()/.floor()/.ceil() first".to_string(),
        ),
        TokKind::Punct if prev.text == ")" => {
            // Walk back to the matching `(`.
            let mut depth = 1i32;
            let mut j = as_idx - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if depth != 0 {
                return None;
            }
            // Method/function name directly before the group?
            if j > 0 && toks[j - 1].kind == TokKind::Ident {
                let name = toks[j - 1].text.as_str();
                if ROUNDING_HELPERS.contains(&name) {
                    return None; // blessed: .round() as u64
                }
                if name.ends_with("_f64") || name.ends_with("_f32") || name == "mbps" {
                    return Some(format!(
                        "`{name}()` returns a float; bare `as` truncates — \
                         use .round()/.floor()/.ceil() first"
                    ));
                }
            }
            let group = &toks[j..as_idx - 1];
            let floaty = group.iter().any(|g| {
                g.kind == TokKind::Float
                    || (g.kind == TokKind::Ident && (g.text == "f64" || g.text == "f32"))
            });
            floaty.then(|| {
                "float expression truncated by bare `as`; \
                 use .round()/.floor()/.ceil() first"
                    .to_string()
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx() -> FileContext {
        FileContext {
            crate_name: "mac".into(),
            is_test_file: false,
            is_bin: false,
            is_prof_impl: false,
            is_queue_impl: false,
        }
    }

    fn run(src: &str) -> Vec<RawFinding> {
        check_file(&ctx(), &lex(src))
    }

    #[test]
    fn r1_fires_on_hashmap_not_in_tests() {
        let f = run("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HashIteration).count(),
            2
        );
        let f = run("#[cfg(test)]\nmod tests { use std::collections::HashSet; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_not_test_is_still_checked() {
        let f = run("#[cfg(not(test))]\nfn f() { let m: std::collections::HashMap<u8, u8>; }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HashIteration).count(),
            1
        );
    }

    #[test]
    fn r2_and_r7_split_wall_clock_from_ambient_rng() {
        let f = run("fn f() { let t = std::time::Instant::now(); let r = thread_rng(); }");
        let r2 = f
            .iter()
            .filter(|f| f.rule == Rule::AmbientNondeterminism)
            .count();
        let r7 = f.iter().filter(|f| f.rule == Rule::WallClockScope).count();
        assert_eq!((r2, r7), (1, 1), "{f:?}");
    }

    #[test]
    fn r7_is_exempt_in_the_profiler_implementation() {
        let lexed = lex("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        let mut c = ctx();
        c.crate_name = "sim".into();
        c.is_prof_impl = true;
        let f = check_file(&c, &lexed);
        assert!(
            f.iter().all(|f| f.rule != Rule::WallClockScope),
            "obs::prof owns the wall clock: {f:?}"
        );
        c.is_prof_impl = false;
        let f = check_file(&c, &lexed);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::WallClockScope).count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn r3_fires_on_unwrap_not_unwrap_or() {
        let f = run("fn f(x: Option<u8>) { x.unwrap(); x.unwrap_or(0); x.expect(\"m\"); }");
        let r3: Vec<_> = f.iter().filter(|f| f.rule == Rule::Unwrap).collect();
        assert_eq!(r3.len(), 2, "{f:?}");
    }

    #[test]
    fn r3_skips_bins_and_test_fns() {
        let mut c = ctx();
        c.is_bin = true;
        let f = check_file(&c, &lex("fn main() { foo().unwrap(); }"));
        assert!(f.iter().all(|f| f.rule != Rule::Unwrap));
        let f = run("#[test]\nfn t() { foo().unwrap(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r4_fires_on_float_literal_equality() {
        let f = run("fn f(x: f64) { if x == 0.0 {} if x != -1.5 {} if 2.0 == x {} }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::FloatEq).count(), 3);
        let f = run("fn f(x: u64) { if x == 0 {} }");
        assert!(f.is_empty());
    }

    #[test]
    fn r5_fires_on_bare_float_casts_and_blesses_round() {
        let f = run("fn f(x: f64) { let a = 1.5 as u64; let b = (x * 2.0) as u32; }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::BareCast).count(), 2);
        let f = run("fn f(x: f64) { let a = (x * 2.0).round() as u64; let b = 3 as u64; }");
        assert!(f.iter().all(|f| f.rule != Rule::BareCast), "{f:?}");
    }

    #[test]
    fn r5_flags_known_float_getters() {
        let f = run("fn f(r: Bitrate) { let b = r.mbps() as u64; }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::BareCast).count(), 1);
    }

    #[test]
    fn r6_fires_on_sink_types_and_trace_install() {
        let f =
            run("fn f() { let r = RingSink::unbounded(); let _ = trace::install(Box::new(r)); }");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::SinkConstruction)
                .count(),
            2,
            "{f:?}"
        );
        // Unqualified or differently-qualified `install` is not sink wiring.
        let f = run("fn f(q: &mut Q) { conformance::install_audit(q); installer::install(q); }");
        assert!(f.iter().all(|f| f.rule != Rule::SinkConstruction), "{f:?}");
    }

    #[test]
    fn r6_is_exempt_in_sim_and_bench() {
        let lexed = lex("fn f() { let s = NullSink; }");
        for name in ["sim", "bench"] {
            let mut c = ctx();
            c.crate_name = name.into();
            let f = check_file(&c, &lexed);
            assert!(
                f.iter().all(|f| f.rule != Rule::SinkConstruction),
                "{name} may build sinks: {f:?}"
            );
        }
        let f = run("fn f() { let s = NullSink; }");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::SinkConstruction)
                .count(),
            1
        );
    }

    #[test]
    fn r8_fires_on_closure_scheduling_and_boxed_handlers() {
        let f = run("fn f(q: &mut Q) { q.schedule_at(t, |w, _| {}); \
             q.schedule_repeating_while(t, p, cb); \
             let h: Box<dyn FnMut(&mut W)> = mk(); }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HotPathAlloc).count(),
            3,
            "{f:?}"
        );
        // Typed posting and unrelated method names are clean.
        let f = run("fn f(q: &mut Q) { q.post_at(t, ev); q.post_in(d, ev); q.schedule(t); }");
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
        // `Box::new` and non-Fn trait objects are not handler boxes.
        let f = run("fn f() { let b = Box::new(3); let s: Box<dyn Sink> = mk(); }");
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
    }

    #[test]
    fn r8_is_exempt_in_queue_impl_and_cold_crates() {
        let lexed = lex("fn f(q: &mut Q) { q.schedule_at(t, cb); }");
        let mut c = ctx();
        c.crate_name = "sim".into();
        c.is_queue_impl = true;
        let f = check_file(&c, &lexed);
        assert!(
            f.iter().all(|f| f.rule != Rule::HotPathAlloc),
            "queue.rs defines the API: {f:?}"
        );
        c.is_queue_impl = false;
        let f = check_file(&c, &lexed);
        assert_eq!(f.iter().filter(|f| f.rule == Rule::HotPathAlloc).count(), 1);
        // Deploy scenarios run once per experiment, not once per event.
        c.crate_name = "deploy".into();
        let f = check_file(&c, &lexed);
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
    }

    #[test]
    fn scope_respects_crates() {
        let mut c = ctx();
        c.crate_name = "bench".into();
        let lexed = lex("fn f() { let t = Instant::now(); let m: HashMap<u8,u8>; }");
        let f = check_file(&c, &lexed);
        assert!(f.is_empty(), "bench is exempt: {f:?}");
        c.crate_name = "lint".into();
        let f = check_file(&c, &lexed);
        assert_eq!(f.len(), 1, "lint gets R7 only: {f:?}");
        assert_eq!(f[0].rule, Rule::WallClockScope);
    }
}
