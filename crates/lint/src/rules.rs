//! The rule catalogue: R1–R14 over one parsed file (the [`crate::ast`]
//! engine) plus the workspace [`SymbolIndex`].
//!
//! Scope model: every rule declares which crates it patrols and whether it
//! looks inside test regions. "Simulation crates" are the ones whose
//! iteration order, clocks, and float handling feed the golden artifacts;
//! `crates/bench` is the sanctioned boundary where wall clocks and ambient
//! randomness are allowed (progress bars, run timing), so R2 and R7 exempt
//! it. The profiler implementation (`crates/sim/src/obs/prof.rs`) is the one
//! other place allowed to read `Instant` — R7 carries a file-level carve-out
//! for it via [`FileContext::is_prof_impl`]. The event-queue implementation
//! (`crates/sim/src/queue.rs`) defines the closure-scheduling API itself, so
//! R8 carves it out via [`FileContext::is_queue_impl`]; likewise the RNG
//! implementation (`crates/sim/src/rng.rs`) is the one place allowed to
//! seed raw generators, so R10 carves it out via
//! [`FileContext::is_rng_impl`]; and the streaming-telemetry wire layer
//! (`crates/sim/src/obs/stream.rs`) is the one simulation file allowed to
//! touch sockets, so R13 carves it out via
//! [`FileContext::is_stream_impl`].
//!
//! Two engine layers feed findings. *Token-level* passes (most of R1–R8,
//! R12–R14) scan the raw stream with test-region masking, exactly as engine v1
//! did — macro bodies included. *AST* passes use the parse tree: alias
//! resolution through `use … as` (R1/R2/R7), typed-local float context
//! (R4), closure captures and spawn provenance (R9), enclosing-fn seeding
//! discipline (R10), and match-arm wildcards (R11).

use crate::ast::{closure_captures, FileAst, SymbolIndex};
use crate::lexer::{TokKind, Token};

/// Crates whose behavior feeds simulation results (R1/R3/R4/R5 and the
/// R10–R12 determinism family scope).
pub const SIM_CRATES: [&str; 8] = [
    "core", "deploy", "harvest", "mac", "net", "rf", "sensors", "sim",
];

/// Crates whose event handling is hot enough that per-event heap
/// allocation is a perf bug (R8 scope). Deployment scenarios and test
/// support stay closure-friendly.
pub const HOT_CRATES: [&str; 5] = ["core", "harvest", "mac", "net", "sim"];

/// The fourteen rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: no `HashMap`/`HashSet` in simulation crates.
    HashIteration,
    /// R2: no ambient randomness or non-`Instant` wall clocks outside
    /// `crates/bench`.
    AmbientNondeterminism,
    /// R3: no `unwrap()`/`expect()` in non-test library code.
    Unwrap,
    /// R4: no `==`/`!=` against float values.
    FloatEq,
    /// R5: no bare `as` float→int casts without a rounding helper.
    BareCast,
    /// R6: no direct `TraceSink` construction/installation outside
    /// `crates/sim` (the `obs` layer) and `crates/bench` (the runner).
    SinkConstruction,
    /// R7: no `std::time::Instant` outside `crates/bench` and the profiler
    /// implementation (`crates/sim/src/obs/prof.rs`).
    WallClockScope,
    /// R8: no per-event heap allocation (`Box<dyn Fn…>`, closure
    /// scheduling) in hot simulation layers; post typed events through the
    /// world's `Dispatch` impl instead.
    HotPathAlloc,
    /// R9: worker closures in the sharded city runtime must not capture or
    /// touch shared mutable state except through the export-table API.
    ShardIsolation,
    /// R10: `SimRng` streams come from the experiment seed via blessed
    /// seeding helpers — no literal seeds, raw generator seeding, stream
    /// clones, or mid-run reseeding.
    RngStreamDiscipline,
    /// R11: no `_ =>` wildcard arms in `Event`/`Dispatch` matches — new
    /// event kinds must fail loudly at compile review.
    NonExhaustiveDispatch,
    /// R12: no `unsafe` in simulation crates.
    UnsafeInSim,
    /// R13: no socket construction or blocking network I/O in simulation
    /// crates outside the streaming-telemetry egress
    /// (`crates/sim/src/obs/stream.rs`).
    SocketOutsideStream,
    /// R14: no wall-clock sources (`Instant`, `SystemTime`, `UNIX_EPOCH`)
    /// in checkpoint-serialization code — any crate, including
    /// `crates/bench`, whose R2/R7 exemptions do not extend to state that
    /// gets hashed into a checkpoint.
    WallClockInCkpt,
}

impl Rule {
    /// All rules, in id order.
    pub const ALL: [Rule; 14] = [
        Rule::HashIteration,
        Rule::AmbientNondeterminism,
        Rule::Unwrap,
        Rule::FloatEq,
        Rule::BareCast,
        Rule::SinkConstruction,
        Rule::WallClockScope,
        Rule::HotPathAlloc,
        Rule::ShardIsolation,
        Rule::RngStreamDiscipline,
        Rule::NonExhaustiveDispatch,
        Rule::UnsafeInSim,
        Rule::SocketOutsideStream,
        Rule::WallClockInCkpt,
    ];

    /// Short id (`R1`…`R13`), used in output and baseline entries.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIteration => "R1",
            Rule::AmbientNondeterminism => "R2",
            Rule::Unwrap => "R3",
            Rule::FloatEq => "R4",
            Rule::BareCast => "R5",
            Rule::SinkConstruction => "R6",
            Rule::WallClockScope => "R7",
            Rule::HotPathAlloc => "R8",
            Rule::ShardIsolation => "R9",
            Rule::RngStreamDiscipline => "R10",
            Rule::NonExhaustiveDispatch => "R11",
            Rule::UnsafeInSim => "R12",
            Rule::SocketOutsideStream => "R13",
            Rule::WallClockInCkpt => "R14",
        }
    }

    /// Human slug, accepted in `allow(...)` alongside the id.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashIteration => "hash-iteration",
            Rule::AmbientNondeterminism => "ambient-nondeterminism",
            Rule::Unwrap => "unwrap",
            Rule::FloatEq => "float-eq",
            Rule::BareCast => "bare-cast",
            Rule::SinkConstruction => "sink-construction",
            Rule::WallClockScope => "instant-outside-bench",
            Rule::HotPathAlloc => "no-hot-path-alloc",
            Rule::ShardIsolation => "shard-isolation",
            Rule::RngStreamDiscipline => "rng-stream-discipline",
            Rule::NonExhaustiveDispatch => "non-exhaustive-dispatch",
            Rule::UnsafeInSim => "unsafe-in-sim",
            Rule::SocketOutsideStream => "socket-outside-stream",
            Rule::WallClockInCkpt => "wall-clock-in-ckpt",
        }
    }

    /// Parse an id or slug (case-insensitive for ids).
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.slug() == s)
    }

    /// One-line description for `--rules` and reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashIteration => {
                "HashMap/HashSet iteration order is seeded per process; use BTreeMap/BTreeSet"
            }
            Rule::AmbientNondeterminism => {
                "ambient clocks and RNGs (SystemTime, thread_rng, OsRng, …) break replay"
            }
            Rule::Unwrap => "unwrap()/expect() in library code; use typed errors or justify",
            Rule::FloatEq => "==/!= on floats; compare integer ns/tolerances instead",
            Rule::BareCast => "bare `as` float→int cast; go through .round()/.floor()/.ceil()",
            Rule::SinkConstruction => {
                "direct TraceSink construction; simulation layers emit typed events only — \
                 sinks are wired by obs and the bench runner"
            }
            Rule::WallClockScope => {
                "std::time::Instant outside crates/bench and obs::prof; wall time is a \
                 harness/profiler concern — instrument with obs::prof spans instead"
            }
            Rule::HotPathAlloc => {
                "Box<dyn Fn…>/closure scheduling allocates per event; hot layers post \
                 typed events (EventQueue::post_at/post_in) routed by Dispatch"
            }
            Rule::ShardIsolation => {
                "city worker closures touch shared mutable state directly; all cross-shard \
                 influence goes through the export table (the lock() helper + barriers)"
            }
            Rule::RngStreamDiscipline => {
                "rogue SimRng stream: literal seeds, raw generator seeding, clones, or \
                 mid-run reseeding break per-stream replay — derive from the experiment seed"
            }
            Rule::NonExhaustiveDispatch => {
                "wildcard `_ =>` arm in an Event/Dispatch match silently swallows new \
                 event kinds; enumerate every variant so additions fail loudly"
            }
            Rule::UnsafeInSim => {
                "`unsafe` in a simulation crate; the sim tree is forbid(unsafe_code) — \
                 justify any exception with an allow and a safety argument"
            }
            Rule::SocketOutsideStream => {
                "socket construction/blocking I/O in a simulation crate; network egress \
                 is obs::stream's job — emit records through its bounded queue instead"
            }
            Rule::WallClockInCkpt => {
                "wall-clock source (Instant/SystemTime/UNIX_EPOCH) in checkpoint code; \
                 anything serialized must be a pure function of simulation state or \
                 restore(checkpoint(t)) stops being byte-identical"
            }
        }
    }

    /// Does this rule patrol `crate_name`?
    pub fn applies_to_crate(self, crate_name: &str) -> bool {
        match self {
            Rule::AmbientNondeterminism | Rule::WallClockScope => crate_name != "bench",
            // Sinks may only be built where they are defined (`sim`, home of
            // the `obs` layer) or wired (`bench`, the sweep runner).
            Rule::SinkConstruction => crate_name != "sim" && crate_name != "bench",
            Rule::HotPathAlloc => HOT_CRATES.contains(&crate_name),
            // The sharded runtime lives in deploy; the rule's file scope is
            // narrowed further via `FileContext::is_city`.
            Rule::ShardIsolation => crate_name == "deploy",
            // Checkpoint code may live anywhere — including bench, whose
            // R2/R7 exemptions are exactly why this rule exists. The file
            // scope is narrowed via `FileContext::is_ckpt`.
            Rule::WallClockInCkpt => true,
            _ => SIM_CRATES.contains(&crate_name),
        }
    }
}

/// Where a file sits, as far as rule scoping cares.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name under `crates/` (e.g. `mac`).
    pub crate_name: String,
    /// Repo-relative path with `/` separators.
    pub rel_path: String,
    /// Entire file is test/bench/example code (`tests/`, `benches/`,
    /// `examples/` trees) — all rules skip it wholesale.
    pub is_test_file: bool,
    /// File is a binary entry point (`src/bin/`, `src/main.rs`) — R3 skips
    /// it (CLIs may exit via expect on startup errors).
    pub is_bin: bool,
    /// File is the profiler implementation itself
    /// (`crates/sim/src/obs/prof.rs`) — the one library file allowed to read
    /// `Instant`, so R7 skips it.
    pub is_prof_impl: bool,
    /// File is the event-queue implementation (`crates/sim/src/queue.rs`) —
    /// it defines the boxed-closure scheduling API, so R8 skips it.
    pub is_queue_impl: bool,
    /// File is the RNG implementation (`crates/sim/src/rng.rs`) — the one
    /// place allowed to seed raw generators, so R10 skips it.
    pub is_rng_impl: bool,
    /// File is part of the sharded city runtime
    /// (`crates/deploy/src/city/…`) — R9's scope.
    pub is_city: bool,
    /// File is the streaming-telemetry wire layer
    /// (`crates/sim/src/obs/stream.rs`) — the one simulation file allowed
    /// to touch sockets, so R13 skips it.
    pub is_stream_impl: bool,
    /// File is checkpoint-serialization code (`ckpt*.rs`, or under a
    /// `ckpt/` directory) — R14's scope, in every crate.
    pub is_ckpt: bool,
}

impl FileContext {
    /// A plain library-file context for `crate_name` (tests/fixtures).
    pub fn lib(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            rel_path: format!("crates/{crate_name}/src/lib.rs"),
            is_test_file: false,
            is_bin: false,
            is_prof_impl: false,
            is_queue_impl: false,
            is_rng_impl: false,
            is_city: false,
            is_stream_impl: false,
            is_ckpt: false,
        }
    }
}

/// One raw finding, before suppression/baseline filtering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RawFinding {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What and why, with the offending token inline.
    pub message: String,
}

/// Token index ranges (half-open) covered by `#[test]` / `#[cfg(test)]`.
/// Token-level (not item-tree) so attributes inside macro bodies and other
/// unstructured spans still mask correctly.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // Collect the attribute token span.
            let attr_start = i + 2;
            let mut depth = 1u32;
            let mut j = attr_start;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let attr = &toks[attr_start..j.saturating_sub(1)];
            // `#[test]`, `#[cfg(test)]`, `#[tokio::test]`-style. The
            // consecutive `cfg ( test` check deliberately rejects
            // `#[cfg(not(test))]`.
            let is_test_attr = (attr.len() == 1 && attr[0].text == "test")
                || attr
                    .windows(3)
                    .any(|w| w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test")
                || (attr.len() >= 3
                    && attr[attr.len() - 1].text == "test"
                    && attr[attr.len() - 2].text == "::");
            if is_test_attr {
                // Guarded item: from here to the close of the first brace
                // block after the attribute (skipping further attributes).
                let mut k = j;
                while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                    let mut d = 1u32;
                    k += 2;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                }
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let mut d = 1u32;
                    let mut e = k + 1;
                    while e < toks.len() && d > 0 {
                        match toks[e].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        e += 1;
                    }
                    regions.push((i, e));
                    i = e;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(s, e)| idx >= s && idx < e)
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

const ROUNDING_HELPERS: [&str; 4] = ["round", "floor", "ceil", "trunc"];

/// Idents whose mere presence means ambient nondeterminism (R2). `Instant`
/// is deliberately absent: it has its own rule (R7) with a carve-out for the
/// profiler implementation.
const AMBIENT_IDENTS: [&str; 4] = ["SystemTime", "thread_rng", "from_entropy", "OsRng"];

/// Wall-clock sources that must never appear in checkpoint-serialization
/// code (R14). A checkpoint is a pure function of simulation state; one
/// wall-derived field breaks restore-then-run byte-identity and poisons
/// every divergence hash downstream.
const WALL_CLOCK_IDENTS: [&str; 3] = ["Instant", "SystemTime", "UNIX_EPOCH"];

/// Trace-sink types whose mere mention outside obs/bench means a simulation
/// layer is wiring its own observability plumbing (R6).
const SINK_IDENTS: [&str; 3] = ["NullSink", "RingSink", "JsonlSink"];

/// Socket types whose mention in a simulation crate outside the streaming
/// wire layer means a sim layer is doing its own network I/O (R13). Sockets
/// block, retry, and time out nondeterministically; all egress goes through
/// `obs::stream`'s bounded queue.
const SOCKET_IDENTS: [&str; 5] = [
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
];

/// Closure-scheduling entry points on the event queue: each call boxes its
/// handler on the heap, so one of these per event is a hot-path perf bug
/// (R8). Typed posting (`post_at`/`post_in`) is the allocation-free path.
const CLOSURE_SCHEDULERS: [&str; 4] = [
    "schedule_at",
    "schedule_in",
    "schedule_repeating",
    "schedule_repeating_while",
];

/// Interior-mutability accessors that, inside a city worker closure, mean
/// shared state is being touched outside the export-table protocol (R9).
/// The blessed paths are the free `lock()` helper and `Barrier::wait`.
const INTERIOR_MUT_METHODS: [&str; 12] = [
    "lock",
    "try_lock",
    "borrow",
    "borrow_mut",
    "get_mut",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "swap",
    "compare_exchange",
];

/// Fn-name prefixes blessed to install/seed RNG streams (R10): world and
/// scenario construction. Everything else re-seeding a stream mid-run is a
/// replay hazard.
const SEEDING_FN_PREFIXES: [&str; 6] = ["build", "new", "with_", "setup", "install", "make"];

/// Run every applicable rule over one parsed file.
pub fn check_file(ctx: &FileContext, ast: &FileAst, index: &SymbolIndex) -> Vec<RawFinding> {
    let toks = &ast.tokens;
    let regions = test_regions(toks);
    let mut out = Vec::new();

    // Test trees are out of scope for every rule — including R2, since
    // timing a test harness is not a simulation concern.
    if ctx.is_test_file {
        return out;
    }
    let active: Vec<Rule> = Rule::ALL
        .into_iter()
        .filter(|r| r.applies_to_crate(&ctx.crate_name))
        .collect();
    if active.is_empty() {
        return out;
    }

    token_pass(ctx, ast, &active, &regions, &mut out);
    if active.contains(&Rule::FloatEq) {
        float_local_pass(ast, &regions, &mut out);
    }
    if active.contains(&Rule::ShardIsolation) && ctx.is_city {
        shard_isolation_pass(ast, index, &regions, &mut out);
    }
    if active.contains(&Rule::RngStreamDiscipline) && !ctx.is_rng_impl {
        rng_stream_pass(ast, &regions, &mut out);
    }
    if active.contains(&Rule::NonExhaustiveDispatch) {
        dispatch_pass(ast, &regions, &mut out);
    }
    out
}

/// Resolve an ident through the file's `use` declarations and report the
/// *effective* name a rule should judge (`Map` → `HashMap`).
fn effective_name<'a>(ast: &'a FileAst, t: &'a Token) -> &'a str {
    if let Some(path) = ast.resolve_use(&t.text) {
        if let Some(last) = path.rsplit("::").next() {
            if last != t.text {
                return last;
            }
        }
    }
    &t.text
}

/// The token-level passes: R1–R8 (as in engine v1, plus alias resolution
/// through the AST's `use` table), R12 and R13.
fn token_pass(
    ctx: &FileContext,
    ast: &FileAst,
    active: &[Rule],
    regions: &[(usize, usize)],
    out: &mut Vec<RawFinding>,
) {
    let toks = &ast.tokens;
    for (i, t) in toks.iter().enumerate() {
        if in_regions(regions, i) {
            continue;
        }
        // Alias-resolved name for the identity rules (R1/R2/R7): a rename
        // (`use std::collections::HashMap as Map`) no longer hides the type.
        // The alias-binding ident itself (right after `as`) is not a use
        // site — the original name on the same line already reports.
        let after_as = i > 0 && toks[i - 1].text == "as";
        let eff = if t.kind == TokKind::Ident && !after_as {
            effective_name(ast, t)
        } else {
            ""
        };
        // R1 — hash collections.
        if active.contains(&Rule::HashIteration)
            && t.kind == TokKind::Ident
            && (eff == "HashMap" || eff == "HashSet")
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::HashIteration,
                message: format!(
                    "`{}` has per-process iteration order; use BTree{} (or a sorted Vec)",
                    t.text,
                    &eff[4..]
                ),
            });
        }
        // R2 — ambient nondeterminism.
        if active.contains(&Rule::AmbientNondeterminism)
            && t.kind == TokKind::Ident
            && AMBIENT_IDENTS.contains(&eff)
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::AmbientNondeterminism,
                message: format!(
                    "`{}` is ambient nondeterminism; simulations must use SimTime and seeded SimRng",
                    t.text
                ),
            });
        }
        // R7 — wall-clock `Instant` outside bench and the profiler itself.
        if active.contains(&Rule::WallClockScope)
            && !ctx.is_prof_impl
            && t.kind == TokKind::Ident
            && eff == "Instant"
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::WallClockScope,
                message: "`Instant` is a wall clock; only crates/bench and obs::prof may \
                          read it — attribute time with obs::prof spans instead"
                    .to_string(),
            });
        }
        // R14 — wall-clock sources in checkpoint-serialization code. Fires
        // in every crate, because bench's R2/R7 exemptions (progress bars,
        // run timing) stop at the checkpoint boundary: serialized state must
        // be a pure function of simulation state.
        if active.contains(&Rule::WallClockInCkpt)
            && ctx.is_ckpt
            && t.kind == TokKind::Ident
            && WALL_CLOCK_IDENTS.contains(&eff)
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::WallClockInCkpt,
                message: format!(
                    "`{}` in checkpoint code; wall time in serialized state breaks \
                     restore-then-run byte-identity — stamp provenance in the manifest \
                     (outside the hashed state tree) instead",
                    t.text
                ),
            });
        }
        // R13 — socket construction/blocking I/O outside the streaming wire
        // layer, which owns network egress for the whole sim tree.
        if active.contains(&Rule::SocketOutsideStream)
            && !ctx.is_stream_impl
            && t.kind == TokKind::Ident
            && SOCKET_IDENTS.contains(&eff)
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::SocketOutsideStream,
                message: format!(
                    "`{}` in a simulation crate; network I/O blocks and times out \
                     nondeterministically — emit through obs::stream's bounded egress instead",
                    t.text
                ),
            });
        }
        // R12 — `unsafe` in simulation crates.
        if active.contains(&Rule::UnsafeInSim) && t.kind == TokKind::Ident && t.text == "unsafe" {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::UnsafeInSim,
                message: "`unsafe` in a simulation crate; the sim tree carries \
                          #![forbid(unsafe_code)] — keep it safe or justify with an allow \
                          and a safety argument"
                    .to_string(),
            });
        }
        // R3 — unwrap/expect in library code.
        if active.contains(&Rule::Unwrap)
            && !ctx.is_bin
            && t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
        {
            out.push(RawFinding {
                line: t.line,
                col: t.col,
                rule: Rule::Unwrap,
                message: format!(
                    "`.{}()` in library code; return a typed error or justify with an allow",
                    t.text
                ),
            });
        }
        // R4 — float equality (literal-adjacent form).
        if active.contains(&Rule::FloatEq)
            && t.kind == TokKind::Punct
            && (t.text == "==" || t.text == "!=")
        {
            let prev_float = i > 0 && toks[i - 1].kind == TokKind::Float;
            // Allow a unary minus between the operator and the literal.
            let next_float = match (toks.get(i + 1), toks.get(i + 2)) {
                (Some(n), _) if n.kind == TokKind::Float => true,
                (Some(n), Some(nn)) if n.text == "-" && nn.kind == TokKind::Float => true,
                _ => false,
            };
            if prev_float || next_float {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::FloatEq,
                    message: format!(
                        "`{}` against a float literal; accumulated f64 time/energy never \
                         compares exactly — use integer ns or an epsilon",
                        t.text
                    ),
                });
            }
        }
        // R6 — trace-sink construction outside obs/bench. Flags the sink
        // type names themselves plus `trace::install`/`trace::uninstall`
        // (path-qualified, so unrelated `install_*` helpers stay quiet).
        if active.contains(&Rule::SinkConstruction) && t.kind == TokKind::Ident {
            if SINK_IDENTS.contains(&eff) {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::SinkConstruction,
                    message: format!(
                        "`{}` constructed outside obs/bench; emit typed events via \
                         obs::trace::emit and let the runner wire sinks",
                        t.text
                    ),
                });
            } else if (t.text == "install" || t.text == "uninstall")
                && i >= 2
                && toks[i - 1].text == "::"
                && toks[i - 2].text == "trace"
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::SinkConstruction,
                    message: format!(
                        "`trace::{}` outside obs/bench; sink lifecycle belongs to the \
                         obs layer and the bench runner",
                        t.text
                    ),
                });
            }
        }
        // R8 — per-event heap allocation in hot layers: method calls on the
        // closure-scheduling API, and `Box<dyn Fn…>` handler types. The
        // queue implementation itself (which defines both) is carved out.
        if active.contains(&Rule::HotPathAlloc) && !ctx.is_queue_impl && t.kind == TokKind::Ident {
            if CLOSURE_SCHEDULERS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "`.{}()` boxes one closure per event; post a typed event \
                         (post_at/post_in) routed by the world's Dispatch impl, or \
                         justify a cold path with an allow",
                        t.text
                    ),
                });
            } else if t.text == "Box"
                && toks.get(i + 1).map(|n| n.text == "<").unwrap_or(false)
                && toks.get(i + 2).map(|n| n.text == "dyn").unwrap_or(false)
                && toks
                    .get(i + 3)
                    .map(|n| n.kind == TokKind::Ident && n.text.starts_with("Fn"))
                    .unwrap_or(false)
            {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::HotPathAlloc,
                    message: format!(
                        "`Box<dyn {}…>` is a per-event heap allocation; hot layers \
                         carry typed event enums instead of boxed handlers",
                        toks[i + 3].text
                    ),
                });
            }
        }
        // R5 — bare float→int cast.
        if active.contains(&Rule::BareCast)
            && t.kind == TokKind::Ident
            && t.text == "as"
            && toks
                .get(i + 1)
                .map(|n| n.kind == TokKind::Ident && INT_TYPES.contains(&n.text.as_str()))
                .unwrap_or(false)
            && i > 0
        {
            if let Some(msg) = bare_cast_evidence(toks, i) {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::BareCast,
                    message: msg,
                });
            }
        }
    }
}

/// AST upgrade to R4: flag `==`/`!=` where one side is a single identifier
/// whose local binding is *declared* float (`let x: f64 = …`) or
/// initialized from exactly a float literal (`let x = 1.5;`). Conservative
/// by design: initializers merely containing a float stay unflagged (the
/// bound value may be an integer count).
fn float_local_pass(ast: &FileAst, regions: &[(usize, usize)], out: &mut Vec<RawFinding>) {
    let toks = &ast.tokens;
    for f in &ast.fns {
        if f.is_test {
            continue;
        }
        let float_locals: Vec<&str> = f
            .params
            .iter()
            .chain(f.locals.iter())
            .filter(|l| {
                let ty = l.ty.trim_start_matches('&');
                if ty == "f64" || ty == "f32" {
                    return true;
                }
                if !ty.is_empty() {
                    return false;
                }
                // Inferred type: exactly a float literal (with optional
                // unary minus) on the right-hand side.
                let init = &toks[l.init.0.min(toks.len())..l.init.1.min(toks.len())];
                match init {
                    [t] => t.kind == TokKind::Float,
                    [m, t] => m.text == "-" && t.kind == TokKind::Float,
                    _ => false,
                }
            })
            .map(|l| l.name.as_str())
            .collect();
        if float_locals.is_empty() {
            continue;
        }
        for i in f.body.0..f.body.1.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
                continue;
            }
            if in_regions(regions, i) {
                continue;
            }
            // Literal-adjacent comparisons are already covered by the token
            // pass; only fire on ident operands to avoid double findings.
            let is_float_ident = |idx: Option<usize>| {
                idx.and_then(|j| toks.get(j)).is_some_and(|n| {
                    n.kind == TokKind::Ident
                        && float_locals.contains(&n.text.as_str())
                        // Not a field/method/path segment of something else.
                        && idx
                            .and_then(|j| j.checked_sub(1))
                            .and_then(|p| toks.get(p))
                            .map(|p| p.text != "." && p.text != "::")
                            .unwrap_or(true)
                })
            };
            let prev_is = is_float_ident(i.checked_sub(1));
            let next_is = is_float_ident(Some(i + 1));
            let prev_lit = i > 0 && toks[i - 1].kind == TokKind::Float;
            let next_lit = toks
                .get(i + 1)
                .map(|n| n.kind == TokKind::Float)
                .unwrap_or(false)
                || (toks.get(i + 1).map(|n| n.text == "-").unwrap_or(false)
                    && toks
                        .get(i + 2)
                        .map(|n| n.kind == TokKind::Float)
                        .unwrap_or(false));
            if (prev_is || next_is) && !prev_lit && !next_lit {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::FloatEq,
                    message: format!(
                        "`{}` on a float-typed binding; accumulated f64 never compares \
                         exactly — use integer ns or an epsilon",
                        t.text
                    ),
                });
            }
        }
    }
}

/// R9: the sharded-world contract. Inside `spawn`ed worker closures, shared
/// mutable state may only be reached through the export-table API — the
/// free `lock()` helper and the barrier protocol. Flags:
///
/// * `static mut` / interior-mutable `static` declarations anywhere in the
///   city runtime (shared state must live on the runner's stack);
/// * references to workspace mutable statics from inside a worker closure;
/// * captures of `RefCell`/`Cell`/`UnsafeCell`-typed locals by a worker;
/// * direct interior-mutability calls (`.lock()`, `.borrow_mut()`,
///   `.store()`, …) inside a worker closure.
fn shard_isolation_pass(
    ast: &FileAst,
    index: &SymbolIndex,
    regions: &[(usize, usize)],
    out: &mut Vec<RawFinding>,
) {
    let toks = &ast.tokens;
    for s in &ast.statics {
        if s.is_test {
            continue;
        }
        if s.is_mut || s.interior_mutable() {
            out.push(RawFinding {
                line: s.line,
                col: s.col,
                rule: Rule::ShardIsolation,
                message: format!(
                    "`static {}{}` is cross-shard shared state; keep shard state on the \
                     runner's stack and exchange through the export table",
                    if s.is_mut { "mut " } else { "" },
                    s.name
                ),
            });
        }
    }
    for f in &ast.fns {
        if f.is_test {
            continue;
        }
        for c in f.closures.iter().filter(|c| c.spawned) {
            // Captures of interior-mutable locals (ownership of a cell
            // inside a worker means per-thread divergence).
            for cap in closure_captures(toks, f, c) {
                if in_regions(regions, cap.tok) {
                    continue;
                }
                if ["RefCell<", "Cell<", "UnsafeCell<"]
                    .iter()
                    .any(|t| cap.ty.contains(t))
                {
                    let tok = &toks[cap.tok];
                    out.push(RawFinding {
                        line: tok.line,
                        col: tok.col,
                        rule: Rule::ShardIsolation,
                        message: format!(
                            "worker closure captures `{}: {}`; interior-mutable state \
                             shared with workers bypasses the export-table protocol",
                            cap.name, cap.ty
                        ),
                    });
                }
            }
            for i in c.body.0..c.body.1.min(toks.len()) {
                let t = &toks[i];
                if t.kind != TokKind::Ident || in_regions(regions, i) {
                    continue;
                }
                // References to workspace mutable statics.
                if let Some(sym) = index.statics.get(&t.text) {
                    if (sym.is_mut || sym.interior_mutable)
                        && toks.get(i + 1).map(|n| n.text != "::").unwrap_or(true)
                    {
                        out.push(RawFinding {
                            line: t.line,
                            col: t.col,
                            rule: Rule::ShardIsolation,
                            message: format!(
                                "worker closure touches mutable static `{}` (declared in \
                                 {}); cross-shard state flows through the export table only",
                                t.text, sym.path
                            ),
                        });
                    }
                }
                // Raw interior-mutability accessors. `barrier.wait()` and the
                // free `lock(…)` helper are the blessed protocol; a method
                // call `.lock()` (or `.borrow_mut()`, `.store()`, …) is a
                // worker reaching around it.
                if INTERIOR_MUT_METHODS.contains(&t.text.as_str())
                    && i > 0
                    && toks[i - 1].text == "."
                    && toks.get(i + 1).map(|n| n.text == "(").unwrap_or(false)
                {
                    out.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::ShardIsolation,
                        message: format!(
                            "`.{}()` inside a worker closure; go through the export-table \
                             API (the lock() helper + barrier protocol) so exchanges stay \
                             deterministic",
                            t.text
                        ),
                    });
                }
            }
        }
    }
}

/// R10: RNG stream discipline. Flags, outside test regions and the RNG
/// implementation itself:
///
/// * `SimRng::from_seed(<literal>)` — a baked stream that ignores the
///   experiment seed;
/// * `StdRng::seed_from_u64` / `SeedableRng::seed_from_u64` /
///   `StdRng::from_seed` — raw generator seeding outside `sim::rng`;
/// * `<rng>.clone()` — a cloned stream replays the same draws twice;
/// * `.reseed(…)` anywhere, and seeding installers (`seed_medium_rng`, or
///   any `seed_*`/`reseed_*` method) called from a fn that is not a
///   construction helper (`build*`, `new*`, `with_*`, `setup*`,
///   `install*`, `make*`) — reseeding mid-run severs replay.
fn rng_stream_pass(ast: &FileAst, regions: &[(usize, usize)], out: &mut Vec<RawFinding>) {
    let toks = &ast.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_regions(regions, i) {
            continue;
        }
        let in_test_fn = ast.enclosing_fn(i).map(|f| f.is_test).unwrap_or(false);
        if in_test_fn {
            continue;
        }
        let prev2 = i
            .checked_sub(2)
            .map(|p| toks[p].text.as_str())
            .unwrap_or("");
        let prev = i
            .checked_sub(1)
            .map(|p| toks[p].text.as_str())
            .unwrap_or("");
        let next = toks.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
        match t.text.as_str() {
            "from_seed" if prev == "::" && next == "(" => {
                if prev2 == "SimRng" {
                    // Literal argument (optionally negated/grouped)?
                    if toks
                        .get(i + 2)
                        .map(|a| a.kind == TokKind::Int || a.kind == TokKind::Float)
                        .unwrap_or(false)
                    {
                        out.push(RawFinding {
                            line: t.line,
                            col: t.col,
                            rule: Rule::RngStreamDiscipline,
                            message: "`SimRng::from_seed(<literal>)` bakes a stream that \
                                      ignores the experiment seed; derive from the run's \
                                      root SimRng (derive/derive_idx) instead"
                                .to_string(),
                        });
                    }
                } else if prev2.ends_with("Rng") {
                    out.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::RngStreamDiscipline,
                        message: format!(
                            "`{prev2}::from_seed` seeds a raw generator; only sim::rng \
                             constructs generators — take a SimRng stream instead"
                        ),
                    });
                }
            }
            "seed_from_u64" if prev == "::" && next == "(" => {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::RngStreamDiscipline,
                    message: format!(
                        "`{prev2}::seed_from_u64` seeds a raw generator; only sim::rng \
                         constructs generators — take a SimRng stream instead"
                    ),
                });
            }
            "clone" if prev == "." && next == "(" => {
                let recv = i
                    .checked_sub(2)
                    .map(|p| toks[p].text.to_ascii_lowercase())
                    .unwrap_or_default();
                if recv.ends_with("rng") {
                    out.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::RngStreamDiscipline,
                        message: "cloning an RNG stream replays identical draws twice; \
                                  derive an independent child stream instead"
                            .to_string(),
                    });
                }
            }
            "reseed" if prev == "." && next == "(" => {
                out.push(RawFinding {
                    line: t.line,
                    col: t.col,
                    rule: Rule::RngStreamDiscipline,
                    message: "`.reseed()` mid-run severs replay; streams are seeded once \
                              at construction from stable keys"
                        .to_string(),
                });
            }
            name if (name.starts_with("seed_") || name.starts_with("reseed_"))
                && name != "seed_from_u64"
                && prev == "."
                && next == "(" =>
            {
                let blessed = ast
                    .enclosing_fn(i)
                    .map(|f| SEEDING_FN_PREFIXES.iter().any(|p| f.name.starts_with(p)))
                    .unwrap_or(false);
                if !blessed {
                    out.push(RawFinding {
                        line: t.line,
                        col: t.col,
                        rule: Rule::RngStreamDiscipline,
                        message: format!(
                            "`.{name}()` outside a construction helper reseeds a live \
                             stream mid-run; seed streams once while building the world \
                             (build*/new*/with_*/setup*/install*/make*)"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// R11: event dispatch must stay exhaustive. A match is an *event match*
/// when any arm pattern's leading path segment names an `…Event` type (or a
/// `…Event` enum from the workspace index via `use` renames), or when the
/// scrutinee is `ev`/`event` inside a `dispatch*` fn. In such matches a
/// wildcard `_` arm (guarded or not) is flagged: a new event kind would be
/// silently swallowed instead of failing the build.
fn dispatch_pass(ast: &FileAst, regions: &[(usize, usize)], out: &mut Vec<RawFinding>) {
    let toks = &ast.tokens;
    for f in &ast.fns {
        if f.is_test {
            continue;
        }
        for m in &f.matches {
            let mut is_event_match = false;
            for arm in &m.arms {
                let lead = toks.get(arm.pat.0);
                let next = toks.get(arm.pat.0 + 1);
                if let (Some(l), Some(n)) = (lead, next) {
                    if l.kind == TokKind::Ident && n.text == "::" {
                        let eff = effective_name(ast, l);
                        if eff.ends_with("Event") {
                            is_event_match = true;
                            break;
                        }
                    }
                }
            }
            if !is_event_match {
                let scrut = &toks[m.scrutinee.0.min(toks.len())..m.scrutinee.1.min(toks.len())];
                let scrut_is_ev = matches!(scrut, [t] if t.text == "ev" || t.text == "event");
                is_event_match = scrut_is_ev && f.name.starts_with("dispatch");
            }
            if !is_event_match {
                continue;
            }
            for arm in &m.arms {
                if in_regions(regions, arm.pat.0) {
                    continue;
                }
                let pat = &toks[arm.pat.0..arm.pat.1.min(toks.len())];
                let wildcard = match pat {
                    [t] => t.text == "_",
                    [t, g, ..] => t.text == "_" && g.text == "if",
                    _ => false,
                };
                if wildcard {
                    out.push(RawFinding {
                        line: arm.line,
                        col: arm.col,
                        rule: Rule::NonExhaustiveDispatch,
                        message: "wildcard `_ =>` arm in an Event dispatch match; \
                                  enumerate every variant so a new event kind fails \
                                  loudly instead of being silently dropped"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Decide whether the expression left of `toks[as_idx]` (`as`) is a float
/// being truncated without a rounding helper. Purely lexical, so this is a
/// heuristic: it flags float literals, `f64`/`f32` casts, `*_f64()` getters,
/// and parenthesized groups containing any of those — and accepts anything
/// that went through `.round()`/`.floor()`/`.ceil()`/`.trunc()`.
fn bare_cast_evidence(toks: &[Token], as_idx: usize) -> Option<String> {
    let prev = &toks[as_idx - 1];
    match prev.kind {
        TokKind::Float => Some(format!(
            "float literal `{}` truncated by bare `as`; use .round()/.floor()/.ceil() first \
             (see SimDuration::from_micros_f64)",
            prev.text
        )),
        TokKind::Ident if prev.text == "f64" || prev.text == "f32" => Some(
            "float value truncated by bare `as`; use .round()/.floor()/.ceil() first".to_string(),
        ),
        TokKind::Punct if prev.text == ")" => {
            // Walk back to the matching `(`.
            let mut depth = 1i32;
            let mut j = as_idx - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    ")" => depth += 1,
                    "(" => depth -= 1,
                    _ => {}
                }
            }
            if depth != 0 {
                return None;
            }
            // Method/function name directly before the group?
            if j > 0 && toks[j - 1].kind == TokKind::Ident {
                let name = toks[j - 1].text.as_str();
                if ROUNDING_HELPERS.contains(&name) {
                    return None; // blessed: .round() as u64
                }
                if name.ends_with("_f64") || name.ends_with("_f32") || name == "mbps" {
                    return Some(format!(
                        "`{name}()` returns a float; bare `as` truncates — \
                         use .round()/.floor()/.ceil() first"
                    ));
                }
            }
            let group = &toks[j..as_idx - 1];
            let floaty = group.iter().any(|g| {
                g.kind == TokKind::Float
                    || (g.kind == TokKind::Ident && (g.text == "f64" || g.text == "f32"))
            });
            floaty.then(|| {
                "float expression truncated by bare `as`; \
                 use .round()/.floor()/.ceil() first"
                    .to_string()
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn ctx() -> FileContext {
        FileContext::lib("mac")
    }

    fn check(c: &FileContext, src: &str) -> Vec<RawFinding> {
        let ast = parse(lex(src));
        let mut ix = SymbolIndex::default();
        ix.add_file(&c.rel_path, &ast);
        check_file(c, &ast, &ix)
    }

    fn run(src: &str) -> Vec<RawFinding> {
        check(&ctx(), src)
    }

    #[test]
    fn r1_fires_on_hashmap_not_in_tests() {
        let f = run("use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HashIteration).count(),
            2
        );
        let f = run("#[cfg(test)]\nmod tests { use std::collections::HashSet; }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r1_sees_through_use_renames() {
        let f = run("use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, u32>; }");
        // The `HashMap` ident in the use line + the renamed use site.
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HashIteration).count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn cfg_not_test_is_still_checked() {
        let f = run("#[cfg(not(test))]\nfn f() { let m: std::collections::HashMap<u8, u8>; }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HashIteration).count(),
            1
        );
    }

    #[test]
    fn r2_and_r7_split_wall_clock_from_ambient_rng() {
        let f = run("fn f() { let t = std::time::Instant::now(); let r = thread_rng(); }");
        let r2 = f
            .iter()
            .filter(|f| f.rule == Rule::AmbientNondeterminism)
            .count();
        let r7 = f.iter().filter(|f| f.rule == Rule::WallClockScope).count();
        assert_eq!((r2, r7), (1, 1), "{f:?}");
    }

    #[test]
    fn r7_is_exempt_in_the_profiler_implementation() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let mut c = FileContext::lib("sim");
        c.is_prof_impl = true;
        let f = check(&c, src);
        assert!(
            f.iter().all(|f| f.rule != Rule::WallClockScope),
            "obs::prof owns the wall clock: {f:?}"
        );
        c.is_prof_impl = false;
        let f = check(&c, src);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::WallClockScope).count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn r3_fires_on_unwrap_not_unwrap_or() {
        let f = run("fn f(x: Option<u8>) { x.unwrap(); x.unwrap_or(0); x.expect(\"m\"); }");
        let r3: Vec<_> = f.iter().filter(|f| f.rule == Rule::Unwrap).collect();
        assert_eq!(r3.len(), 2, "{f:?}");
    }

    #[test]
    fn r3_skips_bins_and_test_fns() {
        let mut c = ctx();
        c.is_bin = true;
        let f = check(&c, "fn main() { foo().unwrap(); }");
        assert!(f.iter().all(|f| f.rule != Rule::Unwrap));
        let f = run("#[test]\nfn t() { foo().unwrap(); }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r4_fires_on_float_literal_equality() {
        let f = run("fn f(x: f64) { if x == 0.0 {} if x != -1.5 {} if 2.0 == x {} }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::FloatEq).count(), 3);
        let f = run("fn f(x: u64) { if x == 0 {} }");
        assert!(f.is_empty());
    }

    #[test]
    fn r4_fires_on_float_typed_bindings() {
        // Neither side is a literal — engine v1 missed these.
        let f = run("fn f(x: f64, y: f64) { if x == y {} }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::FloatEq).count(), 1);
        let f = run("fn f(y: f64) { let tol = 1e-6; if tol != y {} }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::FloatEq).count(), 1);
        // Integer bindings stay quiet, as do non-float inferred inits.
        let f = run("fn f(n: u64) { let m = n + 1; if m == n {} }");
        assert!(f.is_empty(), "{f:?}");
        // Literal-adjacent sites fire once (token pass), not twice.
        let f = run("fn f(x: f64) { if x == 0.0 {} }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::FloatEq).count(), 1);
    }

    #[test]
    fn r5_fires_on_bare_float_casts_and_blesses_round() {
        let f = run("fn f(x: f64) { let a = 1.5 as u64; let b = (x * 2.0) as u32; }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::BareCast).count(), 2);
        let f = run("fn f(x: f64) { let a = (x * 2.0).round() as u64; let b = 3 as u64; }");
        assert!(f.iter().all(|f| f.rule != Rule::BareCast), "{f:?}");
    }

    #[test]
    fn r5_flags_known_float_getters() {
        let f = run("fn f(r: Bitrate) { let b = r.mbps() as u64; }");
        assert_eq!(f.iter().filter(|f| f.rule == Rule::BareCast).count(), 1);
    }

    #[test]
    fn r6_fires_on_sink_types_and_trace_install() {
        let f =
            run("fn f() { let r = RingSink::unbounded(); let _ = trace::install(Box::new(r)); }");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::SinkConstruction)
                .count(),
            2,
            "{f:?}"
        );
        // Unqualified or differently-qualified `install` is not sink wiring.
        let f = run("fn f(q: &mut Q) { conformance::install_audit(q); installer::install(q); }");
        assert!(f.iter().all(|f| f.rule != Rule::SinkConstruction), "{f:?}");
    }

    #[test]
    fn r6_is_exempt_in_sim_and_bench() {
        let src = "fn f() { let s = NullSink; }";
        for name in ["sim", "bench"] {
            let c = FileContext::lib(name);
            let f = check(&c, src);
            assert!(
                f.iter().all(|f| f.rule != Rule::SinkConstruction),
                "{name} may build sinks: {f:?}"
            );
        }
        let f = run(src);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::SinkConstruction)
                .count(),
            1
        );
    }

    #[test]
    fn r8_fires_on_closure_scheduling_and_boxed_handlers() {
        let f = run("fn f(q: &mut Q) { q.schedule_at(t, |w, _| {}); \
             q.schedule_repeating_while(t, p, cb); \
             let h: Box<dyn FnMut(&mut W)> = mk(); }");
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::HotPathAlloc).count(),
            3,
            "{f:?}"
        );
        // Typed posting and unrelated method names are clean.
        let f = run("fn f(q: &mut Q) { q.post_at(t, ev); q.post_in(d, ev); q.schedule(t); }");
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
        // `Box::new` and non-Fn trait objects are not handler boxes.
        let f = run("fn f() { let b = Box::new(3); let s: Box<dyn Sink> = mk(); }");
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
    }

    #[test]
    fn r8_is_exempt_in_queue_impl_and_cold_crates() {
        let src = "fn f(q: &mut Q) { q.schedule_at(t, cb); }";
        let mut c = FileContext::lib("sim");
        c.is_queue_impl = true;
        let f = check(&c, src);
        assert!(
            f.iter().all(|f| f.rule != Rule::HotPathAlloc),
            "queue.rs defines the API: {f:?}"
        );
        c.is_queue_impl = false;
        let f = check(&c, src);
        assert_eq!(f.iter().filter(|f| f.rule == Rule::HotPathAlloc).count(), 1);
        // Deploy scenarios run once per experiment, not once per event.
        let c = FileContext::lib("deploy");
        let f = check(&c, src);
        assert!(f.iter().all(|f| f.rule != Rule::HotPathAlloc), "{f:?}");
    }

    fn city_ctx() -> FileContext {
        let mut c = FileContext::lib("deploy");
        c.rel_path = "crates/deploy/src/city/runtime.rs".into();
        c.is_city = true;
        c
    }

    #[test]
    fn r9_fires_on_worker_shared_state() {
        let src = "use std::sync::Mutex;\n\
             static mut EPOCHS: u64 = 0;\n\
             pub fn run(jobs: usize) {\n\
               let table: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n\
               std::thread::scope(|s| {\n\
                 for _t in 0..jobs {\n\
                   s.spawn(|| {\n\
                     let mut tbl = table.lock();\n\
                     tbl[0] += 1;\n\
                     EPOCHS += 1;\n\
                   });\n\
                 }\n\
               });\n\
             }\n";
        let f = check(&city_ctx(), src);
        let r9: Vec<_> = f
            .iter()
            .filter(|f| f.rule == Rule::ShardIsolation)
            .collect();
        // static mut decl + .lock() in the worker + EPOCHS ref in the worker.
        assert_eq!(r9.len(), 3, "{r9:?}");
    }

    #[test]
    fn r9_blesses_the_export_table_protocol() {
        let src = "use std::sync::{Barrier, Mutex, MutexGuard};\n\
             fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }\n\
             pub fn run(jobs: usize) {\n\
               let table: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n\
               let barrier = Barrier::new(jobs);\n\
               std::thread::scope(|s| {\n\
                 for _t in 0..jobs {\n\
                   s.spawn(|| {\n\
                     let mut tbl = lock(&table);\n\
                     tbl[0] += 1;\n\
                     drop(tbl);\n\
                     barrier.wait();\n\
                   });\n\
                 }\n\
               });\n\
             }\n";
        let f = check(&city_ctx(), src);
        // The helper's own m.lock() sits outside any worker closure; the
        // workers go through lock() + barrier.wait() only. (The unwrap is
        // R3's business, not R9's.)
        assert!(f.iter().all(|f| f.rule != Rule::ShardIsolation), "{f:?}");
    }

    #[test]
    fn r9_flags_refcell_captures_and_is_city_scoped() {
        let src = "use std::cell::RefCell;\n\
             pub fn run() {\n\
               let flag: RefCell<bool> = RefCell::new(false);\n\
               std::thread::scope(|s| {\n\
                 s.spawn(|| { let f = flag; });\n\
               });\n\
             }\n";
        let f = check(&city_ctx(), src);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::ShardIsolation).count(),
            1,
            "{f:?}"
        );
        // Outside the city runtime the rule is silent.
        let f = check(&FileContext::lib("deploy"), src);
        assert!(f.iter().all(|f| f.rule != Rule::ShardIsolation), "{f:?}");
    }

    #[test]
    fn r10_fires_on_literal_seeds_raw_seeding_clones_and_reseeds() {
        let f = run("fn jitter() -> SimRng { SimRng::from_seed(1234) }\n\
             fn renew() { let r = StdRng::seed_from_u64(7); }\n\
             fn tick(rng: &mut SimRng) { let again = rng.clone(); again.reseed(3); }\n\
             fn rearm(w: &mut Mac, m: MediumId, root: &SimRng) {\n\
               w.seed_medium_rng(m, root.derive(\"x\"));\n\
             }\n");
        let r10: Vec<_> = f
            .iter()
            .filter(|f| f.rule == Rule::RngStreamDiscipline)
            .collect();
        assert_eq!(r10.len(), 5, "{r10:?}");
    }

    #[test]
    fn r10_blesses_derived_streams_and_builders() {
        let f = run("fn run(seed: u64) { let root = SimRng::from_seed(seed); \
               let mac = root.derive(\"mac\"); let m2 = root.derive_idx(\"medium\", 3); }\n\
             fn build_shard(w: &mut Mac, m: MediumId, root: &SimRng) {\n\
               w.seed_medium_rng(m, root.derive_idx(\"city-medium\", 7));\n\
             }\n");
        assert!(
            f.iter().all(|f| f.rule != Rule::RngStreamDiscipline),
            "{f:?}"
        );
    }

    #[test]
    fn r10_is_exempt_in_the_rng_impl_and_tests() {
        let src = "fn from_seed(seed: u64) -> SimRng { let inner = StdRng::seed_from_u64(seed); }";
        let mut c = FileContext::lib("sim");
        c.is_rng_impl = true;
        let f = check(&c, src);
        assert!(
            f.iter().all(|f| f.rule != Rule::RngStreamDiscipline),
            "rng.rs builds the generators: {f:?}"
        );
        let f = run("#[cfg(test)]\nmod tests { fn t() { let r = SimRng::from_seed(42); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r11_fires_on_wildcard_event_arms_only() {
        let f = run("fn dispatch_mac(w: &mut W, ev: MacEvent) {\n\
               match ev {\n\
                 MacEvent::ArbFire(m) => fire(w, m),\n\
                 _ => {}\n\
               }\n\
             }\n");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::NonExhaustiveDispatch)
                .count(),
            1,
            "{f:?}"
        );
        // Guarded wildcards are still wildcards.
        let f = run("fn dispatch(ev: CoreEvent) { match ev { CoreEvent::A => (), _ if x => () } }");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::NonExhaustiveDispatch)
                .count(),
            1
        );
        // Non-event matches may use wildcards freely.
        let f = run("fn frame_class(k: FrameKind) -> usize { \
               match k { FrameKind::Power => 1, _ => 0 } }");
        assert!(
            f.iter().all(|f| f.rule != Rule::NonExhaustiveDispatch),
            "{f:?}"
        );
        // Exhaustive event matches are clean; binding arms are not `_`.
        let f = run("fn dispatch_mac(w: &mut W, ev: MacEvent) {\n\
               match ev { MacEvent::A(m) => f(m), MacEvent::B { s } => g(s) }\n\
             }\n");
        assert!(
            f.iter().all(|f| f.rule != Rule::NonExhaustiveDispatch),
            "{f:?}"
        );
    }

    #[test]
    fn r11_catches_ev_scrutinee_in_dispatch_fns() {
        // Composed enums that do not end in `Event` still count when a
        // dispatch fn matches on `ev`.
        let f = run("fn dispatch_stack(w: &mut W, ev: Stacked) {\n\
               match ev { Stacked::Mac(m) => h(m), _ => () }\n\
             }\n");
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == Rule::NonExhaustiveDispatch)
                .count(),
            1,
            "{f:?}"
        );
        // The same shape outside a dispatch fn is not an event match.
        let f = run("fn classify(ev: Stacked) -> u8 {\n\
               match ev { Stacked::Mac(_) => 1, _ => 0 }\n\
             }\n");
        assert!(
            f.iter().all(|f| f.rule != Rule::NonExhaustiveDispatch),
            "{f:?}"
        );
    }

    #[test]
    fn r12_fires_on_unsafe_in_sim_crates_only() {
        let src = "fn f(p: *const u8) { unsafe { core::ptr::read(p); } }\nunsafe fn g() {}";
        let f = run(src);
        assert_eq!(f.iter().filter(|f| f.rule == Rule::UnsafeInSim).count(), 2);
        let c = FileContext::lib("bench");
        let f = check(&c, src);
        assert!(f.iter().all(|f| f.rule != Rule::UnsafeInSim), "{f:?}");
        let f = run("#[cfg(test)]\nmod tests { fn t() { unsafe {} } }");
        assert!(f.is_empty(), "{f:?}");
    }

    fn ckpt_ctx(crate_name: &str) -> FileContext {
        let mut c = FileContext::lib(crate_name);
        c.rel_path = format!("crates/{crate_name}/src/ckpt.rs");
        c.is_ckpt = true;
        c
    }

    #[test]
    fn r14_fires_on_wall_clocks_in_ckpt_code_even_in_bench() {
        let src = "use std::time::SystemTime;\n\
             fn save_run(run: &Run) -> Value {\n\
               let stamp = SystemTime::now().duration_since(std::time::UNIX_EPOCH);\n\
               let t0 = Instant::now();\n\
             }\n";
        // Bench is exempt from R2/R7 — R14 is the only guard there, and it
        // must fire on every wall-clock ident.
        let f = check(&ckpt_ctx("bench"), src);
        let r14: Vec<_> = f
            .iter()
            .filter(|f| f.rule == Rule::WallClockInCkpt)
            .collect();
        // SystemTime ×2 (use + call), UNIX_EPOCH, Instant.
        assert_eq!(r14.len(), 4, "{r14:?}");
        // In a sim crate the same code also trips R2/R7; R14 still reports
        // its own findings.
        let f = check(&ckpt_ctx("deploy"), src);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::WallClockInCkpt).count(),
            4,
            "{f:?}"
        );
    }

    #[test]
    fn r14_is_scoped_to_ckpt_files_and_sees_through_renames() {
        let src = "use std::time::SystemTime as Clock;\nfn f() { let t = Clock::now(); }";
        let f = check(&ckpt_ctx("bench"), src);
        assert_eq!(
            f.iter().filter(|f| f.rule == Rule::WallClockInCkpt).count(),
            2,
            "{f:?}"
        );
        // The same source in a non-ckpt bench file is the harness's
        // business, not R14's.
        let f = check(&FileContext::lib("bench"), src);
        assert!(f.iter().all(|f| f.rule != Rule::WallClockInCkpt), "{f:?}");
        // Pure simulation-state serialization stays quiet.
        let f = check(
            &ckpt_ctx("bench"),
            "fn save(q: &Queue) -> Value { Value::U64(q.now().nanos()) }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn scope_respects_crates() {
        let src = "fn f() { let t = Instant::now(); let m: HashMap<u8,u8>; }";
        let c = FileContext::lib("bench");
        let f = check(&c, src);
        assert!(f.is_empty(), "bench is exempt: {f:?}");
        let c = FileContext::lib("lint");
        let f = check(&c, src);
        assert_eq!(f.len(), 1, "lint gets R7 only: {f:?}");
        assert_eq!(f[0].rule, Rule::WallClockScope);
    }
}
