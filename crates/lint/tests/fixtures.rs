//! Fixture-driven conformance tests for powifi-lint: one positive and one
//! negative fixture per rule, suppression handling, baseline handling, and
//! output stability across runs.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use powifi_lint::rules::Rule;
use powifi_lint::{parse_baseline, render_baseline, run, scan_source};

/// Lex/scan a fixture as if it lived in a simulation crate's src tree.
fn scan_fixture(src: &str) -> Vec<powifi_lint::Finding> {
    scan_source("crates/mac/src/fixture.rs", src)
}

fn rules_fired(src: &str) -> Vec<Rule> {
    let mut rs: Vec<Rule> = scan_fixture(src).into_iter().map(|f| f.rule).collect();
    rs.dedup();
    rs
}

#[test]
fn r1_positive_and_negative() {
    let pos = include_str!("../fixtures/r1_positive.rs");
    let f = scan_fixture(pos);
    assert!(f.iter().all(|f| f.rule == Rule::HashIteration), "{f:?}");
    // `use {HashMap, HashSet}` + two field types = 4 sites.
    assert_eq!(f.len(), 4, "{f:?}");
    assert!(rules_fired(include_str!("../fixtures/r1_negative.rs")).is_empty());
}

#[test]
fn r2_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r2_positive.rs"));
    // SystemTime ×2, thread_rng ×1 fire R2; Instant ×2 (use + call) now
    // fires R7 — same five sites, split across the two rules.
    assert_eq!(
        f.iter()
            .filter(|f| f.rule == Rule::AmbientNondeterminism)
            .count(),
        3,
        "{f:?}"
    );
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::WallClockScope).count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r2_negative.rs")).is_empty());
}

#[test]
fn r2_is_exempt_in_bench() {
    let pos = include_str!("../fixtures/r2_positive.rs");
    let f = scan_source("crates/bench/src/progress.rs", pos);
    assert!(f.is_empty(), "bench may use wall clocks: {f:?}");
}

#[test]
fn r3_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r3_positive.rs"));
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::Unwrap).count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r3_negative.rs")).is_empty());
}

#[test]
fn r3_is_exempt_in_bins() {
    let pos = include_str!("../fixtures/r3_positive.rs");
    let f = scan_source("crates/mac/src/bin/tool.rs", pos);
    assert!(f.is_empty(), "bins may expect on startup: {f:?}");
}

#[test]
fn r4_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r4_positive.rs"));
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::FloatEq).count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r4_negative.rs")).is_empty());
}

#[test]
fn r5_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r5_positive.rs"));
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::BareCast).count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r5_negative.rs")).is_empty());
}

#[test]
fn r6_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r6_positive.rs"));
    assert!(f.iter().all(|f| f.rule == Rule::SinkConstruction), "{f:?}");
    // `use {JsonlSink, RingSink}` + RingSink::unbounded + trace::install +
    // JsonlSink::create + NullSink = 6 sites.
    assert_eq!(f.len(), 6, "{f:?}");
    assert!(rules_fired(include_str!("../fixtures/r6_negative.rs")).is_empty());
}

#[test]
fn r6_is_exempt_in_sim_and_bench() {
    let pos = include_str!("../fixtures/r6_positive.rs");
    assert!(
        scan_source("crates/sim/src/obs/trace.rs", pos).is_empty(),
        "obs owns the sinks"
    );
    assert!(
        scan_source("crates/bench/src/runner.rs", pos).is_empty(),
        "the runner wires sinks"
    );
}

#[test]
fn r7_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r7_positive.rs"));
    assert!(f.iter().all(|f| f.rule == Rule::WallClockScope), "{f:?}");
    // `use std::time::Instant` + `Instant::now()` = 2 sites.
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(rules_fired(include_str!("../fixtures/r7_negative.rs")).is_empty());
}

#[test]
fn r7_is_exempt_in_bench_and_the_profiler() {
    let pos = include_str!("../fixtures/r7_positive.rs");
    assert!(
        scan_source("crates/bench/src/progress.rs", pos).is_empty(),
        "bench may read wall clocks"
    );
    assert!(
        scan_source("crates/sim/src/obs/prof.rs", pos).is_empty(),
        "the profiler implementation owns Instant"
    );
    assert!(
        !scan_source("crates/sim/src/obs/metrics.rs", pos).is_empty(),
        "the carve-out is one file, not the whole obs tree"
    );
}

#[test]
fn r8_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r8_positive.rs"));
    assert!(f.iter().all(|f| f.rule == Rule::HotPathAlloc), "{f:?}");
    // `Box<dyn FnMut…>` + the four closure-scheduling calls = 5 sites.
    assert_eq!(f.len(), 5, "{f:?}");
    assert!(rules_fired(include_str!("../fixtures/r8_negative.rs")).is_empty());
}

#[test]
fn r8_is_exempt_in_the_queue_impl_and_deploy() {
    let pos = include_str!("../fixtures/r8_positive.rs");
    assert!(
        scan_source("crates/sim/src/queue.rs", pos).is_empty(),
        "queue.rs defines the scheduling API"
    );
    assert!(
        scan_source("crates/deploy/src/home.rs", pos).is_empty(),
        "deploy wiring runs once per experiment, not per event"
    );
    assert!(
        !scan_source("crates/sim/src/conformance.rs", pos).is_empty(),
        "the carve-out is one file, not the whole sim crate"
    );
}

#[test]
fn r9_positive_and_negative() {
    // R9 is scoped to the sharded city runtime.
    let pos = include_str!("../fixtures/r9_positive.rs");
    let f = scan_source("crates/deploy/src/city/runtime.rs", pos);
    // Two rogue static decls, the static refs + .lock() in the worker, and
    // the captured RefCell local.
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::ShardIsolation).count(),
        6,
        "{f:?}"
    );
    let neg = include_str!("../fixtures/r9_negative.rs");
    let f = scan_source("crates/deploy/src/city/runtime.rs", neg);
    assert!(f.is_empty(), "{f:?}");
    // Outside the city tree the same code is not R9's business.
    let f = scan_source("crates/deploy/src/home.rs", pos);
    assert!(f.iter().all(|f| f.rule != Rule::ShardIsolation), "{f:?}");
}

#[test]
fn r9_suppression_works_in_the_city_tree() {
    let src = "pub fn run(jobs: usize) {\n\
               std::thread::scope(|s| {\n\
                 s.spawn(|| {\n\
                   // powifi-lint: allow(shard-isolation) — fixture: local cell\n\
                   acc.borrow_mut();\n\
                 });\n\
               });\n\
             }\n";
    let f = scan_source("crates/deploy/src/city/runtime.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r10_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r10_positive.rs"));
    // Literal SimRng seed, StdRng::seed_from_u64, SmallRng::from_seed,
    // rng.clone(), rng.reseed, and seed_medium_rng outside a builder.
    assert_eq!(
        f.iter()
            .filter(|f| f.rule == Rule::RngStreamDiscipline)
            .count(),
        6,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r10_negative.rs")).is_empty());
}

#[test]
fn r10_is_exempt_in_the_rng_impl() {
    let pos = include_str!("../fixtures/r10_positive.rs");
    let f = scan_source("crates/sim/src/rng.rs", pos);
    assert!(
        f.iter().all(|f| f.rule != Rule::RngStreamDiscipline),
        "rng.rs builds the generators: {f:?}"
    );
}

#[test]
fn r11_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r11_positive.rs"));
    // One plain `_` arm and one guarded `_ if …` arm.
    assert_eq!(
        f.iter()
            .filter(|f| f.rule == Rule::NonExhaustiveDispatch)
            .count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r11_negative.rs")).is_empty());
}

#[test]
fn r12_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r12_positive.rs"));
    assert_eq!(
        f.iter().filter(|f| f.rule == Rule::UnsafeInSim).count(),
        2,
        "{f:?}"
    );
    assert!(rules_fired(include_str!("../fixtures/r12_negative.rs")).is_empty());
    // Non-sim crates (the linter itself, bench) are out of scope.
    let pos = include_str!("../fixtures/r12_positive.rs");
    assert!(scan_source("crates/bench/src/runner.rs", pos).is_empty());
}

#[test]
fn r13_positive_and_negative() {
    let f = scan_fixture(include_str!("../fixtures/r13_positive.rs"));
    assert!(
        f.iter().all(|f| f.rule == Rule::SocketOutsideStream),
        "{f:?}"
    );
    // `use … TcpStream as Wire` + `use {TcpListener, UdpSocket}` (two) +
    // the alias-resolved `Wire` field type and `Wire::connect` + the
    // `TcpListener`/`UdpSocket` return types and `::bind` calls = 9 sites.
    assert_eq!(f.len(), 9, "{f:?}");
    assert!(rules_fired(include_str!("../fixtures/r13_negative.rs")).is_empty());
}

#[test]
fn r13_is_exempt_in_the_stream_impl_and_bench() {
    let pos = include_str!("../fixtures/r13_positive.rs");
    assert!(
        scan_source("crates/sim/src/obs/stream.rs", pos).is_empty(),
        "the wire layer owns the sockets"
    );
    assert!(
        scan_source("crates/bench/src/fleet.rs", pos).is_empty(),
        "bench is the harness boundary, not a simulation crate"
    );
    assert!(
        !scan_source("crates/sim/src/obs/agg.rs", pos).is_empty(),
        "the carve-out is one file, not the whole obs tree"
    );
}

#[test]
fn r14_positive_and_negative() {
    // R14 is scoped to checkpoint files; scan at the real bench path where
    // the R2/R7 bench exemptions would otherwise leave wall clocks unseen.
    let pos = include_str!("../fixtures/r14_positive.rs");
    let f = scan_source("crates/bench/src/ckpt_run.rs", pos);
    assert!(f.iter().all(|f| f.rule == Rule::WallClockInCkpt), "{f:?}");
    // `use {SystemTime, UNIX_EPOCH}` + SystemTime::now + UNIX_EPOCH +
    // Instant::now = 5 sites.
    assert_eq!(f.len(), 5, "{f:?}");
    let neg = include_str!("../fixtures/r14_negative.rs");
    assert!(scan_source("crates/bench/src/ckpt_run.rs", neg).is_empty());
}

#[test]
fn r14_covers_ckpt_files_in_every_crate_and_nothing_else() {
    let pos = include_str!("../fixtures/r14_positive.rs");
    // Sim-crate checkpoint modules get R14 on top of R2/R7.
    let f = scan_source("crates/deploy/src/ckpt.rs", pos);
    assert_eq!(
        f.iter()
            .filter(|f| f.rule == Rule::WallClockInCkpt)
            .count(),
        5,
        "{f:?}"
    );
    // Outside checkpoint files the rule is silent — bench harness timing
    // (progress bars, run duration) is legitimate wall-clock use.
    let f = scan_source("crates/bench/src/progress.rs", pos);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn r14_suppression_works_in_ckpt_files() {
    let src = "pub fn manifest_stamp() -> u64 {\n\
               // powifi-lint: allow(wall-clock-in-ckpt) — manifest provenance, not hashed state\n\
               std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)\n\
             }\n";
    let f = scan_source("crates/bench/src/ckpt_run.rs", src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn suppressions_silence_every_fixture_violation() {
    let f = scan_fixture(include_str!("../fixtures/suppressed.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn test_trees_are_fully_exempt() {
    let pos = include_str!("../fixtures/r1_positive.rs");
    assert!(scan_source("crates/mac/tests/golden.rs", pos).is_empty());
    assert!(scan_source("crates/mac/benches/speed.rs", pos).is_empty());
}

/// Build a throwaway mini-workspace under the target tmpdir so `run()` can
/// be exercised end-to-end (walker → rules → baseline partitioning).
struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(tag: &str) -> MiniRepo {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("mini-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/mac/src")).unwrap();
        fs::create_dir_all(root.join("crates/bench/src")).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        MiniRepo { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn two_runs_produce_identical_findings_in_identical_order() {
    let repo = MiniRepo::new("stable");
    repo.write(
        "crates/mac/src/a.rs",
        include_str!("../fixtures/r1_positive.rs"),
    );
    repo.write(
        "crates/mac/src/b.rs",
        include_str!("../fixtures/r3_positive.rs"),
    );
    repo.write(
        "crates/mac/src/c.rs",
        include_str!("../fixtures/r5_positive.rs"),
    );
    let empty = BTreeMap::new();
    let r1 = run(&repo.root, &empty).unwrap();
    let r2 = run(&repo.root, &empty).unwrap();
    let render = |r: &powifi_lint::Report| {
        r.new
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert!(!r1.new.is_empty());
    assert_eq!(render(&r1), render(&r2));
    // Sorted by path, then position.
    let paths: Vec<&str> = r1.new.iter().map(|f| f.path.as_str()).collect();
    let mut sorted = paths.clone();
    sorted.sort();
    assert_eq!(paths, sorted);
}

#[test]
fn baseline_absorbs_old_findings_and_flags_new_ones() {
    let repo = MiniRepo::new("baseline");
    repo.write(
        "crates/mac/src/a.rs",
        include_str!("../fixtures/r3_positive.rs"),
    );
    let empty = BTreeMap::new();
    let before = run(&repo.root, &empty).unwrap();
    assert_eq!(before.new.len(), 2);

    // Grandfather everything, then re-run: nothing new, nothing stale.
    let baseline = parse_baseline(&render_baseline(&before.new));
    let after = run(&repo.root, &baseline).unwrap();
    assert!(after.new.is_empty(), "{:?}", after.new);
    assert_eq!(after.baselined.len(), 2);
    assert!(after.stale_baseline.is_empty());

    // A fresh violation in another file is still reported as new.
    repo.write(
        "crates/mac/src/b.rs",
        include_str!("../fixtures/r1_positive.rs"),
    );
    let grown = run(&repo.root, &baseline).unwrap();
    assert_eq!(grown.baselined.len(), 2);
    assert!(grown.new.iter().all(|f| f.rule == Rule::HashIteration));
    assert!(!grown.new.is_empty());

    // Fixing a grandfathered finding leaves a stale entry to prune.
    repo.write("crates/mac/src/a.rs", "pub fn ok() {}\n");
    let shrunk = run(&repo.root, &baseline).unwrap();
    assert_eq!(shrunk.stale_baseline.len(), 2);
}

#[test]
fn bench_crate_wall_clock_is_not_reported_by_run() {
    let repo = MiniRepo::new("bench");
    repo.write(
        "crates/bench/src/timing.rs",
        include_str!("../fixtures/r2_positive.rs"),
    );
    repo.write(
        "crates/mac/src/timing.rs",
        include_str!("../fixtures/r2_positive.rs"),
    );
    let empty = BTreeMap::new();
    let r = run(&repo.root, &empty).unwrap();
    assert!(
        r.new.iter().all(|f| f.path.starts_with("crates/mac/")),
        "{:?}",
        r.new
    );
    assert_eq!(r.new.len(), 5);
}
