//! Engine-level round-trip tests: the parser must digest every first-party
//! file in the workspace without panicking, with faithful spans, and
//! deterministically. This is the fixed point that lets the rule catalogue
//! trust the AST.

use std::fs;

use powifi_lint::ast::{self, ItemKind};
use powifi_lint::rules::Rule;
use powifi_lint::{collect_files, find_root, lexer};

fn workspace_files() -> Vec<(String, String)> {
    let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    collect_files(&root)
        .expect("walk workspace")
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&p).expect("read source");
            (rel, src)
        })
        .collect()
}

#[test]
fn every_first_party_file_parses_without_panic() {
    let files = workspace_files();
    assert!(
        files.len() > 100,
        "workspace walk looks broken: {} files",
        files.len()
    );
    for (rel, src) in &files {
        let ast = ast::parse(lexer::lex(src));
        assert!(
            !ast.items.is_empty() || src.trim().is_empty(),
            "{rel}: no items parsed from non-empty file"
        );
    }
}

#[test]
fn spans_stay_inside_the_token_stream() {
    for (rel, src) in workspace_files() {
        let ast = ast::parse(lexer::lex(&src));
        let n = ast.tokens.len();
        let check = |span: (usize, usize), what: &str| {
            assert!(
                span.0 <= span.1 && span.1 <= n,
                "{rel}: {what} span {span:?} escapes {n} tokens"
            );
        };
        for f in &ast.fns {
            check(f.body, "fn body");
            for l in &f.locals {
                check(l.init, "local init");
                assert!(l.tok <= n, "{rel}: local token index");
            }
            for c in &f.closures {
                check(c.tokens, "closure");
                check(c.body, "closure body");
                assert!(
                    c.tokens.0 <= c.body.0 && c.body.1 <= c.tokens.1.max(c.body.1),
                    "{rel}: closure body outside closure span"
                );
            }
            for m in &f.matches {
                check(m.scrutinee, "match scrutinee");
                for a in &m.arms {
                    check(a.pat, "match arm");
                    assert!(a.pat.0 < a.pat.1, "{rel}: empty arm pattern");
                }
            }
        }
        // Item spans nest: every item's token span lies inside the stream
        // and every line is a real 1-based line.
        fn walk(items: &[ast::Item], rel: &str, n: usize) {
            for it in items {
                assert!(it.tokens.1 <= n, "{rel}: item span escapes");
                assert!(
                    it.tokens.0 < it.tokens.1,
                    "{rel}: empty item span for {:?}",
                    it.kind
                );
                walk(&it.children, rel, n);
            }
        }
        walk(&ast.items, &rel, n);
    }
}

#[test]
fn parse_is_deterministic() {
    for (rel, src) in workspace_files().into_iter().take(20) {
        let a = format!("{:?}", ast::parse(lexer::lex(&src)));
        let b = format!("{:?}", ast::parse(lexer::lex(&src)));
        assert_eq!(a, b, "{rel}: nondeterministic parse");
    }
}

#[test]
fn the_tree_yields_sane_aggregate_structure() {
    let files = workspace_files();
    let mut fns = 0usize;
    let mut matches = 0usize;
    let mut uses = 0usize;
    let mut enums = 0usize;
    for (_, src) in &files {
        let ast = ast::parse(lexer::lex(src));
        fns += ast.fns.len();
        matches += ast.fns.iter().map(|f| f.matches.len()).sum::<usize>();
        uses += ast.uses.len();
        fn count_enums(items: &[ast::Item]) -> usize {
            items
                .iter()
                .map(|i| usize::from(matches!(i.kind, ItemKind::Enum)) + count_enums(&i.children))
                .sum()
        }
        enums += count_enums(&ast.items);
    }
    // The workspace is a real codebase: hundreds of fns, dozens of matches
    // and enums. If any of these collapse to ~zero the parser regressed.
    assert!(fns > 500, "only {fns} fns parsed");
    assert!(matches > 50, "only {matches} matches parsed");
    assert!(uses > 200, "only {uses} use bindings parsed");
    assert!(enums > 10, "only {enums} enums parsed");
}

#[test]
fn rule_catalogue_matches_the_committed_snapshot() {
    // `cargo lint --rules` output, pinned so the catalogue, docs, and CI
    // cannot drift silently. Regenerate with:
    //     cargo run -p powifi-lint -- --rules > crates/lint/tests/rules_catalogue.txt
    let mut rendered = String::new();
    for r in Rule::ALL {
        rendered.push_str(&format!("{} ({}): {}\n", r.id(), r.slug(), r.describe()));
    }
    let committed = include_str!("rules_catalogue.txt");
    assert_eq!(
        rendered, committed,
        "rule catalogue drifted from tests/rules_catalogue.txt — regenerate it \
         and update docs/STATIC_ANALYSIS.md"
    );
}

#[test]
fn every_rule_is_documented() {
    let root = find_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let docs = fs::read_to_string(root.join("docs/STATIC_ANALYSIS.md")).expect("docs file");
    for r in Rule::ALL {
        assert!(
            docs.contains(r.id()) && docs.contains(r.slug()),
            "{} ({}) missing from docs/STATIC_ANALYSIS.md",
            r.id(),
            r.slug()
        );
    }
}
