//! Golden-trace corpus: canonical per-seed event/frame traces.
//!
//! Six small, fixed scenarios exercise the main MAC behaviours — solo
//! broadcast, DCF contention, unicast retry, the `IP_Power` queue gate,
//! beacon/power interleaving, and a corrupted collision-heavy channel. Each
//! renders to a compact, fully deterministic JSON document (frame-by-frame
//! trace plus end-of-run counters) that is committed under `tests/golden/`
//! and byte-compared in CI. Any change to MAC timing, backoff, retry or
//! trace accounting shows up as a structural diff against the corpus.
//!
//! Every scenario runs under the conformance checker
//! ([`powifi_sim::conformance`](crate::sim::conformance)); the violation
//! count is part of the rendered document, so a checker regression is a
//! golden drift too.

use powifi_core::{
    dispatch_core_stack, spawn_injector, CoreStackEvent, JitterModel, PowerTrafficConfig,
};
use powifi_mac::{
    enqueue, Dest, Frame, Mac, MacWorld, PayloadTag, Queue, RateController, StationId,
};
use powifi_rf::{Bitrate, Db};
use powifi_sim::conformance;
use powifi_sim::{Dispatch, SimDuration, SimRng, SimTime};
use serde::Value;

/// Trace-ring capacity; scenarios are sized so nothing is ever evicted.
const TRACE_CAP: usize = 512;

struct GoldenWorld {
    mac: Mac,
}

impl Dispatch<CoreStackEvent> for GoldenWorld {
    fn dispatch(&mut self, q: &mut Queue<Self>, ev: CoreStackEvent) {
        dispatch_core_stack(self, q, ev);
    }
}

impl MacWorld for GoldenWorld {
    type Ev = CoreStackEvent;
    fn mac(&self) -> &Mac {
        &self.mac
    }
    fn mac_mut(&mut self) -> &mut Mac {
        &mut self.mac
    }
}

/// One canonical scenario.
pub struct GoldenScenario {
    /// Scenario (and golden file) name.
    pub name: &'static str,
    /// One-line description, embedded in the rendered JSON.
    pub about: &'static str,
    horizon: SimDuration,
    build: fn(&mut GoldenWorld, &mut Queue<GoldenWorld>),
}

/// The full corpus, in render order.
pub fn scenarios() -> Vec<GoldenScenario> {
    vec![
        GoldenScenario {
            name: "solo_broadcast",
            about: "one station saturating an idle channel with power frames",
            horizon: SimDuration::from_millis(5),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                let a = w.mac.add_station(m, RateController::fixed(Bitrate::G54));
                w.mac.enable_trace(m, TRACE_CAP);
                q.schedule_repeating(
                    SimTime::ZERO,
                    SimDuration::from_micros(400),
                    move |w: &mut GoldenWorld, q| {
                        if w.mac.queue_depth(a) < 3 {
                            enqueue(w, q, a, Frame::power(a, 1400, Bitrate::G54));
                        }
                    },
                );
            },
        },
        GoldenScenario {
            name: "contention_pair",
            about: "two stations contending for one channel via DCF backoff",
            horizon: SimDuration::from_millis(5),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                for rate in [Bitrate::G54, Bitrate::G24] {
                    let sta = w.mac.add_station(m, RateController::fixed(rate));
                    q.schedule_repeating(
                        SimTime::ZERO,
                        SimDuration::from_micros(500),
                        move |w: &mut GoldenWorld, q| {
                            if w.mac.queue_depth(sta) < 3 {
                                enqueue(w, q, sta, Frame::power(sta, 1200, rate));
                            }
                        },
                    );
                }
                w.mac.enable_trace(powifi_mac::MediumId(0), TRACE_CAP);
            },
        },
        GoldenScenario {
            name: "unicast_retry",
            about: "unicast over a dead link: full retry ladder then give-up",
            horizon: SimDuration::from_millis(20),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                let a = w.mac.add_station(m, RateController::fixed(Bitrate::G12));
                let b = w.mac.add_station(m, RateController::fixed(Bitrate::G12));
                w.mac.set_link_snr(a, b, Db(0.0));
                w.mac.enable_trace(m, TRACE_CAP);
                q.schedule_at(SimTime::ZERO, move |w: &mut GoldenWorld, q| {
                    let f = Frame::data(
                        a,
                        Dest::Unicast(b),
                        PayloadTag {
                            flow: 1,
                            seq: 0,
                            bytes: 600,
                        },
                    );
                    enqueue(w, q, a, f);
                });
            },
        },
        GoldenScenario {
            name: "injector_gated",
            about: "power injector with IP_Power queue threshold 2 at 150 us",
            horizon: SimDuration::from_millis(5),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                let a = w.mac.add_station(m, RateController::fixed(Bitrate::G54));
                w.mac.enable_trace(m, TRACE_CAP);
                let cfg = PowerTrafficConfig {
                    payload_bytes: 1500,
                    bitrate: Bitrate::G54,
                    inter_packet_delay: SimDuration::from_micros(150),
                    qdepth_threshold: Some(2),
                    jitter: JitterModel::none(),
                };
                spawn_injector(
                    q,
                    a,
                    cfg,
                    SimRng::from_seed(0).derive("golden-injector"),
                    SimTime::ZERO,
                );
            },
        },
        GoldenScenario {
            name: "beacons_and_power",
            about: "AP beacons interleaved with a second station's power frames",
            horizon: SimDuration::from_millis(10),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                let ap = w.mac.add_station(m, RateController::fixed(Bitrate::B1));
                let inj = w.mac.add_station(m, RateController::fixed(Bitrate::G24));
                w.mac.enable_trace(m, TRACE_CAP);
                powifi_mac::start_beacons(
                    q,
                    ap,
                    SimTime::ZERO,
                    SimDuration::from_micros(2_000),
                    Bitrate::B1,
                );
                q.schedule_repeating(
                    SimTime::ZERO,
                    SimDuration::from_micros(800),
                    move |w: &mut GoldenWorld, q| {
                        if w.mac.queue_depth(inj) < 2 {
                            enqueue(w, q, inj, Frame::power(inj, 1000, Bitrate::G24));
                        }
                    },
                );
            },
        },
        GoldenScenario {
            name: "collision_storm",
            about: "five stations on a channel with 20% external corruption",
            horizon: SimDuration::from_millis(8),
            build: |w, q| {
                let m = w.mac.add_medium(SimDuration::from_millis(1));
                w.mac.set_corruption(m, 0.2);
                w.mac.enable_trace(m, TRACE_CAP);
                for i in 0..5u32 {
                    let rate = if i % 2 == 0 {
                        Bitrate::G24
                    } else {
                        Bitrate::G6
                    };
                    let sta = w.mac.add_station(m, RateController::fixed(rate));
                    q.schedule_repeating(
                        SimTime::from_micros(u64::from(i) * 37),
                        SimDuration::from_micros(600),
                        move |w: &mut GoldenWorld, q| {
                            if w.mac.queue_depth(sta) < 2 {
                                enqueue(w, q, sta, Frame::power(sta, 900, rate));
                            }
                        },
                    );
                }
            },
        },
    ]
}

/// Render a scenario's structured observability trace
/// ([`powifi_sim::obs::trace`](crate::sim::obs::trace)) as JSONL, exactly
/// as a `--trace` capture of the same simulation would produce it. Fully
/// deterministic — byte-compared against `tests/golden/<name>.trace.jsonl`
/// in CI. Panics on an unknown name.
pub fn render_trace(name: &str) -> String {
    let sc = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown golden scenario {name:?}"));
    let ((), jsonl) = powifi_sim::obs::trace::capture_jsonl(|| {
        let mut w = GoldenWorld {
            mac: Mac::new(SimRng::from_seed(0).derive(sc.name)),
        };
        let mut q = Queue::new();
        (sc.build)(&mut w, &mut q);
        q.run_until(&mut w, SimTime::ZERO + sc.horizon);
    });
    jsonl
}

/// Render a scenario's sim-time span profile
/// ([`powifi_sim::obs::prof`](crate::sim::obs::prof)) as one line of JSON
/// plus trailing newline — the snapshot a `--prof` capture of the same
/// simulation would record. Wall timing stays off, so the output is fully
/// deterministic and byte-compared against
/// `tests/golden/<name>.prof.jsonl` in CI. Panics on an unknown name.
pub fn render_prof(name: &str) -> String {
    let sc = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown golden scenario {name:?}"));
    let ((), snap) = powifi_sim::obs::prof::capture(|| {
        let mut w = GoldenWorld {
            mac: Mac::new(SimRng::from_seed(0).derive(sc.name)),
        };
        let mut q = Queue::new();
        (sc.build)(&mut w, &mut q);
        q.run_until(&mut w, SimTime::ZERO + sc.horizon);
    });
    snap.to_json() + "\n"
}

/// Render a scenario by name to its canonical JSON document (trailing
/// newline included). Panics on an unknown name.
pub fn render(name: &str) -> String {
    let sc = scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown golden scenario {name:?}"));
    render_scenario(&sc)
}

fn render_scenario(sc: &GoldenScenario) -> String {
    // Run under the checker in an isolated sink; restore the caller's state
    // so golden rendering composes with an enclosing checked test.
    let was_enabled = conformance::enabled();
    let saved = conformance::take();
    conformance::set_enabled(true);

    let mut w = GoldenWorld {
        mac: Mac::new(SimRng::from_seed(0).derive(sc.name)),
    };
    let mut q = Queue::new();
    (sc.build)(&mut w, &mut q);
    powifi_mac::conformance::install_audit(&mut q, SimDuration::from_millis(1));
    let end = SimTime::ZERO + sc.horizon;
    q.run_until(&mut w, end);
    powifi_mac::conformance::audit_now(&w, end);
    let (violations, _) = conformance::take();
    conformance::set_enabled(was_enabled);
    for v in saved.1 {
        conformance::report(v.rule, v.at, v.detail);
    }

    let mut frames = Vec::new();
    for mi in 0..w.mac.medium_count() {
        let m = powifi_mac::MediumId(mi as u32);
        if let Some(tr) = w.mac.trace(m) {
            for r in tr.records() {
                let dst = match r.dst {
                    Dest::Broadcast => "bcast".to_string(),
                    Dest::Unicast(s) => format!("sta{}", s.0),
                };
                frames.push(Value::Str(format!(
                    "{} sta{} > {} {:?} {}B @{} {}",
                    r.t.as_nanos(),
                    r.src.0,
                    dst,
                    r.kind,
                    r.bytes,
                    r.rate.mbps(),
                    if r.collided { "coll" } else { "ok" },
                )));
            }
        }
    }

    let stations: Vec<Value> = (0..w.mac.station_count())
        .map(|s| {
            let st = w.mac.station(StationId(s as u32));
            Value::Object(vec![
                ("sta".into(), Value::UInt(s as u64)),
                ("frames_sent".into(), Value::UInt(st.frames_sent)),
                ("retransmissions".into(), Value::UInt(st.retransmissions)),
                ("queue_drops".into(), Value::UInt(st.queue_drops)),
            ])
        })
        .collect();
    let mediums: Vec<Value> = (0..w.mac.medium_count())
        .map(|mi| {
            let m = powifi_mac::MediumId(mi as u32);
            Value::Object(vec![
                ("medium".into(), Value::UInt(mi as u64)),
                ("collisions".into(), Value::UInt(w.mac.collisions(m))),
                ("busy_ns".into(), Value::UInt(w.mac.busy_time(m).as_nanos())),
            ])
        })
        .collect();

    let doc = Value::Object(vec![
        ("scenario".into(), Value::Str(sc.name.into())),
        ("about".into(), Value::Str(sc.about.into())),
        ("horizon_ns".into(), Value::UInt(sc.horizon.as_nanos())),
        ("events_executed".into(), Value::UInt(q.executed())),
        ("conformance_violations".into(), Value::UInt(violations)),
        ("frames".into(), Value::Array(frames)),
        ("stations".into(), Value::Array(stations)),
        ("mediums".into(), Value::Array(mediums)),
    ]);
    let mut out = serde_json::to_string_pretty(&doc).expect("golden serialization");
    out.push('\n');
    out
}
