//! Offline inspector for `--prof` span-profile JSONL files (the library
//! behind the `powifi-prof` binary).
//!
//! A prof file is a sequence of line pairs in grid order: a point header
//! (`{"experiment":…,"point":…,"label":…,"seed":…}`) followed by one
//! span-tree snapshot (`{"wall":…,"spans":[…]}`, the output of
//! `powifi_sim::obs::prof::ProfSnapshot::to_json`). This module parses
//! that shape back into a tree and answers the questions the trace
//! inspector answers for traces:
//!
//! * [`render_tree`] — the indented call tree of one point;
//! * [`top`] — hottest spans across a point, flattened to `a;b;c` paths;
//! * [`diff`] — first structural divergence between two files, *ignoring
//!   wall-clock keys* so a release rerun compares clean against a golden;
//! * [`flame`] — folded-stacks text (`path;leaf self_ns`), the input
//!   format flamegraph tooling consumes.

use serde::Value;

/// One span node parsed back from a snapshot line.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (`mac.dcf.tx`, …).
    pub name: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Sim-time attributed directly to this span, nanoseconds.
    pub sim_self_ns: u64,
    /// Sim-time including children, nanoseconds.
    pub sim_total_ns: u64,
    /// Largest single attribution, nanoseconds.
    pub sim_max_ns: u64,
    /// Child spans, in snapshot (name) order.
    pub children: Vec<Span>,
}

/// One profiled grid point: its header plus the parsed span roots.
#[derive(Debug, Clone)]
pub struct ProfPoint {
    /// Experiment name from the header line.
    pub experiment: String,
    /// Position in the full grid.
    pub point: u64,
    /// Point label.
    pub label: String,
    /// Derived seed the point ran with.
    pub seed: u64,
    /// Whether the snapshot carried wall-clock fields.
    pub wall: bool,
    /// Root spans of the point's call tree.
    pub roots: Vec<Span>,
}

/// A fully parsed prof file.
#[derive(Debug, Clone, Default)]
pub struct ParsedProf {
    /// Points in file (= grid) order.
    pub points: Vec<ProfPoint>,
}

fn obj_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(entries: &[(String, Value)], key: &str) -> Option<u64> {
    match obj_get(entries, key)? {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn get_str(entries: &[(String, Value)], key: &str) -> Option<String> {
    match obj_get(entries, key)? {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn parse_span(v: &Value, line: usize) -> Result<Span, String> {
    let Value::Object(fields) = v else {
        return Err(format!("line {line}: span is not an object"));
    };
    let name =
        get_str(fields, "name").ok_or_else(|| format!("line {line}: span missing `name`"))?;
    let need = |key: &str| {
        get_u64(fields, key)
            .ok_or_else(|| format!("line {line}: span `{name}` missing unsigned `{key}`"))
    };
    let mut children = Vec::new();
    if let Some(Value::Array(kids)) = obj_get(fields, "children") {
        for k in kids {
            children.push(parse_span(k, line)?);
        }
    }
    Ok(Span {
        count: need("count")?,
        sim_self_ns: need("sim_self_ns")?,
        sim_total_ns: need("sim_total_ns")?,
        sim_max_ns: need("sim_max_ns")?,
        name,
        children,
    })
}

/// Parse a prof JSONL file. Rejects malformed JSON, missing headers and
/// snapshot lines that don't match the prof schema, naming the offending
/// 1-based line.
pub fn parse(text: &str) -> Result<ParsedProf, String> {
    let mut out = ParsedProf::default();
    let mut pending: Option<(ProfPoint, usize)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = serde_json::from_str(raw).map_err(|e| format!("line {line}: {e}"))?;
        let Value::Object(fields) = &v else {
            return Err(format!("line {line}: expected a JSON object"));
        };
        if obj_get(fields, "experiment").is_some() {
            // Header line. A dangling previous header (no snapshot) is a
            // malformed file.
            if let Some((_, hl)) = pending {
                return Err(format!("line {hl}: point header has no snapshot line"));
            }
            pending = Some((
                ProfPoint {
                    experiment: get_str(fields, "experiment")
                        .ok_or_else(|| format!("line {line}: header `experiment` not a string"))?,
                    point: get_u64(fields, "point")
                        .ok_or_else(|| format!("line {line}: header missing `point`"))?,
                    label: get_str(fields, "label")
                        .ok_or_else(|| format!("line {line}: header missing `label`"))?,
                    seed: get_u64(fields, "seed")
                        .ok_or_else(|| format!("line {line}: header missing `seed`"))?,
                    wall: false,
                    roots: Vec::new(),
                },
                line,
            ));
        } else if obj_get(fields, "spans").is_some() {
            let (mut pt, _) = pending
                .take()
                .ok_or_else(|| format!("line {line}: snapshot with no preceding header"))?;
            pt.wall = matches!(obj_get(fields, "wall"), Some(Value::Bool(true)));
            let Some(Value::Array(spans)) = obj_get(fields, "spans") else {
                return Err(format!("line {line}: `spans` is not an array"));
            };
            for s in spans {
                pt.roots.push(parse_span(s, line)?);
            }
            out.points.push(pt);
        } else {
            return Err(format!(
                "line {line}: neither a point header nor a snapshot"
            ));
        }
    }
    if let Some((_, hl)) = pending {
        return Err(format!("line {hl}: point header has no snapshot line"));
    }
    Ok(out)
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

fn render_span(out: &mut String, span: &Span, depth: usize) {
    out.push_str(&format!(
        "{:indent$}{} count={} total={} self={} max={}\n",
        "",
        span.name,
        span.count,
        fmt_ns(span.sim_total_ns),
        fmt_ns(span.sim_self_ns),
        fmt_ns(span.sim_max_ns),
        indent = depth * 2
    ));
    for c in &span.children {
        render_span(out, c, depth + 1);
    }
}

/// Indented call tree of one point.
pub fn render_tree(pt: &ProfPoint) -> String {
    let mut out = format!(
        "point {} ({}) seed={}\n",
        pt.point,
        if pt.label.is_empty() {
            "<anon>"
        } else {
            &pt.label
        },
        pt.seed
    );
    if pt.roots.is_empty() {
        out.push_str("  (no spans)\n");
    }
    for r in &pt.roots {
        render_span(&mut out, r, 1);
    }
    out
}

fn flatten_into<'a>(prefix: &str, span: &'a Span, out: &mut Vec<(String, &'a Span)>) {
    let path = if prefix.is_empty() {
        span.name.clone()
    } else {
        format!("{prefix};{}", span.name)
    };
    out.push((path.clone(), span));
    for c in &span.children {
        flatten_into(&path, c, out);
    }
}

/// All spans of a point as `(path, span)` pairs, `a;b;c` path syntax.
pub fn flatten(pt: &ProfPoint) -> Vec<(String, &Span)> {
    let mut out = Vec::new();
    for r in &pt.roots {
        flatten_into("", r, &mut out);
    }
    out
}

/// Sort key for [`top`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopBy {
    /// Self sim-time (default — where the simulated time actually went).
    SelfTime,
    /// Inclusive sim-time.
    Total,
    /// Entry count.
    Count,
}

impl TopBy {
    /// Parse a `--by` value.
    pub fn from_flag(s: &str) -> Result<TopBy, String> {
        match s {
            "self" => Ok(TopBy::SelfTime),
            "total" => Ok(TopBy::Total),
            "count" => Ok(TopBy::Count),
            other => Err(format!("--by must be self|total|count, got `{other}`")),
        }
    }
}

/// The `n` hottest span paths of one point, one line each. Ties break on
/// path, so output is deterministic.
pub fn top(pt: &ProfPoint, by: TopBy, n: usize) -> String {
    let mut rows = flatten(pt);
    rows.sort_by(|(pa, a), (pb, b)| {
        let ka = match by {
            TopBy::SelfTime => a.sim_self_ns,
            TopBy::Total => a.sim_total_ns,
            TopBy::Count => a.count,
        };
        let kb = match by {
            TopBy::SelfTime => b.sim_self_ns,
            TopBy::Total => b.sim_total_ns,
            TopBy::Count => b.count,
        };
        kb.cmp(&ka).then_with(|| pa.cmp(pb))
    });
    let mut out = String::new();
    for (path, s) in rows.into_iter().take(n) {
        out.push_str(&format!(
            "{:>12} {:>12} {:>8}  {}\n",
            fmt_ns(s.sim_self_ns),
            fmt_ns(s.sim_total_ns),
            s.count,
            path
        ));
    }
    out
}

/// Folded-stacks text of one point: `a;b;c self_ns` per span with nonzero
/// self time (leaves always emitted) — the flamegraph input format.
pub fn flame(pt: &ProfPoint) -> String {
    let mut out = String::new();
    for (path, s) in flatten(pt) {
        if s.sim_self_ns > 0 || s.children.is_empty() {
            out.push_str(&format!("{path} {}\n", s.sim_self_ns));
        }
    }
    out
}

fn diff_spans(path: &str, a: &[Span], b: &[Span]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("{path}: {} child span(s) vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        let here = format!("{path}/{}", x.name);
        if x.name != y.name {
            return Some(format!("{path}: span `{}` vs `{}`", x.name, y.name));
        }
        if x.count != y.count {
            return Some(format!("{here}: count {} vs {}", x.count, y.count));
        }
        if x.sim_self_ns != y.sim_self_ns {
            return Some(format!(
                "{here}: sim_self_ns {} vs {}",
                x.sim_self_ns, y.sim_self_ns
            ));
        }
        if x.sim_total_ns != y.sim_total_ns {
            return Some(format!(
                "{here}: sim_total_ns {} vs {}",
                x.sim_total_ns, y.sim_total_ns
            ));
        }
        if x.sim_max_ns != y.sim_max_ns {
            return Some(format!(
                "{here}: sim_max_ns {} vs {}",
                x.sim_max_ns, y.sim_max_ns
            ));
        }
        if let Some(d) = diff_spans(&here, &x.children, &y.children) {
            return Some(d);
        }
    }
    None
}

/// First structural divergence between two prof files, or `None` when they
/// agree. Wall-clock fields are ignored by construction (the parser never
/// reads them), so a wall-mode capture diffs clean against a sim-only one
/// as long as the sim-time tree matches.
pub fn diff(a: &ParsedProf, b: &ParsedProf) -> Option<String> {
    if a.points.len() != b.points.len() {
        return Some(format!(
            "point count differs: {} vs {}",
            a.points.len(),
            b.points.len()
        ));
    }
    for (i, (x, y)) in a.points.iter().zip(&b.points).enumerate() {
        if x.experiment != y.experiment || x.point != y.point || x.label != y.label {
            return Some(format!(
                "point {i}: header ({}, {}, {}) vs ({}, {}, {})",
                x.experiment, x.point, x.label, y.experiment, y.point, y.label
            ));
        }
        if x.seed != y.seed {
            return Some(format!("point {i}: seed {} vs {}", x.seed, y.seed));
        }
        if let Some(d) = diff_spans(&format!("point {i}"), &x.roots, &y.roots) {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = r#"{"experiment":"fig05","point":0,"label":"r=1","seed":7}"#;
    const SNAP: &str = r#"{"wall":false,"spans":[{"name":"sim.event","count":3,"sim_self_ns":100,"sim_total_ns":400,"sim_max_ns":90,"children":[{"name":"mac.dcf.tx","count":2,"sim_self_ns":300,"sim_total_ns":300,"sim_max_ns":200,"children":[]}]}]}"#;

    fn sample() -> String {
        format!("{HEADER}\n{SNAP}\n")
    }

    #[test]
    fn parses_header_snapshot_pairs() {
        let p = parse(&sample()).unwrap();
        assert_eq!(p.points.len(), 1);
        let pt = &p.points[0];
        assert_eq!(pt.experiment, "fig05");
        assert_eq!(pt.seed, 7);
        assert!(!pt.wall);
        assert_eq!(pt.roots.len(), 1);
        assert_eq!(pt.roots[0].children[0].name, "mac.dcf.tx");
    }

    #[test]
    fn parse_errors_name_the_line() {
        let e = parse("{\"bogus\":1}\n").unwrap_err();
        assert!(e.starts_with("line 1:"), "{e}");
        let e = parse(&format!("{HEADER}\n")).unwrap_err();
        assert!(e.contains("no snapshot"), "{e}");
        let e = parse(&format!("{SNAP}\n")).unwrap_err();
        assert!(e.contains("no preceding header"), "{e}");
        let bad_span = r#"{"wall":false,"spans":[{"name":"x","count":1}]}"#;
        let e = parse(&format!("{HEADER}\n{bad_span}\n")).unwrap_err();
        assert!(e.contains("line 2") && e.contains("sim_self_ns"), "{e}");
    }

    #[test]
    fn tree_top_and_flame_render() {
        let p = parse(&sample()).unwrap();
        let tree = render_tree(&p.points[0]);
        assert!(tree.contains("sim.event count=3"), "{tree}");
        assert!(tree.contains("  mac.dcf.tx"), "{tree}");

        let by_self = top(&p.points[0], TopBy::SelfTime, 10);
        // mac.dcf.tx has more self time than sim.event.
        let first = by_self.lines().next().unwrap();
        assert!(first.ends_with("sim.event;mac.dcf.tx"), "{by_self}");
        let by_count = top(&p.points[0], TopBy::Count, 1);
        assert!(by_count.trim_end().ends_with("sim.event"), "{by_count}");

        let folded = flame(&p.points[0]);
        assert_eq!(folded, "sim.event 100\nsim.event;mac.dcf.tx 300\n");
    }

    #[test]
    fn diff_ignores_wall_but_not_sim_time() {
        let a = parse(&sample()).unwrap();
        // Same tree with wall fields present: still identical.
        let wall_snap = SNAP.replace("\"wall\":false", "\"wall\":true").replace(
            "\"sim_max_ns\":200,",
            "\"sim_max_ns\":200,\"wall_ms\":1.5,\"max_wall_ms\":1.0,",
        );
        let b = parse(&format!("{HEADER}\n{wall_snap}\n")).unwrap();
        assert_eq!(diff(&a, &b), None);
        // A sim-time change is reported with its path.
        let c = parse(&sample().replace("\"sim_self_ns\":300", "\"sim_self_ns\":301")).unwrap();
        let msg = diff(&a, &c).unwrap();
        assert!(
            msg.contains("mac.dcf.tx") && msg.contains("sim_self_ns"),
            "{msg}"
        );
        // Point-count mismatch is reported.
        let d = parse(&format!("{}{}", sample(), sample())).unwrap();
        assert!(diff(&a, &d).unwrap().contains("point count"));
    }
}
