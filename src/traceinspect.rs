//! Parsing and analysis of `powifi_sim::obs::trace` JSONL files — the
//! library behind the `powifi-trace` inspector binary.
//!
//! A trace file is a sequence of JSON lines. Two line shapes exist:
//!
//! * **Point headers** written by the bench sweep engine
//!   (`{"experiment":…,"point":…,"label":…,"seed":…}`) introducing one
//!   grid point's records; and
//! * **Records** (`{"t":…,"layer":…,"kind":…,…}`) from
//!   `TraceRecord::to_json_line`.
//!
//! A headerless file (e.g. a raw `capture_jsonl` dump) parses as one
//! anonymous point. All analysis here is pure and deterministic, so the
//! inspector can double as a conformance oracle: [`occupancy`] recomputes
//! the paper's per-channel Σ sizeᵢ/rateᵢ airtime metric from `tx_start`
//! records using the *same* nanosecond rounding as the MAC's own
//! accounting (`tshark_airtime`), which lets tests cross-check the two to
//! 1e-9 (see `tests/trace_crosscheck.rs`).

use powifi_sim::SimDuration;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed trace line (a record, not a header).
#[derive(Debug, Clone, PartialEq)]
pub struct Rec {
    /// Sim-time timestamp in nanoseconds.
    pub t_ns: u64,
    /// Emitting subsystem: `mac`, `core`, `harvest`, `net`.
    pub layer: String,
    /// Event kind tag, e.g. `tx_start`.
    pub kind: String,
    /// Event-specific fields, in file order, excluding `t`/`layer`/`kind`.
    pub fields: Vec<(String, Value)>,
    /// The raw line, for faithful re-printing.
    pub raw: String,
    /// 1-based line number in the source file, so schema violations point
    /// straight at the offending line.
    pub line: usize,
}

impl Rec {
    /// An event field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// An event field as u64, when present and integral.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// An event field as f64, when present and numeric.
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        match self.field(name)? {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The record's primary entity id (`sta`, `iface` or `flow`), if any.
    pub fn entity(&self) -> Option<u64> {
        self.field_u64("sta")
            .or_else(|| self.field_u64("iface"))
            .or_else(|| self.field_u64("flow"))
    }
}

/// One grid point's worth of records.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Experiment name from the header (empty for headerless traces).
    pub experiment: String,
    /// Grid index from the header.
    pub index: u64,
    /// Point label from the header.
    pub label: String,
    /// Per-point seed from the header.
    pub seed: u64,
    /// The point's records, in file order.
    pub records: Vec<Rec>,
}

/// A fully parsed trace file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedTrace {
    /// The points, in file order.
    pub points: Vec<TracePoint>,
}

impl ParsedTrace {
    /// All records across every point, in file order.
    pub fn records(&self) -> impl Iterator<Item = &Rec> {
        self.points.iter().flat_map(|p| p.records.iter())
    }
}

fn anonymous_point() -> TracePoint {
    TracePoint {
        experiment: String::new(),
        index: 0,
        label: String::new(),
        seed: 0,
        records: Vec::new(),
    }
}

/// Parse a trace file. Returns `Err` with a line number and reason on the
/// first malformed line.
pub fn parse(text: &str) -> Result<ParsedTrace, String> {
    let mut out = ParsedTrace::default();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::from_str(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let Value::Object(entries) = v else {
            return Err(format!("line {lineno}: not a JSON object"));
        };
        let get = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if let Some(Value::UInt(index)) = get("point") {
            // Point header.
            let text_of = |name: &str| match get(name) {
                Some(Value::Str(s)) => s.clone(),
                _ => String::new(),
            };
            let uint_of = |name: &str| match get(name) {
                Some(Value::UInt(u)) => *u,
                _ => 0,
            };
            out.points.push(TracePoint {
                experiment: text_of("experiment"),
                index: *index,
                label: text_of("label"),
                seed: uint_of("seed"),
                records: Vec::new(),
            });
            continue;
        }
        let t_ns = match get("t") {
            Some(Value::UInt(t)) => *t,
            _ => return Err(format!("line {lineno}: record missing integer `t`")),
        };
        let (layer, kind) = match (get("layer"), get("kind")) {
            (Some(Value::Str(l)), Some(Value::Str(k))) => (l.clone(), k.clone()),
            _ => return Err(format!("line {lineno}: record missing `layer`/`kind`")),
        };
        let fields = entries
            .iter()
            .filter(|(k, _)| k != "t" && k != "layer" && k != "kind")
            .cloned()
            .collect();
        if out.points.is_empty() {
            out.points.push(anonymous_point());
        }
        out.points.last_mut().unwrap().records.push(Rec {
            t_ns,
            layer,
            kind,
            fields,
            raw: line.to_string(),
            line: lineno,
        });
    }
    Ok(out)
}

/// Record filter for `powifi-trace filter`: every set criterion must match.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    /// Emitting layer (`mac`/`core`/`harvest`/`net`).
    pub layer: Option<String>,
    /// Event kind tag.
    pub kind: Option<String>,
    /// Primary entity id (station / interface / flow).
    pub entity: Option<u64>,
    /// Inclusive lower time bound, nanoseconds.
    pub from_ns: Option<u64>,
    /// Exclusive upper time bound, nanoseconds.
    pub to_ns: Option<u64>,
}

impl Filter {
    /// Does `rec` satisfy every set criterion?
    pub fn matches(&self, rec: &Rec) -> bool {
        self.layer.as_deref().is_none_or(|l| rec.layer == l)
            && self.kind.as_deref().is_none_or(|k| rec.kind == k)
            && self.entity.is_none_or(|e| rec.entity() == Some(e))
            && self.from_ns.is_none_or(|f| rec.t_ns >= f)
            && self.to_ns.is_none_or(|t| rec.t_ns < t)
    }
}

/// One event kind's expected shape: `(kind, layer, fields)` with fields in
/// emission order.
type KindSchema = (
    &'static str,
    &'static str,
    &'static [(&'static str, FieldTy)],
);

/// Expected schema of every event kind. Mirrors
/// `TraceRecord::to_json_line` — extend both together.
const SCHEMA: &[KindSchema] = &[
    (
        "tx_start",
        "mac",
        &[
            ("medium", FieldTy::U),
            ("sta", FieldTy::U),
            ("frame", FieldTy::S),
            ("bytes", FieldTy::U),
            ("rate_mbps", FieldTy::F),
            ("collided", FieldTy::B),
        ],
    ),
    (
        "tx_end",
        "mac",
        &[("medium", FieldTy::U), ("sta", FieldTy::U)],
    ),
    (
        "backoff_draw",
        "mac",
        &[
            ("medium", FieldTy::U),
            ("sta", FieldTy::U),
            ("slots", FieldTy::U),
            ("cw", FieldTy::U),
        ],
    ),
    (
        "difs_defer",
        "mac",
        &[("medium", FieldTy::U), ("sta", FieldTy::U)],
    ),
    ("ack", "mac", &[("medium", FieldTy::U), ("sta", FieldTy::U)]),
    (
        "retry",
        "mac",
        &[
            ("medium", FieldTy::U),
            ("sta", FieldTy::U),
            ("retries", FieldTy::U),
        ],
    ),
    (
        "drop",
        "mac",
        &[
            ("medium", FieldTy::U),
            ("sta", FieldTy::U),
            ("reason", FieldTy::S),
        ],
    ),
    (
        "injector_gate",
        "core",
        &[
            ("iface", FieldTy::U),
            ("open", FieldTy::B),
            ("qdepth", FieldTy::U),
        ],
    ),
    (
        "power_packet",
        "core",
        &[("iface", FieldTy::U), ("bytes", FieldTy::U)],
    ),
    (
        "storage_cross",
        "harvest",
        &[
            ("volts", FieldTy::F),
            ("threshold", FieldTy::F),
            ("rising", FieldTy::B),
        ],
    ),
    ("cold_start", "harvest", &[("volts", FieldTy::F)]),
    ("brownout", "harvest", &[("volts", FieldTy::F)]),
    (
        "mppt_update",
        "harvest",
        &[("vref_volts", FieldTy::F), ("factor", FieldTy::F)],
    ),
    (
        "tcp_rto",
        "net",
        &[
            ("flow", FieldTy::U),
            ("rto_s", FieldTy::F),
            ("cwnd", FieldTy::F),
        ],
    ),
    (
        "tcp_cwnd",
        "net",
        &[
            ("flow", FieldTy::U),
            ("cwnd", FieldTy::F),
            ("ssthresh", FieldTy::F),
            ("cause", FieldTy::S),
        ],
    ),
];

/// Coarse JSON type class for schema validation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FieldTy {
    /// Unsigned integer.
    U,
    /// Number (float or integer; non-finite floats serialize as `null`).
    F,
    /// String.
    S,
    /// Boolean.
    B,
}

fn type_ok(ty: FieldTy, v: &Value) -> bool {
    match ty {
        FieldTy::U => matches!(v, Value::UInt(_)),
        FieldTy::F => matches!(
            v,
            Value::Float(_) | Value::UInt(_) | Value::Int(_) | Value::Null
        ),
        FieldTy::S => matches!(v, Value::Str(_)),
        FieldTy::B => matches!(v, Value::Bool(_)),
    }
}

/// Validate every record against the event schema. Returns one message per
/// problem (empty = clean): unknown kinds, wrong layer, missing/extra
/// fields, wrong field types.
pub fn validate(trace: &ParsedTrace) -> Vec<String> {
    let mut problems = Vec::new();
    for (pi, point) in trace.points.iter().enumerate() {
        for (ri, rec) in point.records.iter().enumerate() {
            let loc = format!("line {}: point {pi} record {ri} ({})", rec.line, rec.kind);
            let Some((_, layer, fields)) = SCHEMA.iter().find(|(k, _, _)| *k == rec.kind) else {
                problems.push(format!("{loc}: unknown event kind"));
                continue;
            };
            if rec.layer != *layer {
                problems.push(format!("{loc}: layer `{}` should be `{layer}`", rec.layer));
            }
            for (name, ty) in *fields {
                match rec.field(name) {
                    None => problems.push(format!("{loc}: missing field `{name}`")),
                    Some(v) if !type_ok(*ty, v) => {
                        problems.push(format!("{loc}: field `{name}` has wrong type"))
                    }
                    Some(_) => {}
                }
            }
            for (name, _) in &rec.fields {
                if !fields.iter().any(|(n, _)| n == name) {
                    problems.push(format!("{loc}: unexpected field `{name}`"));
                }
            }
        }
    }
    problems
}

/// Per-`(layer, kind)` record counts plus the trace's time span — the
/// `summary` subcommand's data.
pub fn summarize(trace: &ParsedTrace) -> String {
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut total = 0u64;
    for rec in trace.records() {
        *counts
            .entry((rec.layer.clone(), rec.kind.clone()))
            .or_insert(0) += 1;
        t_min = t_min.min(rec.t_ns);
        t_max = t_max.max(rec.t_ns);
        total += 1;
    }
    let mut out = String::new();
    let _ = writeln!(out, "points:  {}", trace.points.len());
    let _ = writeln!(out, "records: {total}");
    if total > 0 {
        let _ = writeln!(
            out,
            "span:    {:.6}s .. {:.6}s",
            t_min as f64 / 1e9,
            t_max as f64 / 1e9
        );
    }
    for ((layer, kind), n) in &counts {
        let _ = writeln!(out, "  {layer:>7}/{kind:<13} {n}");
    }
    out
}

/// Recompute per-channel occupancy from `tx_start` records with the
/// paper's Σ sizeᵢ/rateᵢ formula over `[0, end_ns)`, optionally for one
/// station only. Per-frame airtime uses the exact nanosecond rounding of
/// `powifi_mac::tshark_airtime`, so the result matches the MAC's own
/// accounting to float-summation error.
pub fn occupancy(point: &TracePoint, end_ns: u64, sta: Option<u64>) -> BTreeMap<u64, f64> {
    let mut per_medium: BTreeMap<u64, f64> = BTreeMap::new();
    for rec in &point.records {
        if rec.kind != "tx_start" || rec.t_ns >= end_ns {
            continue;
        }
        if let Some(want) = sta {
            if rec.field_u64("sta") != Some(want) {
                continue;
            }
        }
        let (Some(medium), Some(bytes), Some(rate_mbps)) = (
            rec.field_u64("medium"),
            rec.field_u64("bytes"),
            rec.field_f64("rate_mbps"),
        ) else {
            continue;
        };
        // Exactly tshark_airtime(bytes, rate): round to whole nanoseconds
        // first, then convert to seconds — matching OccupancyMonitor.
        let airtime = SimDuration::from_micros_f64((8 * bytes) as f64 / rate_mbps);
        *per_medium.entry(medium).or_insert(0.0) += airtime.as_secs_f64();
    }
    let span = end_ns as f64 / 1e9;
    for v in per_medium.values_mut() {
        *v /= span;
    }
    per_medium
}

/// Deterministically interleave several traces' records into one
/// timeline — the engine of `powifi-trace merge`, for stitching
/// per-shard or per-deployment JSONL files from city / fleet runs back
/// together.
///
/// The sort key is `(t, seq, source index, source line)`: `seq` is the
/// record's own `seq` field when it carries one (records captured from
/// an `obs::stream` wire session do), falling back to the source-file
/// line number, so plain trace files keep their file order at equal
/// timestamps and ties across files resolve by argument position. The
/// key is total, so the merged order is a pure function of the inputs —
/// re-running the merge reproduces it byte for byte. Point headers are
/// not carried over: the merged stream is one anonymous timeline.
pub fn merge(traces: &[ParsedTrace]) -> Vec<&Rec> {
    let mut keyed: Vec<(u64, u64, usize, usize, &Rec)> = Vec::new();
    for (src, trace) in traces.iter().enumerate() {
        for rec in trace.records() {
            let seq = rec.field_u64("seq").unwrap_or(rec.line as u64);
            keyed.push((rec.t_ns, seq, src, rec.line, rec));
        }
    }
    keyed.sort_by_key(|&(t, seq, src, line, _)| (t, seq, src, line));
    keyed.into_iter().map(|(_, _, _, _, r)| r).collect()
}

/// Structurally diff two traces. Returns `None` when identical, else a
/// human-readable description of the first divergence.
pub fn diff(a: &ParsedTrace, b: &ParsedTrace) -> Option<String> {
    if a.points.len() != b.points.len() {
        return Some(format!(
            "point count differs: {} vs {}",
            a.points.len(),
            b.points.len()
        ));
    }
    for (pi, (pa, pb)) in a.points.iter().zip(&b.points).enumerate() {
        if (pa.experiment.as_str(), &pa.label, pa.seed)
            != (pb.experiment.as_str(), &pb.label, pb.seed)
        {
            return Some(format!(
                "point {pi} header differs: {}/{}#{} vs {}/{}#{}",
                pa.experiment, pa.label, pa.seed, pb.experiment, pb.label, pb.seed
            ));
        }
        for (ri, (ra, rb)) in pa.records.iter().zip(&pb.records).enumerate() {
            if ra.raw != rb.raw {
                return Some(format!(
                    "point {pi} ({}) record {ri} differs:\n  a: {}\n  b: {}",
                    pa.label, ra.raw, rb.raw
                ));
            }
        }
        if pa.records.len() != pb.records.len() {
            return Some(format!(
                "point {pi} ({}) record count differs: {} vs {}",
                pa.label,
                pa.records.len(),
                pb.records.len()
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use powifi_sim::obs::trace::{FrameClass, TraceEvent, TraceRecord};
    use powifi_sim::SimTime;

    fn sample_jsonl() -> String {
        let recs = [
            TraceRecord {
                at: SimTime::from_micros(10),
                event: TraceEvent::MacTxStart {
                    medium: 0,
                    sta: 1,
                    frame: FrameClass::Power,
                    bytes: 1536,
                    rate_mbps: 54.0,
                    collided: false,
                },
            },
            TraceRecord {
                at: SimTime::from_micros(238),
                event: TraceEvent::MacTxEnd { medium: 0, sta: 1 },
            },
            TraceRecord {
                at: SimTime::from_micros(300),
                event: TraceEvent::InjectorGate {
                    iface: 1,
                    open: false,
                    qdepth: 6,
                },
            },
        ];
        let mut s =
            String::from("{\"experiment\":\"demo\",\"point\":0,\"label\":\"p0\",\"seed\":7}\n");
        for r in &recs {
            s.push_str(&r.to_json_line());
            s.push('\n');
        }
        s
    }

    #[test]
    fn parses_headers_and_records() {
        let t = parse(&sample_jsonl()).unwrap();
        assert_eq!(t.points.len(), 1);
        let p = &t.points[0];
        assert_eq!(
            (p.experiment.as_str(), p.label.as_str(), p.seed),
            ("demo", "p0", 7)
        );
        assert_eq!(p.records.len(), 3);
        assert_eq!(p.records[0].kind, "tx_start");
        assert_eq!(p.records[0].field_u64("bytes"), Some(1536));
        assert_eq!(p.records[2].entity(), Some(1));
    }

    #[test]
    fn headerless_trace_becomes_one_anonymous_point() {
        let body: String = sample_jsonl()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        let t = parse(&body).unwrap();
        assert_eq!(t.points.len(), 1);
        assert_eq!(t.points[0].label, "");
        assert_eq!(t.points[0].records.len(), 3);
    }

    #[test]
    fn rendered_events_validate_cleanly() {
        let t = parse(&sample_jsonl()).unwrap();
        assert_eq!(validate(&t), Vec::<String>::new());
    }

    #[test]
    fn validate_flags_schema_drift() {
        let mangled = sample_jsonl()
            .replace("\"qdepth\":6", "\"qdepth\":\"six\"")
            .replace("\"kind\":\"tx_end\"", "\"kind\":\"tx_stop\"");
        let t = parse(&mangled).unwrap();
        let problems = validate(&t);
        assert!(problems.iter().any(|p| p.contains("unknown event kind")));
        assert!(problems
            .iter()
            .any(|p| p.contains("`qdepth` has wrong type")));
        // Problems carry the 1-based source line: the mangled tx_end is
        // line 3 (after the header), the mangled injector_gate line 4.
        assert!(
            problems
                .iter()
                .any(|p| p.starts_with("line 3:") && p.contains("unknown event kind")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.starts_with("line 4:") && p.contains("`qdepth`")),
            "{problems:?}"
        );
    }

    #[test]
    fn filter_narrows_by_every_criterion() {
        let t = parse(&sample_jsonl()).unwrap();
        let recs: Vec<&Rec> = t.records().collect();
        let by_layer = Filter {
            layer: Some("core".into()),
            ..Filter::default()
        };
        assert_eq!(recs.iter().filter(|r| by_layer.matches(r)).count(), 1);
        let by_window = Filter {
            from_ns: Some(200_000),
            to_ns: Some(299_000),
            ..Filter::default()
        };
        assert_eq!(recs.iter().filter(|r| by_window.matches(r)).count(), 1);
        let by_entity = Filter {
            entity: Some(1),
            ..Filter::default()
        };
        assert_eq!(recs.iter().filter(|r| by_entity.matches(r)).count(), 3);
    }

    #[test]
    fn occupancy_uses_tshark_rounding() {
        let t = parse(&sample_jsonl()).unwrap();
        let occ = occupancy(&t.points[0], 1_000_000_000, Some(1));
        // One 1536 B frame at 54 Mbps over 1 s.
        let expect = powifi_mac::tshark_airtime(1536, powifi_rf::Bitrate::G54).as_secs_f64();
        assert!((occ[&0] - expect).abs() < 1e-15, "{} vs {expect}", occ[&0]);
    }

    #[test]
    fn diff_finds_first_divergence() {
        let a = parse(&sample_jsonl()).unwrap();
        assert_eq!(diff(&a, &a), None);
        let b = parse(&sample_jsonl().replace("\"qdepth\":6", "\"qdepth\":7")).unwrap();
        let msg = diff(&a, &b).expect("must differ");
        assert!(msg.contains("record 2 differs"), "{msg}");
    }

    #[test]
    fn merge_interleaves_by_time_then_seq_then_source() {
        // Two "shards" whose timestamps interleave; equal-time records
        // order by their `seq` field, then by source position.
        let shard_a = parse(concat!(
            "{\"t\":100,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":0,\"sta\":1,\"seq\":4}\n",
            "{\"t\":300,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":0,\"sta\":1,\"seq\":9}\n",
        ))
        .unwrap();
        let shard_b = parse(concat!(
            "{\"t\":100,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":1,\"sta\":2,\"seq\":2}\n",
            "{\"t\":200,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":1,\"sta\":2,\"seq\":7}\n",
        ))
        .unwrap();
        let inputs = [shard_a, shard_b];
        let merged = merge(&inputs);
        let order: Vec<(u64, Option<u64>)> = merged
            .iter()
            .map(|r| (r.t_ns, r.field_u64("seq")))
            .collect();
        assert_eq!(
            order,
            vec![
                (100, Some(2)), // t ties broken by seq: shard_b first
                (100, Some(4)),
                (200, Some(7)),
                (300, Some(9)),
            ]
        );
        // Total key ⇒ rerunning the merge reproduces the bytes exactly.
        let again: Vec<&str> = merge(&inputs).iter().map(|r| r.raw.as_str()).collect();
        let first: Vec<&str> = merged.iter().map(|r| r.raw.as_str()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn merge_without_seq_keeps_file_order_and_argument_order() {
        // Plain trace records (no `seq` field) at equal timestamps keep
        // their per-file line order; across files the earlier argument
        // wins. Line numbers double as the seq fallback, so a line-2
        // record in file B sorts after a line-1 record in file A.
        let a = parse("{\"t\":50,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":0,\"sta\":1}\n")
            .unwrap();
        let b = parse("{\"t\":50,\"layer\":\"mac\",\"kind\":\"ack\",\"medium\":0,\"sta\":2}\n")
            .unwrap();
        let inputs = [a, b];
        let merged = merge(&inputs);
        let stas: Vec<u64> = merged.iter().filter_map(|r| r.field_u64("sta")).collect();
        assert_eq!(stas, vec![1, 2]);
    }

    #[test]
    fn merged_output_reparses_as_one_anonymous_point() {
        let t = parse(&sample_jsonl()).unwrap();
        let inputs = [t.clone(), t];
        let merged = merge(&inputs);
        let text: String = merged.iter().map(|r| format!("{}\n", r.raw)).collect();
        let re = parse(&text).unwrap();
        assert_eq!(re.points.len(), 1);
        assert_eq!(re.points[0].records.len(), 6);
        assert_eq!(validate(&re), Vec::<String>::new());
    }

    #[test]
    fn summary_counts_layers() {
        let t = parse(&sample_jsonl()).unwrap();
        let s = summarize(&t);
        assert!(s.contains("records: 3"));
        assert!(s.contains("mac/tx_start"));
        assert!(s.contains("core/injector_gate"));
    }
}
