//! Deterministic conformance fuzz driver.
//!
//! Generates random — but fully seed-determined — MAC topologies (channels,
//! stations, traffic roles, link qualities, fault injection), runs each one
//! under the runtime invariant checker
//! ([`powifi_sim::conformance`](crate::sim::conformance)), and shrinks any
//! failing case to a smaller topology that still violates, reporting the
//! reproducing seed. No wall-clock anywhere: the same `(base_seed, index)`
//! always produces the same topology and the same verdict, in debug and in
//! release.
//!
//! The driver is a library so tests can call it directly; the
//! `powifi-fuzz` binary wraps it for CI and command-line use.

use powifi_core::{
    dispatch_core_stack, spawn_injector, CoreStackEvent, JitterModel, PowerTrafficConfig,
};
use powifi_mac::world::{enqueue, start_beacons};
use powifi_mac::{
    conformance as mac_conformance, Dest, Frame, Mac, MacTiming, MacWorld, PayloadTag, Queue,
    RateController, StationId,
};
use powifi_rf::{Bitrate, Db};
use powifi_sim::conformance::{self, Violation};
use powifi_sim::{Dispatch, SimDuration, SimRng, SimTime};

/// Rates the generator draws station rate controllers from.
const RATES: [Bitrate; 7] = [
    Bitrate::B1,
    Bitrate::B5_5,
    Bitrate::B11,
    Bitrate::G6,
    Bitrate::G12,
    Bitrate::G24,
    Bitrate::G54,
];

/// What one generated station does.
#[derive(Debug, Clone)]
pub enum Role {
    /// A PoWiFi power-packet injector with the IP_Power queue check.
    Injector {
        /// `IP_Power` queue-depth threshold (`None` = NoQueue mode).
        threshold: Option<usize>,
        /// Inter-packet delay, µs.
        delay_us: u64,
        /// UDP payload size, bytes.
        payload: u32,
        /// Whether the tick delay carries userspace jitter.
        jitter: bool,
    },
    /// Periodically sends unicast data to a same-channel peer.
    Talker {
        /// Which same-channel peer (rank into the other stations, modulo).
        peer_rank: u32,
        /// Enqueue period, µs.
        period_us: u64,
        /// Transport payload bytes per frame.
        bytes: u32,
        /// Link SNR toward the peer, dB.
        snr_db: f64,
    },
    /// Sends 802.11 beacons every 102.4 ms.
    Beacon,
    /// Present on the channel but silent.
    Idle,
}

/// One generated station.
#[derive(Debug, Clone)]
pub struct StaSpec {
    /// Channel index within the topology.
    pub medium: u32,
    /// Fixed transmit rate.
    pub rate: Bitrate,
    /// Traffic role.
    pub role: Role,
}

/// A complete generated topology, determined by its seed.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// The case seed this spec was generated from (also seeds the MAC RNG).
    pub seed: u64,
    /// Number of channels (1–3).
    pub mediums: u32,
    /// Stations, each bound to one channel.
    pub stations: Vec<StaSpec>,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Per-channel external corruption probability.
    pub corruption: Vec<(u32, f64)>,
    /// Use the mixed-b/g protection timing instead of g-only.
    pub mixed_bg: bool,
}

impl TopologySpec {
    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "seed {} · {} channel(s) · {} station(s) · horizon {} · corruption on {} · {}",
            self.seed,
            self.mediums,
            self.stations.len(),
            self.horizon,
            self.corruption.len(),
            if self.mixed_bg { "b/g" } else { "g" },
        )
    }
}

/// Generate the topology for a case seed. Pure: same seed, same spec.
pub fn gen_spec(seed: u64) -> TopologySpec {
    let mut rng = SimRng::from_seed(seed).derive("fuzz-topology");
    let mediums = rng.range(1..=3u32);
    let horizon = SimDuration::from_millis(rng.range(20..=120u64));
    let mixed_bg = rng.chance(0.2);
    let mut stations = Vec::new();
    for medium in 0..mediums {
        let count = rng.range(1..=4u32);
        for _ in 0..count {
            let rate = *rng.choose(&RATES);
            let roll = rng.range(0..100u32);
            let role = if roll < 40 {
                Role::Injector {
                    threshold: if rng.chance(0.8) {
                        Some(rng.range(1..=6u32) as usize)
                    } else {
                        None
                    },
                    delay_us: rng.range(80..=400u64),
                    payload: rng.range(200..=1500u32),
                    jitter: rng.chance(0.5),
                }
            } else if roll < 65 {
                Role::Talker {
                    peer_rank: rng.range(0..8u32),
                    period_us: rng.range(300..=2000u64),
                    bytes: rng.range(100..=1400u32),
                    snr_db: 5.0 + rng.f64() * 35.0,
                }
            } else if roll < 80 {
                Role::Beacon
            } else {
                Role::Idle
            };
            stations.push(StaSpec { medium, rate, role });
        }
    }
    let mut corruption = Vec::new();
    for medium in 0..mediums {
        if rng.chance(0.3) {
            corruption.push((medium, rng.f64() * 0.3));
        }
    }
    TopologySpec {
        seed,
        mediums,
        stations,
        horizon,
        corruption,
        mixed_bg,
    }
}

/// Result of running one topology under the checker.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Total invariant violations observed.
    pub violations: u64,
    /// Up to the first 64 violations verbatim.
    pub retained: Vec<Violation>,
    /// MAC frames sent (sanity signal that the topology did something).
    pub frames: u64,
}

struct FuzzWorld {
    mac: Mac,
}

impl Dispatch<CoreStackEvent> for FuzzWorld {
    fn dispatch(&mut self, q: &mut Queue<Self>, ev: CoreStackEvent) {
        dispatch_core_stack(self, q, ev);
    }
}

impl MacWorld for FuzzWorld {
    type Ev = CoreStackEvent;
    fn mac(&self) -> &Mac {
        &self.mac
    }
    fn mac_mut(&mut self) -> &mut Mac {
        &mut self.mac
    }
}

/// Build and run one topology under the invariant checker. Restores the
/// caller's checker-enabled state afterwards, so the surrounding test or
/// sweep sink is unaffected.
pub fn run_spec(spec: &TopologySpec, inject_bug: bool) -> CaseResult {
    let was_enabled = conformance::enabled();
    let saved = conformance::take();
    conformance::set_enabled(true);

    let mut w = FuzzWorld {
        mac: Mac::new(SimRng::from_seed(spec.seed).derive("fuzz-mac")),
    };
    if spec.mixed_bg {
        w.mac.timing = MacTiming::bg_mixed();
    }
    if inject_bug {
        w.mac.inject_timing_bug(true);
    }
    let mut q = Queue::new();
    let mediums: Vec<_> = (0..spec.mediums)
        .map(|_| w.mac.add_medium(SimDuration::from_millis(10)))
        .collect();
    for &(m, p) in &spec.corruption {
        w.mac.set_corruption(mediums[m as usize], p);
    }
    let ids: Vec<StationId> = spec
        .stations
        .iter()
        .map(|st| {
            w.mac
                .add_station(mediums[st.medium as usize], RateController::fixed(st.rate))
        })
        .collect();
    for (i, st) in spec.stations.iter().enumerate() {
        let sta = ids[i];
        match &st.role {
            Role::Injector {
                threshold,
                delay_us,
                payload,
                jitter,
            } => {
                let cfg = PowerTrafficConfig {
                    payload_bytes: *payload,
                    bitrate: st.rate,
                    inter_packet_delay: SimDuration::from_micros(*delay_us),
                    qdepth_threshold: *threshold,
                    jitter: if *jitter {
                        JitterModel::router_userspace()
                    } else {
                        JitterModel::none()
                    },
                };
                let rng = SimRng::from_seed(spec.seed).derive_idx("fuzz-injector", i);
                spawn_injector(&mut q, sta, cfg, rng, SimTime::ZERO);
            }
            Role::Talker {
                peer_rank,
                period_us,
                bytes,
                snr_db,
            } => {
                // Peers: other stations on the same channel. A talker with
                // nobody to talk to degrades to a beacon sender.
                let peers: Vec<StationId> = spec
                    .stations
                    .iter()
                    .enumerate()
                    .filter(|&(j, o)| j != i && o.medium == st.medium)
                    .map(|(j, _)| ids[j])
                    .collect();
                if peers.is_empty() {
                    start_beacons(
                        &mut q,
                        sta,
                        SimTime::ZERO,
                        SimDuration::from_micros(102_400),
                        st.rate,
                    );
                    continue;
                }
                let peer = peers[*peer_rank as usize % peers.len()];
                w.mac.set_link_snr(sta, peer, Db(*snr_db));
                let bytes = *bytes;
                q.schedule_repeating(
                    SimTime::ZERO,
                    SimDuration::from_micros(*period_us),
                    move |w: &mut FuzzWorld, q| {
                        if w.mac.queue_depth(sta) < 4 {
                            let f = Frame::data(
                                sta,
                                Dest::Unicast(peer),
                                PayloadTag {
                                    flow: sta.0,
                                    seq: 0,
                                    bytes,
                                },
                            );
                            enqueue(w, q, sta, f);
                        }
                    },
                );
            }
            Role::Beacon => {
                start_beacons(
                    &mut q,
                    sta,
                    SimTime::ZERO,
                    SimDuration::from_micros(102_400),
                    st.rate,
                );
            }
            Role::Idle => {}
        }
    }
    mac_conformance::install_audit(&mut q, SimDuration::from_millis(10));
    let end = SimTime::ZERO + spec.horizon;
    q.run_until(&mut w, end);
    mac_conformance::audit_now(&w, end);

    let (violations, retained) = conformance::take();
    let frames = w.mac.total_frames_sent();
    // Restore the caller's sink and enabled flag.
    conformance::set_enabled(was_enabled);
    for v in saved.1 {
        conformance::report(v.rule, v.at, v.detail);
    }
    CaseResult {
        violations,
        retained,
        frames,
    }
}

/// Shrink a failing topology: repeatedly halve the horizon, drop stations
/// and drop fault injection, keeping each reduction only if the smaller
/// case still violates. Terminates because every accepted step strictly
/// shrinks the spec.
pub fn shrink(spec: &TopologySpec, inject_bug: bool) -> TopologySpec {
    let mut cur = spec.clone();
    loop {
        // Halve the horizon.
        if cur.horizon >= SimDuration::from_millis(10) {
            let mut cand = cur.clone();
            cand.horizon = cand.horizon / 2;
            if run_spec(&cand, inject_bug).violations > 0 {
                cur = cand;
                continue;
            }
        }
        // Drop one station, last first.
        let mut advanced = false;
        if cur.stations.len() > 1 {
            for i in (0..cur.stations.len()).rev() {
                let mut cand = cur.clone();
                cand.stations.remove(i);
                if run_spec(&cand, inject_bug).violations > 0 {
                    cur = cand;
                    advanced = true;
                    break;
                }
            }
        }
        if advanced {
            continue;
        }
        // Drop corruption entirely.
        if !cur.corruption.is_empty() {
            let mut cand = cur.clone();
            cand.corruption.clear();
            if run_spec(&cand, inject_bug).violations > 0 {
                cur = cand;
                continue;
            }
        }
        return cur;
    }
}

/// Fuzz campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of topologies to generate and run.
    pub topologies: u64,
    /// Base seed; case seeds derive from `(base_seed, index)`.
    pub base_seed: u64,
    /// Enable the deliberate MAC timing bug (checker validation mode).
    pub inject_bug: bool,
    /// Shrink failing cases before reporting.
    pub shrink: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            topologies: 200,
            base_seed: 1,
            inject_bug: false,
            shrink: true,
        }
    }
}

/// One failing case.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the case within the campaign.
    pub case_index: u64,
    /// The reproducing seed: `run_spec(&gen_spec(seed), …)` re-fails.
    pub seed: u64,
    /// The generated topology.
    pub spec: TopologySpec,
    /// The shrunk topology (equals `spec` when shrinking is off).
    pub shrunk: TopologySpec,
    /// Violations in the original run.
    pub violations: u64,
    /// Sample violations from the original run.
    pub samples: Vec<Violation>,
}

/// Campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Topologies executed.
    pub ran: u64,
    /// Whether the campaign ran with the deliberate timing bug.
    pub inject_bug: bool,
    /// Failing cases (campaign stops after 5 to bound shrink time).
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fuzz: {} topologies run, {} failure(s)\n",
            self.ran,
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "case #{}: {} violation(s)\n  spec:   {}\n  shrunk: {}\n  replay: powifi-fuzz --replay {}{}\n",
                f.case_index,
                f.violations,
                f.spec.summary(),
                f.shrunk.summary(),
                f.seed,
                if self.inject_bug { " --inject-bug" } else { "" },
            ));
            for v in f.samples.iter().take(3) {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// The deterministic seed of case `index` in a campaign.
pub fn case_seed(base_seed: u64, index: u64) -> u64 {
    SimRng::from_seed(base_seed).derive_seed(&format!("fuzz-case#{index}"))
}

/// Run a fuzz campaign.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        inject_bug: cfg.inject_bug,
        ..FuzzReport::default()
    };
    for i in 0..cfg.topologies {
        let seed = case_seed(cfg.base_seed, i);
        let spec = gen_spec(seed);
        let res = run_spec(&spec, cfg.inject_bug);
        report.ran += 1;
        if res.violations > 0 {
            let shrunk = if cfg.shrink {
                shrink(&spec, cfg.inject_bug)
            } else {
                spec.clone()
            };
            report.failures.push(FuzzFailure {
                case_index: i,
                seed,
                spec,
                shrunk,
                violations: res.violations,
                samples: res.retained,
            });
            if report.failures.len() >= 5 {
                break;
            }
        }
    }
    report
}

/// Re-run one case from its reproducing seed.
pub fn replay(seed: u64, inject_bug: bool) -> CaseResult {
    run_spec(&gen_spec(seed), inject_bug)
}

// ---------------------------------------------------------------------------
// Multi-cell city mode (`powifi-fuzz --city`)
// ---------------------------------------------------------------------------
//
// Instead of a single handful of channels, generate a spatially sharded
// city world (powifi_deploy::city), run it both sharded and monolithic
// under the invariant checker — including the per-epoch cross-shard
// airtime/corruption conservation audits — and fail the case if either run
// violates or the two runs are not byte-identical.

use powifi_deploy::city::runtime::{run_city, run_city_monolithic, CityConfig};
use powifi_deploy::city::topology::{apartment_block, campus, diurnal_city, CityTopology};

/// Which city generator a fuzz case draws its world from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CityGenerator {
    /// Dense apartment block (worst-case co-channel coupling).
    Block,
    /// Scattered campus buildings (best-case shardability).
    Campus,
    /// Diurnal city at a generated hour.
    Diurnal,
}

/// A generated multi-cell city fuzz case, determined by its seed.
#[derive(Debug, Clone)]
pub struct CitySpec {
    /// The case seed (also seeds topology generation and medium streams).
    pub seed: u64,
    /// World generator.
    pub generator: CityGenerator,
    /// Networks in the world.
    pub networks: usize,
    /// Hour of day (diurnal generator only).
    pub hour: u32,
    /// Worker threads for the sharded run.
    pub jobs: usize,
    /// Networks per shared medium, max.
    pub max_group: usize,
    /// Networks per shard, max.
    pub max_shard: usize,
    /// Simulated horizon, ms.
    pub horizon_ms: u64,
    /// Epoch length, ms.
    pub epoch_ms: u64,
}

impl CitySpec {
    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "seed {} · {:?} · {} network(s) · jobs {} · group≤{} shard≤{} · {} ms / {} ms epochs",
            self.seed,
            self.generator,
            self.networks,
            self.jobs,
            self.max_group,
            self.max_shard,
            self.horizon_ms,
            self.epoch_ms,
        )
    }
}

/// Generate the city case for a seed. Pure: same seed, same spec.
pub fn gen_city_spec(seed: u64) -> CitySpec {
    let mut rng = SimRng::from_seed(seed).derive("fuzz-city");
    let generator = *rng.choose(&[
        CityGenerator::Block,
        CityGenerator::Campus,
        CityGenerator::Diurnal,
    ]);
    let max_group = rng.range(3..=10u32) as usize;
    CitySpec {
        seed,
        generator,
        networks: rng.range(8..=36u32) as usize,
        hour: rng.range(0..24u32),
        jobs: rng.range(1..=4u32) as usize,
        max_group,
        max_shard: max_group + rng.range(0..=20u32) as usize,
        horizon_ms: rng.range(60..=160u64),
        epoch_ms: rng.range(10..=60u64),
    }
}

/// Materialize a case's world.
pub fn build_city(spec: &CitySpec) -> CityTopology {
    let mut topo = match spec.generator {
        CityGenerator::Block => apartment_block(spec.networks, spec.seed),
        CityGenerator::Campus => campus(spec.networks, spec.seed),
        CityGenerator::Diurnal => diurnal_city(spec.networks, spec.hour, spec.seed),
    };
    topo.horizon = SimDuration::from_millis(spec.horizon_ms);
    topo.epoch = SimDuration::from_millis(spec.epoch_ms);
    topo
}

/// Result of running one city case.
#[derive(Debug, Clone)]
pub struct CityCaseResult {
    /// Invariant violations across both runs (exchange audits included).
    pub violations: u64,
    /// Up to the first 64 violations verbatim.
    pub retained: Vec<Violation>,
    /// Whether sharded and monolithic runs were byte-identical.
    pub equivalent: bool,
    /// Shards the partitioner produced.
    pub shards: usize,
    /// MAC frames sent (sharded run).
    pub frames: u64,
}

/// Run one city case under the checker: sharded at `spec.jobs`, then
/// monolithic, then compare. Restores the caller's checker state.
pub fn run_city_spec(spec: &CitySpec) -> CityCaseResult {
    let was_enabled = conformance::enabled();
    let saved = conformance::take();
    conformance::set_enabled(true);

    let topo = build_city(spec);
    let cfg = CityConfig {
        seed: spec.seed,
        jobs: spec.jobs,
        max_group: spec.max_group,
        max_shard: spec.max_shard,
        ..CityConfig::default()
    };
    let sharded = run_city(&topo, &cfg);
    let mono = run_city_monolithic(&topo, &cfg);
    let equivalent = sharded == mono;

    let (violations, retained) = conformance::take();
    conformance::set_enabled(was_enabled);
    for v in saved.1 {
        conformance::report(v.rule, v.at, v.detail);
    }
    CityCaseResult {
        violations,
        retained,
        equivalent,
        shards: sharded.shards,
        frames: sharded.frames,
    }
}

/// One failing city case.
#[derive(Debug, Clone)]
pub struct CityFailure {
    /// Index of the case within the campaign.
    pub case_index: u64,
    /// The reproducing seed: `run_city_spec(&gen_city_spec(seed))` re-fails.
    pub seed: u64,
    /// The generated case.
    pub spec: CitySpec,
    /// Violations observed.
    pub violations: u64,
    /// Whether the sharded and monolithic runs matched.
    pub equivalent: bool,
    /// Sample violations.
    pub samples: Vec<Violation>,
}

/// City campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CityFuzzReport {
    /// Cases executed.
    pub ran: u64,
    /// Failing cases (campaign stops after 5).
    pub failures: Vec<CityFailure>,
}

impl CityFuzzReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "city fuzz: {} worlds run, {} failure(s)\n",
            self.ran,
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "case #{}: {} violation(s){}\n  spec: {}\n  replay: powifi-fuzz --city --replay {}\n",
                f.case_index,
                f.violations,
                if f.equivalent {
                    ""
                } else {
                    " · sharded ≠ monolithic"
                },
                f.spec.summary(),
                f.seed,
            ));
            for v in f.samples.iter().take(3) {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

/// Run a multi-cell city fuzz campaign. A case fails on any invariant
/// violation or on sharded/monolithic divergence.
pub fn run_city_campaign(cfg: &FuzzConfig) -> CityFuzzReport {
    let mut report = CityFuzzReport::default();
    for i in 0..cfg.topologies {
        let seed = case_seed(cfg.base_seed, i);
        let spec = gen_city_spec(seed);
        let res = run_city_spec(&spec);
        report.ran += 1;
        if res.violations > 0 || !res.equivalent {
            report.failures.push(CityFailure {
                case_index: i,
                seed,
                spec,
                violations: res.violations,
                equivalent: res.equivalent,
                samples: res.retained,
            });
            if report.failures.len() >= 5 {
                break;
            }
        }
    }
    report
}

/// Re-run one city case from its reproducing seed.
pub fn replay_city(seed: u64) -> CityCaseResult {
    run_city_spec(&gen_city_spec(seed))
}
