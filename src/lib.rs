//! Umbrella crate re-exporting the PoWiFi workspace; hosts examples/ and tests/.
pub mod fuzz;
pub mod golden;
pub mod profinspect;
pub mod traceinspect;

pub use powifi_core as core;
pub use powifi_deploy as deploy;
pub use powifi_harvest as harvest;
pub use powifi_mac as mac;
pub use powifi_net as net;
pub use powifi_rf as rf;
pub use powifi_sensors as sensors;
pub use powifi_sim as sim;
