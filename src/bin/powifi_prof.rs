//! `powifi-prof` — inspector for `--prof` span-profile JSONL files.
//!
//! ```text
//! powifi-prof tree  FILE [--point IDX]
//! powifi-prof top   FILE [--point IDX] [--by self|total|count] [--limit N]
//! powifi-prof diff  FILE_A FILE_B
//! powifi-prof flame FILE [--point IDX]
//! ```
//!
//! `tree` prints the indented call tree, `top` the hottest span paths,
//! `flame` folded-stacks text for flamegraph tooling. `diff` exits
//! nonzero on the first sim-time divergence (wall fields are ignored),
//! so it works as a CI gate exactly like `powifi-trace diff`.

use powifi::profinspect::{self, ParsedProf, TopBy};
use std::process::ExitCode;

const USAGE: &str = "usage: powifi-prof <tree|top|diff|flame> FILE [...]
  tree  FILE [--point IDX]
  top   FILE [--point IDX] [--by self|total|count] [--limit N]
  diff  FILE_A FILE_B
  flame FILE [--point IDX]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ParsedProf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    profinspect::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail("missing subcommand");
    };
    match run(cmd, &args[1..]) {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

/// Parse the `[--point IDX]`-style option tail shared by tree/top/flame.
struct ViewOpts {
    point: Option<usize>,
    by: TopBy,
    limit: usize,
}

fn parse_view_opts(opts: &[String]) -> Result<ViewOpts, String> {
    let mut out = ViewOpts {
        point: None,
        by: TopBy::SelfTime,
        limit: 20,
    };
    let mut it = opts.iter();
    while let Some(flag) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs {what}"))
        };
        match flag.as_str() {
            "--point" => {
                let v = val("an index")?;
                out.point = Some(
                    v.parse()
                        .map_err(|_| format!("--point needs an index, got `{v}`"))?,
                );
            }
            "--by" => out.by = TopBy::from_flag(&val("self|total|count")?)?,
            "--limit" => {
                let v = val("a count")?;
                out.limit = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--limit needs a positive count, got `{v}`"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(out)
}

fn run(cmd: &str, rest: &[String]) -> Result<ExitCode, String> {
    match cmd {
        "tree" | "top" | "flame" => {
            let (file, opts) = rest
                .split_first()
                .ok_or_else(|| format!("{cmd} needs a FILE"))?;
            let view = parse_view_opts(opts)?;
            let prof = load(file)?;
            for (pi, pt) in prof.points.iter().enumerate() {
                if view.point.is_some_and(|want| want != pi) {
                    continue;
                }
                match cmd {
                    "tree" => print!("{}", profinspect::render_tree(pt)),
                    "top" => {
                        println!(
                            "point {pi} ({}):  [self] [total] [count]",
                            if pt.label.is_empty() {
                                "<anon>"
                            } else {
                                &pt.label
                            }
                        );
                        print!("{}", profinspect::top(pt, view.by, view.limit));
                    }
                    _ => print!("{}", profinspect::flame(pt)),
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = rest else {
                return Err("diff takes exactly two FILEs".into());
            };
            match profinspect::diff(&load(a)?, &load(b)?) {
                None => {
                    println!("profiles are structurally identical");
                    Ok(ExitCode::SUCCESS)
                }
                Some(msg) => {
                    println!("{msg}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}
