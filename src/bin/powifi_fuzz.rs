//! Deterministic conformance fuzz driver (CLI wrapper around
//! [`powifi::fuzz`]).
//!
//! ```text
//! powifi-fuzz [--topologies N] [--seed S] [--inject-bug] [--city]
//!             [--replay SEED [--trace FILE] [--prof]]
//! ```
//!
//! `--city` switches to the multi-cell world mode: each case is a sharded
//! city topology run both sharded and monolithic under the checker
//! (cross-shard conservation audits included) and fails on any violation
//! or on sharded/monolithic divergence.
//!
//! `--trace FILE` writes the replayed topology's structured trace
//! (`powifi_sim::obs::trace` JSONL, inspectable with `powifi-trace`);
//! `--prof` prints its sim-time span tree — both replay-only, so a failing
//! seed can be drilled into with the full observability stack.
//!
//! Exit codes: 0 = all topologies clean, 1 = failures found, 2 = usage.

use powifi::fuzz;
use std::process::ExitCode;

const USAGE: &str = "usage: powifi-fuzz [--topologies N] [--seed S] [--inject-bug] [--city] \
     [--replay SEED [--trace FILE] [--prof]]";

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("powifi-fuzz: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = fuzz::FuzzConfig::default();
    let mut replay_seed: Option<u64> = None;
    let mut trace_path: Option<String> = None;
    let mut prof = false;
    let mut city = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--topologies" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => cfg.topologies = n,
                _ => return usage_err("--topologies needs a positive integer"),
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => cfg.base_seed = s,
                _ => return usage_err("--seed needs an integer"),
            },
            "--inject-bug" => cfg.inject_bug = true,
            "--city" => city = true,
            "--replay" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => replay_seed = Some(s),
                _ => return usage_err("--replay needs a seed"),
            },
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return usage_err("--trace needs a file"),
            },
            "--prof" => prof = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_err(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(seed) = replay_seed {
        if city {
            if trace_path.is_some() || prof || cfg.inject_bug {
                return usage_err("--city replay takes no --trace/--prof/--inject-bug");
            }
            let spec = fuzz::gen_city_spec(seed);
            println!("replaying {}", spec.summary());
            let res = fuzz::replay_city(seed);
            println!(
                "shards {} · frames {} · violations {} · {}",
                res.shards,
                res.frames,
                res.violations,
                if res.equivalent {
                    "sharded == monolithic"
                } else {
                    "sharded != monolithic"
                },
            );
            for v in res.retained.iter().take(10) {
                println!("  {v}");
            }
            return if res.violations == 0 && res.equivalent {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            };
        }
        let spec = fuzz::gen_spec(seed);
        println!("replaying {}", spec.summary());
        if prof {
            powifi::sim::obs::prof::enable(false);
        }
        let (res, trace_jsonl) = if trace_path.is_some() {
            let (res, jsonl) =
                powifi::sim::obs::trace::capture_jsonl(|| fuzz::run_spec(&spec, cfg.inject_bug));
            (res, Some(jsonl))
        } else {
            (fuzz::run_spec(&spec, cfg.inject_bug), None)
        };
        if let (Some(path), Some(jsonl)) = (&trace_path, &trace_jsonl) {
            if let Err(e) = std::fs::write(path, jsonl) {
                eprintln!("powifi-fuzz: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {path}");
        }
        if prof {
            let snap = powifi::sim::obs::prof::snapshot();
            powifi::sim::obs::prof::disable();
            powifi::sim::obs::prof::reset();
            print!("{}", snap.render_tree());
        }
        println!("frames {} · violations {}", res.frames, res.violations);
        for v in res.retained.iter().take(10) {
            println!("  {v}");
        }
        return if res.violations == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if trace_path.is_some() || prof {
        return usage_err("--trace/--prof only apply to --replay runs");
    }

    if city {
        if cfg.inject_bug {
            return usage_err("--inject-bug applies to the MAC stack mode only");
        }
        println!(
            "fuzzing {} city worlds from base seed {}",
            cfg.topologies, cfg.base_seed,
        );
        let report = fuzz::run_city_campaign(&cfg);
        print!("{}", report.render());
        return if report.failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    println!(
        "fuzzing {} topologies from base seed {}{}",
        cfg.topologies,
        cfg.base_seed,
        if cfg.inject_bug {
            " (timing bug injected)"
        } else {
            ""
        },
    );
    let report = fuzz::run(&cfg);
    print!("{}", report.render());
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
