//! `powifi-trace` — inspector for `powifi_sim::obs::trace` JSONL files.
//!
//! ```text
//! powifi-trace summary   FILE
//! powifi-trace filter    FILE [--layer L] [--kind K] [--entity N]
//!                             [--from SECS] [--to SECS]
//! powifi-trace occupancy FILE --end SECS [--sta N] [--point IDX]
//! powifi-trace diff      FILE_A FILE_B
//! powifi-trace merge     FILE...
//! powifi-trace validate  FILE
//! ```
//!
//! `occupancy` recomputes the paper's Σ sizeᵢ/rateᵢ per-channel airtime
//! metric from `tx_start` records (§4's tshark post-processing) as a
//! cross-check against the MAC's own accounting. `merge`
//! deterministically interleaves several per-shard / per-deployment
//! trace files by `(sim-time, seq)` into one timeline on stdout — the
//! way to stitch a city run's shard traces back together. `diff` and
//! `validate` exit nonzero on divergence / schema violations, so both
//! work as CI gates.

use powifi::traceinspect::{self, Filter, ParsedTrace};
use std::process::ExitCode;

const USAGE: &str = "usage: powifi-trace <summary|filter|occupancy|diff|merge|validate> FILE [...]
  summary   FILE                          counts per layer/kind, time span
  filter    FILE [--layer L] [--kind K] [--entity N] [--from SECS] [--to SECS]
  occupancy FILE --end SECS [--sta N] [--point IDX]
  diff      FILE_A FILE_B
  merge     FILE...                       interleave by (sim-time, seq) to stdout
  validate  FILE";

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<ParsedTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    traceinspect::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail("missing subcommand");
    };
    match run(cmd, &args[1..]) {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

fn run(cmd: &str, rest: &[String]) -> Result<ExitCode, String> {
    match cmd {
        "summary" => {
            let [file] = rest else {
                return Err("summary takes exactly one FILE".into());
            };
            print!("{}", traceinspect::summarize(&load(file)?));
            Ok(ExitCode::SUCCESS)
        }
        "filter" => {
            let (file, opts) = rest
                .split_first()
                .ok_or_else(|| String::from("filter needs a FILE"))?;
            let mut filter = Filter::default();
            let mut it = opts.iter();
            while let Some(flag) = it.next() {
                let mut val = |what: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs {what}"))
                };
                match flag.as_str() {
                    "--layer" => filter.layer = Some(val("a layer")?),
                    "--kind" => filter.kind = Some(val("a kind")?),
                    "--entity" => filter.entity = Some(parse_u64(&val("an id")?, "--entity")?),
                    "--from" => filter.from_ns = Some(parse_secs(&val("seconds")?, "--from")?),
                    "--to" => filter.to_ns = Some(parse_secs(&val("seconds")?, "--to")?),
                    other => return Err(format!("unknown filter flag `{other}`")),
                }
            }
            let trace = load(file)?;
            for rec in trace.records().filter(|r| filter.matches(r)) {
                println!("{}", rec.raw);
            }
            Ok(ExitCode::SUCCESS)
        }
        "occupancy" => {
            let (file, opts) = rest
                .split_first()
                .ok_or_else(|| String::from("occupancy needs a FILE"))?;
            let mut end_ns = None;
            let mut sta = None;
            let mut point = None;
            let mut it = opts.iter();
            while let Some(flag) = it.next() {
                let mut val = |what: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs {what}"))
                };
                match flag.as_str() {
                    "--end" => end_ns = Some(parse_secs(&val("seconds")?, "--end")?),
                    "--sta" => sta = Some(parse_u64(&val("an id")?, "--sta")?),
                    "--point" => point = Some(parse_u64(&val("an index")?, "--point")? as usize),
                    other => return Err(format!("unknown occupancy flag `{other}`")),
                }
            }
            let end_ns = end_ns.ok_or_else(|| String::from("occupancy needs --end SECS"))?;
            let trace = load(file)?;
            for (pi, pt) in trace.points.iter().enumerate() {
                if point.is_some_and(|want| want != pi) {
                    continue;
                }
                let label = if pt.label.is_empty() {
                    "<anon>"
                } else {
                    &pt.label
                };
                println!("point {pi} ({label}):");
                let occ = traceinspect::occupancy(pt, end_ns, sta);
                if occ.is_empty() {
                    println!("  (no matching tx_start records)");
                }
                for (medium, frac) in occ {
                    println!("  medium {medium}: {frac:.6}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = rest else {
                return Err("diff takes exactly two FILEs".into());
            };
            match traceinspect::diff(&load(a)?, &load(b)?) {
                None => {
                    println!("traces are structurally identical");
                    Ok(ExitCode::SUCCESS)
                }
                Some(msg) => {
                    println!("{msg}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        "merge" => {
            if rest.is_empty() {
                return Err("merge needs at least one FILE".into());
            }
            let traces = rest
                .iter()
                .map(|f| load(f))
                .collect::<Result<Vec<_>, _>>()?;
            for rec in traceinspect::merge(&traces) {
                println!("{}", rec.raw);
            }
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let [file] = rest else {
                return Err("validate takes exactly one FILE".into());
            };
            let trace = load(file)?;
            let problems = traceinspect::validate(&trace);
            if problems.is_empty() {
                let n: usize = trace.points.iter().map(|p| p.records.len()).sum();
                println!(
                    "ok: {n} records across {} point(s) conform to the event schema",
                    trace.points.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                for p in &problems {
                    eprintln!("{p}");
                }
                eprintln!("{} schema violation(s)", problems.len());
                Ok(ExitCode::FAILURE)
            }
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_u64(s: &str, flag: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{flag} needs an unsigned integer, got `{s}`"))
}

/// Parse fractional seconds into nanoseconds.
fn parse_secs(s: &str, flag: &str) -> Result<u64, String> {
    let secs: f64 = s
        .parse()
        .map_err(|_| format!("{flag} needs seconds, got `{s}`"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("{flag} needs non-negative seconds, got `{s}`"));
    }
    Ok((secs * 1e9).round() as u64)
}
