//! CLI error-path contracts of the inspector binaries: `powifi-trace diff`
//! must exit 1 (not 0) when traces differ, `validate` must name the first
//! offending line, and `powifi-prof diff` mirrors the same exit-code
//! discipline. These pin the exit codes CI gates rely on.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const TRACE_BIN: &str = env!("CARGO_BIN_EXE_powifi-trace");
const PROF_BIN: &str = env!("CARGO_BIN_EXE_powifi-prof");
const FUZZ_BIN: &str = env!("CARGO_BIN_EXE_powifi-fuzz");

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("powifi-cli-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

const TRACE_A: &str = "{\"experiment\":\"demo\",\"point\":0,\"label\":\"p0\",\"seed\":7}\n\
    {\"t\":10000,\"layer\":\"mac\",\"kind\":\"tx_end\",\"medium\":0,\"sta\":1}\n";
const TRACE_B: &str = "{\"experiment\":\"demo\",\"point\":0,\"label\":\"p0\",\"seed\":7}\n\
    {\"t\":10000,\"layer\":\"mac\",\"kind\":\"tx_end\",\"medium\":0,\"sta\":2}\n";

#[test]
fn trace_diff_exit_codes() {
    let dir = tmp_dir("trace-diff");
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    fs::write(&a, TRACE_A).unwrap();
    fs::write(&b, TRACE_B).unwrap();

    let same = Command::new(TRACE_BIN)
        .args(["diff", a.to_str().unwrap(), a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(same.status.code(), Some(0), "identical traces must exit 0");

    let differ = Command::new(TRACE_BIN)
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        differ.status.code(),
        Some(1),
        "divergent traces must exit 1: stdout={}",
        String::from_utf8_lossy(&differ.stdout)
    );
    assert!(String::from_utf8_lossy(&differ.stdout).contains("record 0 differs"));

    let usage = Command::new(TRACE_BIN).arg("diff").output().unwrap();
    assert_eq!(usage.status.code(), Some(2), "missing files must exit 2");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trace_validate_names_the_offending_line() {
    let dir = tmp_dir("trace-validate");
    let good = dir.join("good.jsonl");
    let bad = dir.join("bad.jsonl");
    fs::write(&good, TRACE_A).unwrap();
    // Line 3 carries an unknown kind.
    fs::write(
        &bad,
        format!("{TRACE_A}{{\"t\":20000,\"layer\":\"mac\",\"kind\":\"tx_stop\",\"sta\":1}}\n"),
    )
    .unwrap();

    let ok = Command::new(TRACE_BIN)
        .args(["validate", good.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(ok.status.code(), Some(0));

    let fail = Command::new(TRACE_BIN)
        .args(["validate", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(fail.status.code(), Some(1), "schema violations must exit 1");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(
        stderr.contains("line 3:") && stderr.contains("unknown event kind"),
        "validate must name the offending line: {stderr}"
    );
    let _ = fs::remove_dir_all(&dir);
}

const PROF_HEADER: &str = "{\"experiment\":\"demo\",\"point\":0,\"label\":\"p0\",\"seed\":7}";
const PROF_SNAP_A: &str = "{\"wall\":false,\"spans\":[{\"name\":\"sim.event\",\"count\":3,\
    \"sim_self_ns\":100,\"sim_total_ns\":100,\"sim_max_ns\":90,\"children\":[]}]}";
const PROF_SNAP_B: &str = "{\"wall\":false,\"spans\":[{\"name\":\"sim.event\",\"count\":4,\
    \"sim_self_ns\":100,\"sim_total_ns\":100,\"sim_max_ns\":90,\"children\":[]}]}";

#[test]
fn prof_subcommands_and_exit_codes() {
    let dir = tmp_dir("prof");
    let a = dir.join("a.prof.jsonl");
    let b = dir.join("b.prof.jsonl");
    fs::write(&a, format!("{PROF_HEADER}\n{PROF_SNAP_A}\n")).unwrap();
    fs::write(&b, format!("{PROF_HEADER}\n{PROF_SNAP_B}\n")).unwrap();

    let tree = Command::new(PROF_BIN)
        .args(["tree", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(tree.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&tree.stdout).contains("sim.event count=3"));

    let flame = Command::new(PROF_BIN)
        .args(["flame", a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(flame.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&flame.stdout), "sim.event 100\n");

    let same = Command::new(PROF_BIN)
        .args(["diff", a.to_str().unwrap(), a.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(same.status.code(), Some(0));

    let differ = Command::new(PROF_BIN)
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        differ.status.code(),
        Some(1),
        "divergent profiles must exit 1"
    );
    assert!(String::from_utf8_lossy(&differ.stdout).contains("count 3 vs 4"));

    let usage = Command::new(PROF_BIN).arg("nonsense").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_replay_supports_trace_and_prof() {
    let dir = tmp_dir("fuzz-replay");
    let trace = dir.join("replay.trace.jsonl");
    let out = Command::new(FUZZ_BIN)
        .args([
            "--replay",
            "3",
            "--trace",
            trace.to_str().unwrap(),
            "--prof",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean replay must exit 0: stderr={}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sim.event"),
        "--prof must print the span tree: {stdout}"
    );
    let jsonl = fs::read_to_string(&trace).expect("--trace file written");
    assert!(jsonl.contains("\"layer\":\"mac\""), "trace has MAC records");

    // --trace/--prof outside --replay is a usage error.
    let bad = Command::new(FUZZ_BIN).arg("--prof").output().unwrap();
    assert_eq!(bad.status.code(), Some(2));
    let _ = fs::remove_dir_all(&dir);
}
