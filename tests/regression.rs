//! Golden-value regression pins at seed 42.
//!
//! These pin the *calibrated* behaviour the EXPERIMENTS.md numbers were
//! recorded against, with tolerances wide enough to survive harmless
//! refactors but tight enough to catch silent model drift (a change to
//! airtime, backoff, the injector, path loss or the rectifier lands here).

use powifi::core::{Router, RouterConfig, Scheme};
use powifi::deploy::{run_home, table1, three_channel_world, udp_experiment};
use powifi::harvest::{MatchingNetwork, Rectifier};
use powifi::rf::{Dbm, Hertz};
use powifi::sensors::{exposure_at, Camera, TemperatureSensor, UsbCharger, BENCH_DUTY};
use powifi::sim::{SimDuration, SimRng, SimTime};

/// Idle-network router ceiling: the calibration anchor behind Figs. 5/14.
#[test]
fn pin_idle_router_cumulative_occupancy() {
    let _conf = powifi::sim::conformance::check();
    let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_secs(1));
    let rng = SimRng::from_seed(42);
    let r = Router::install(&mut w, &mut q, &channels, RouterConfig::powifi(), &rng);
    let end = SimTime::from_secs(5);
    q.run_until(&mut w, end);
    let (_, cum) = r.occupancy(&w.mac, end);
    assert!((1.15..=1.60).contains(&cum), "idle ceiling drifted: {cum}");
    powifi::sim::conformance::assert_clean("pin_idle_router_cumulative_occupancy");
}

/// Fig. 6(a) anchors: saturated baseline throughput and the scheme ratios.
#[test]
fn pin_fig6a_anchors() {
    let _conf = powifi::sim::conformance::check();
    let base = udp_experiment(Scheme::Baseline, 40.0, 42, 5).throughput_mbps;
    let powifi = udp_experiment(Scheme::PoWiFi, 40.0, 42, 5).throughput_mbps;
    let noqueue = udp_experiment(Scheme::NoQueue, 40.0, 42, 5).throughput_mbps;
    assert!((14.0..=20.0).contains(&base), "baseline {base}");
    assert!((powifi / base) > 0.90, "powifi/base {}", powifi / base);
    let r = noqueue / base;
    assert!((0.40..=0.70).contains(&r), "noqueue ratio {r}");
    powifi::sim::conformance::assert_clean("pin_fig6a_anchors");
}

/// Fig. 9/10 anchors: matching band and the rectifier curve endpoints.
#[test]
fn pin_harvester_anchors() {
    let _conf = powifi::sim::conformance::check();
    let n = MatchingNetwork::battery_free();
    assert!(n.return_loss(Hertz::from_mhz(2437.0)).0 < -15.0);
    let r = Rectifier::battery_free();
    let at4 = r.output_power(Dbm(4.0)).0;
    assert!((140.0..=180.0).contains(&at4), "P_out(+4dBm) {at4} µW");
    assert_eq!(r.sensitivity.0, -17.8);
    assert_eq!(Rectifier::battery_charging().sensitivity.0, -19.3);
    powifi::sim::conformance::assert_clean("pin_harvester_anchors");
}

/// Figs. 11–12 anchors: the four operational ranges.
#[test]
fn pin_device_ranges() {
    let _conf = powifi::sim::conformance::check();
    let range = |alive: &dyn Fn(f64) -> bool| {
        let mut last = 0.0;
        let mut ft = 2.0;
        while ft <= 40.0 {
            if alive(ft) {
                last = ft;
            }
            ft += 0.5;
        }
        last
    };
    let temp_bf = TemperatureSensor::battery_free();
    let temp_bc = TemperatureSensor::battery_recharging();
    let cam_bf = Camera::battery_free();
    let r1 = range(&|ft| temp_bf.update_rate(&exposure_at(ft, BENCH_DUTY, &[])) > 0.01);
    let r2 = range(&|ft| temp_bc.update_rate(&exposure_at(ft, BENCH_DUTY, &[])) > 0.01);
    let r3 = range(&|ft| {
        cam_bf
            .inter_frame_secs(&exposure_at(ft, BENCH_DUTY, &[]))
            .is_some()
    });
    assert!(
        (20.0..=26.0).contains(&r1),
        "battery-free sensor range {r1}"
    );
    assert!((26.0..=32.0).contains(&r2), "recharging sensor range {r2}");
    assert!(
        (15.0..=19.0).contains(&r3),
        "battery-free camera range {r3}"
    );
    assert!(r2 > r1 && r1 > r3, "range ordering broken: {r3} {r1} {r2}");
    powifi::sim::conformance::assert_clean("pin_device_ranges");
}

/// Fig. 16 anchor: the Jawbone numbers.
#[test]
fn pin_jawbone_charging() {
    let _conf = powifi::sim::conformance::check();
    let mut c = UsbCharger::jawbone_demo();
    let ma = c.charge_current_ma(6.0, 0.3);
    assert!((2.0..=2.7).contains(&ma), "current {ma} mA");
    for _ in 0..150 {
        c.charge_for(SimDuration::from_secs(60), 6.0, 0.3);
    }
    assert!((0.36..=0.47).contains(&c.soc()), "soc {}", c.soc());
    powifi::sim::conformance::assert_clean("pin_jawbone_charging");
}

/// Fig. 14 anchor: the quiet home exceeds the busy home, both in the band.
#[test]
fn pin_home_band() {
    let _conf = powifi::sim::conformance::check();
    let quiet = run_home(table1()[1], 42, 1440).mean_cumulative;
    let busy = run_home(table1()[4], 42, 1440).mean_cumulative;
    assert!(quiet > busy, "quiet {quiet} <= busy {busy}");
    assert!((0.75..=1.45).contains(&quiet), "quiet home {quiet}");
    assert!((0.6..=1.2).contains(&busy), "busy home {busy}");
    powifi::sim::conformance::assert_clean("pin_home_band");
}
