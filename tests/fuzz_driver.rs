//! The deterministic fuzz driver's acceptance tests: 200 random topologies
//! run clean under the invariant checker, and with the deliberate MAC
//! timing bug injected the driver finds, shrinks and replays a failure.

use powifi::fuzz;

#[test]
fn two_hundred_topologies_run_clean() {
    let report = fuzz::run(&fuzz::FuzzConfig {
        topologies: 200,
        base_seed: 42,
        inject_bug: false,
        shrink: true,
    });
    assert_eq!(report.ran, 200);
    assert!(
        report.failures.is_empty(),
        "conformance violations in clean topologies:\n{}",
        report.render()
    );
}

#[test]
fn campaign_is_deterministic() {
    let cfg = fuzz::FuzzConfig {
        topologies: 25,
        base_seed: 7,
        inject_bug: true,
        shrink: false,
    };
    let a = fuzz::run(&cfg);
    let b = fuzz::run(&cfg);
    assert_eq!(a.ran, b.ran);
    let seeds = |r: &fuzz::FuzzReport| -> Vec<(u64, u64)> {
        r.failures.iter().map(|f| (f.seed, f.violations)).collect()
    };
    assert_eq!(seeds(&a), seeds(&b));
}

#[test]
fn injected_bug_yields_reproducing_seed() {
    let report = fuzz::run(&fuzz::FuzzConfig {
        topologies: 50,
        base_seed: 42,
        inject_bug: true,
        shrink: true,
    });
    assert!(
        !report.failures.is_empty(),
        "timing bug went undetected over {} topologies",
        report.ran
    );
    let f = &report.failures[0];

    // The reported seed reproduces the failure from scratch.
    let replayed = fuzz::replay(f.seed, true);
    assert!(replayed.violations > 0, "seed {} did not reproduce", f.seed);

    // The violation is attributed to the MAC timing rules.
    assert!(
        f.samples.iter().any(|v| v.rule.starts_with("dcf/")),
        "expected a dcf/* violation, got {:?}",
        f.samples
    );

    // The shrunk case is no bigger than the original and still fails.
    assert!(f.shrunk.stations.len() <= f.spec.stations.len());
    assert!(f.shrunk.horizon <= f.spec.horizon);
    assert!(
        fuzz::run_spec(&f.shrunk, true).violations > 0,
        "shrunk spec no longer fails"
    );

    // Without the bug the same topology is clean — the failure is the
    // injected bug, not the topology.
    assert_eq!(
        fuzz::replay(f.seed, false).violations,
        0,
        "seed {} fails even without the injected bug",
        f.seed
    );
}

#[test]
fn gen_spec_is_pure() {
    let a = fuzz::gen_spec(99);
    let b = fuzz::gen_spec(99);
    assert_eq!(a.mediums, b.mediums);
    assert_eq!(a.stations.len(), b.stations.len());
    assert_eq!(a.horizon, b.horizon);
    assert_eq!(format!("{:?}", a), format!("{:?}", b));
}

#[test]
fn city_worlds_run_clean_and_equivalent() {
    let report = fuzz::run_city_campaign(&fuzz::FuzzConfig {
        topologies: 12,
        base_seed: 42,
        inject_bug: false,
        shrink: false,
    });
    assert_eq!(report.ran, 12);
    assert!(
        report.failures.is_empty(),
        "city fuzz failures:\n{}",
        report.render()
    );
}

#[test]
fn city_campaign_is_deterministic() {
    let cfg = fuzz::FuzzConfig {
        topologies: 6,
        base_seed: 9,
        inject_bug: false,
        shrink: false,
    };
    let a = fuzz::run_city_campaign(&cfg);
    let b = fuzz::run_city_campaign(&cfg);
    assert_eq!(a.ran, b.ran);
    assert_eq!(a.failures.len(), b.failures.len());
}

#[test]
fn gen_city_spec_is_pure() {
    let a = fuzz::gen_city_spec(123);
    let b = fuzz::gen_city_spec(123);
    assert_eq!(format!("{:?}", a), format!("{:?}", b));
    assert!(a.networks >= 8);
    assert!(a.max_shard >= a.max_group);
}

#[test]
fn run_spec_restores_caller_checker_state() {
    use powifi::sim::conformance;
    // Checker off outside: a fuzz case must not leave it on.
    assert!(!conformance::enabled());
    let spec = fuzz::gen_spec(5);
    fuzz::run_spec(&spec, false);
    assert!(!conformance::enabled());

    // Checker on outside, with a pending violation: both must survive.
    let _g = conformance::check();
    conformance::report(
        "test/pending",
        powifi::sim::SimTime::ZERO,
        "sentinel".into(),
    );
    fuzz::run_spec(&spec, false);
    assert!(conformance::enabled());
    let (count, retained) = conformance::take();
    assert_eq!(count, 1);
    assert_eq!(retained[0].rule, "test/pending");
}
