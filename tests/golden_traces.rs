//! Golden-trace corpus tests: each canonical scenario must render
//! byte-for-byte identically to its committed snapshot under
//! `tests/golden/`. Regenerate intentionally-changed snapshots with
//! `UPDATE_GOLDEN=1 cargo test --test golden_traces`.

use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// First differing line with ±3 lines of context from each side, so drift
/// reads as a structural diff instead of a wall of JSON.
fn first_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let n = e.len().max(a.len());
    for i in 0..n {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el != al {
            let lo = i.saturating_sub(3);
            let mut out = format!("first difference at line {}:\n", i + 1);
            for j in lo..(i + 4).min(n) {
                match (e.get(j), a.get(j)) {
                    (Some(x), Some(y)) if x == y => out.push_str(&format!("  {x}\n")),
                    _ => {
                        if let Some(x) = e.get(j) {
                            out.push_str(&format!("- {x}\n"));
                        }
                        if let Some(y) = a.get(j) {
                            out.push_str(&format!("+ {y}\n"));
                        }
                    }
                }
            }
            return out;
        }
    }
    "(no line-level difference; byte-level drift such as trailing newline)".into()
}

fn check_scenario(name: &str) {
    let actual = powifi::golden::render(name);
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "golden trace drift for scenario {name:?}\n{}\nIf the change is intentional, \
             regenerate with: UPDATE_GOLDEN=1 cargo test --test golden_traces",
            first_diff(&expected, &actual)
        );
    }
}

#[test]
fn corpus_covers_every_scenario() {
    // A snapshot on disk with no matching scenario (or vice versa) is drift.
    let names: Vec<String> = powifi::golden::scenarios()
        .iter()
        .map(|s| s.name.to_string())
        .collect();
    assert_eq!(names.len(), 6, "corpus size changed: {names:?}");
    let dir = golden_path("x");
    let dir = dir.parent().unwrap();
    if dir.is_dir() {
        for entry in fs::read_dir(dir).unwrap() {
            let f = entry.unwrap().file_name().into_string().unwrap();
            if let Some(stem) = f.strip_suffix(".json") {
                assert!(
                    names.iter().any(|n| n == stem),
                    "stray golden snapshot {f} has no scenario"
                );
            }
        }
    }
}

#[test]
fn golden_rendering_is_deterministic() {
    for sc in powifi::golden::scenarios() {
        assert_eq!(
            powifi::golden::render(sc.name),
            powifi::golden::render(sc.name),
            "scenario {} renders differently on repeat",
            sc.name
        );
    }
}

#[test]
fn golden_traces_run_conformance_clean() {
    for sc in powifi::golden::scenarios() {
        let doc = powifi::golden::render(sc.name);
        assert!(
            doc.contains("\"conformance_violations\": 0"),
            "scenario {} violated invariants:\n{doc}",
            sc.name
        );
    }
}

/// Byte-compare the structured observability trace (`obs::trace` JSONL)
/// of one canonical MAC scenario against its committed snapshot. Because
/// the committed bytes were produced once and are compared under whatever
/// profile the tests run in, this doubles as the debug/release
/// byte-identity gate for `--trace` output.
#[test]
fn injector_gated_obs_trace_matches_golden() {
    let actual = powifi::golden::render_trace("injector_gated");
    let path = golden_path("x")
        .parent()
        .unwrap()
        .join("injector_gated.trace.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "golden obs-trace drift for injector_gated\n{}\nIf intentional, regenerate \
             with: UPDATE_GOLDEN=1 cargo test --test golden_traces",
            first_diff(&expected, &actual)
        );
    }
}

/// Byte-compare the sim-time span profile (`obs::prof` snapshot) of one
/// canonical scenario against its committed snapshot. Wall timing is off
/// during capture, and the committed bytes are compared under whatever
/// profile the tests run in — so this is the debug/release byte-identity
/// gate for profiler output.
#[test]
fn injector_gated_prof_matches_golden() {
    let actual = powifi::golden::render_prof("injector_gated");
    assert!(
        !actual.contains("wall_ms"),
        "golden prof capture must not carry wall-clock keys:\n{actual}"
    );
    let path = golden_path("x")
        .parent()
        .unwrap()
        .join("injector_gated.prof.jsonl");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden prof snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        panic!(
            "golden prof drift for injector_gated\n{}\nIf intentional, regenerate \
             with: UPDATE_GOLDEN=1 cargo test --test golden_traces",
            first_diff(&expected, &actual)
        );
    }
}

#[test]
fn prof_snapshots_are_deterministic_and_nonempty() {
    for sc in powifi::golden::scenarios() {
        let a = powifi::golden::render_prof(sc.name);
        let b = powifi::golden::render_prof(sc.name);
        assert_eq!(a, b, "scenario {} profile differs on repeat", sc.name);
        assert!(
            a.contains("\"sim.event\""),
            "scenario {} profile has no event spans: {a}",
            sc.name
        );
    }
    // The profiler must be off again after the captures above.
    assert!(!powifi::sim::obs::prof::enabled());
}

#[test]
fn obs_traces_are_deterministic_and_schema_clean() {
    for sc in powifi::golden::scenarios() {
        let a = powifi::golden::render_trace(sc.name);
        let b = powifi::golden::render_trace(sc.name);
        assert_eq!(a, b, "scenario {} trace differs on repeat", sc.name);
        let parsed = powifi::traceinspect::parse(&a)
            .unwrap_or_else(|e| panic!("scenario {} trace unparsable: {e}", sc.name));
        let problems = powifi::traceinspect::validate(&parsed);
        assert!(
            problems.is_empty(),
            "scenario {} trace violates the event schema: {problems:?}",
            sc.name
        );
        assert!(
            !parsed.points[0].records.is_empty(),
            "scenario {} produced an empty trace",
            sc.name
        );
    }
}

#[test]
fn solo_broadcast_matches_golden() {
    check_scenario("solo_broadcast");
}

#[test]
fn contention_pair_matches_golden() {
    check_scenario("contention_pair");
}

#[test]
fn unicast_retry_matches_golden() {
    check_scenario("unicast_retry");
}

#[test]
fn injector_gated_matches_golden() {
    check_scenario("injector_gated");
}

#[test]
fn beacons_and_power_matches_golden() {
    check_scenario("beacons_and_power");
}

#[test]
fn collision_storm_matches_golden() {
    check_scenario("collision_storm");
}
