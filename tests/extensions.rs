//! Integration tests for the discussion-section extensions (§8): occupancy
//! capping, multi-router fleets, PDoS, silent-slot injection, multi-band
//! harvesting, and the backscatter synthesis.

use powifi::core::{
    install_fleet, spawn_attacker, spawn_capper, spawn_silent_injector, AttackConfig, CapperConfig,
    FleetMode, Router, RouterConfig, SilentSlotConfig,
};
use powifi::deploy::three_channel_world;
use powifi::harvest::MultibandHarvester;
use powifi::rf::{Dbm, IsmBand, Meters};
use powifi::sensors::{exposure_at, BackscatterTag, BENCH_DUTY};
use powifi::sim::{SimDuration, SimRng, SimTime};

#[test]
fn capper_composes_with_fleet() {
    let _conf = powifi::sim::conformance::check();
    // Two concurrent routers plus a capper on each: the *combined* channel
    // occupancy settles near the per-router targets without oscillating to
    // zero.
    let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_secs(1));
    let rng = SimRng::from_seed(42);
    let routers = install_fleet(
        &mut w,
        &mut q,
        &channels,
        2,
        RouterConfig::powifi(),
        FleetMode::Concurrent,
        &rng,
    );
    for r in &routers {
        spawn_capper(
            &mut q,
            r,
            CapperConfig {
                target: 0.5,
                ..CapperConfig::default()
            },
        );
    }
    let end = SimTime::from_secs(12);
    q.run_until(&mut w, end);
    for r in &routers {
        let (_, cum) = r.occupancy(&w.mac, end);
        assert!(cum > 0.15, "capper killed a router: {cum}");
        assert!(cum < 0.9, "capper failed to bite: {cum}");
    }
    powifi::sim::conformance::assert_clean("capper_composes_with_fleet");
}

#[test]
fn pdos_attack_starves_silent_slot_policy_too() {
    let _conf = powifi::sim::conformance::check();
    // Silent-slot injection is, by construction, even more vulnerable to a
    // carrier-sense attacker than the queue-threshold design.
    let occupancy = |attack: bool| {
        let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_secs(1));
        let rng = SimRng::from_seed(42);
        let r = Router::install(
            &mut w,
            &mut q,
            &channels,
            RouterConfig::with_scheme(powifi::core::Scheme::Baseline),
            &rng,
        );
        for iface in &r.ifaces {
            spawn_silent_injector(
                &mut q,
                iface.sta,
                SilentSlotConfig::default(),
                SimTime::ZERO,
            );
        }
        if attack {
            for &(_, m) in &channels {
                spawn_attacker(&mut w, &mut q, m, AttackConfig::saturating_low_rate(), &rng);
            }
        }
        let end = SimTime::from_secs(4);
        q.run_until(&mut w, end);
        r.occupancy(&w.mac, end).1
    };
    let clean = occupancy(false);
    let attacked = occupancy(true);
    assert!(clean > 1.0, "silent slot idle occupancy {clean}");
    assert!(attacked < 0.1 * clean, "clean {clean} attacked {attacked}");
    powifi::sim::conformance::assert_clean("pdos_attack_starves_silent_slot_policy_too");
}

#[test]
fn multiband_harvester_uses_what_its_bands_can_hear() {
    let _conf = powifi::sim::conformance::check();
    let all = MultibandHarvester::covering(&IsmBand::ALL);
    let only24 = MultibandHarvester::covering(&[IsmBand::Ism2400]);
    // Inputs on all bands at equal strength.
    let inputs: Vec<_> = IsmBand::ALL
        .into_iter()
        .flat_map(|b| b.power_channels().into_iter().map(|f| (f, Dbm(-11.0), 0.3)))
        .collect();
    let p_all = all.dc_power(&inputs).0;
    let p_24 = only24.dc_power(&inputs).0;
    assert!(p_all > p_24, "all {p_all} vs 2.4-only {p_24}");
    // And the 2.4-only harvester ignores the other bands entirely: feeding
    // it only out-of-band power yields zero.
    let foreign: Vec<_> = IsmBand::Ism900
        .power_channels()
        .into_iter()
        .chain(IsmBand::Ism5800.power_channels())
        .map(|f| (f, Dbm(-11.0), 0.3))
        .collect();
    assert_eq!(only24.dc_power(&foreign).0, 0.0);
    powifi::sim::conformance::assert_clean("multiband_harvester_uses_what_its_bands_can_hear");
}

#[test]
fn powered_tag_has_an_uplink_where_it_has_power() {
    let _conf = powifi::sim::conformance::check();
    // The §7 synthesis, end to end across crates: anywhere the harvester
    // nets its switching power AND the receiver is close, bits flow.
    let tag = BackscatterTag::prototype();
    let mut worked = 0;
    let mut dead = 0;
    for feet in [4.0, 8.0, 12.0, 20.0, 30.0, 40.0] {
        let exposure = exposure_at(feet, BENCH_DUTY, &[]);
        let direct = exposure[1].1;
        match tag.uplink_bitrate(&exposure, 2500.0, direct, Meters(1.0)) {
            Some(bps) => {
                assert!(bps > 0.0);
                worked += 1;
            }
            None => dead += 1,
        }
    }
    assert!(
        worked >= 3,
        "uplink should work through mid-range ({worked})"
    );
    assert!(
        dead >= 1,
        "uplink must die out of harvesting range ({dead})"
    );
    powifi::sim::conformance::assert_clean("powered_tag_has_an_uplink_where_it_has_power");
}

#[test]
fn fleet_of_four_keeps_every_channel_hot() {
    let _conf = powifi::sim::conformance::check();
    let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_secs(1));
    let rng = SimRng::from_seed(42);
    let routers = install_fleet(
        &mut w,
        &mut q,
        &channels,
        4,
        RouterConfig::powifi(),
        FleetMode::Concurrent,
        &rng,
    );
    let end = SimTime::from_secs(5);
    q.run_until(&mut w, end);
    // Combined per-channel occupancy from all routers.
    for (ci, &(_, m)) in channels.iter().enumerate() {
        let combined: f64 = routers
            .iter()
            .map(|r| w.mac.monitor(m).mean_of_station(r.ifaces[ci].sta, end))
            .sum();
        assert!(combined > 0.5, "channel {ci} combined occupancy {combined}");
    }
    powifi::sim::conformance::assert_clean("fleet_of_four_keeps_every_channel_hot");
}
