//! End-to-end integration tests spanning every crate: the router's power
//! traffic flows through the MAC, is measured by the monitor, propagates as
//! RF, and is harvested by the analog front end to run sensors — the full
//! PoWiFi pipeline of the paper.

use powifi::core::{Router, RouterConfig, Scheme};
use powifi::deploy::{build_office, three_channel_world, OfficeConfig};
use powifi::harvest::{Harvester, Store};
use powifi::mac::MacWorld;
use powifi::rf::{Db, Dbm, Meters, PathLoss, Transmitter};
use powifi::sensors::{exposure_at, sensor_pathloss, Camera, TemperatureSensor};
use powifi::sim::{SimDuration, SimRng, SimTime};

/// The headline end-to-end story: a PoWiFi router boots and cycles a
/// battery-free sensor that a stock (Baseline) router cannot even start.
#[test]
fn powifi_powers_what_a_stock_router_cannot() {
    let _conf = powifi::sim::conformance::check();
    let run = |scheme: Scheme| {
        let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_millis(500));
        let rng = SimRng::from_seed(42);
        let r = Router::install(
            &mut w,
            &mut q,
            &channels,
            RouterConfig::with_scheme(scheme),
            &rng,
        );
        let end = SimTime::from_secs(20);
        q.run_until(&mut w, end);
        // Mean per-channel duty factors drive the harvester.
        let duty = r.duty_series(&w.mac, end);
        let mean_duty: f64 = duty
            .iter()
            .map(|d| d.iter().sum::<f64>() / d.len() as f64)
            .sum::<f64>()
            / 3.0;
        let exposure = exposure_at(10.0, mean_duty, &[]);
        // Charging the 100 µF store to 2.4 V (≈290 µJ) at the ~5 µW the
        // PoWiFi router delivers at 10 ft takes a bit over a minute.
        let mut h = Harvester::battery_free_sensor();
        for _ in 0..180_000 {
            h.advance_duty(SimDuration::from_millis(1), &exposure);
            if h.output_on() {
                break;
            }
        }
        h.output_on()
    };
    assert!(
        !run(Scheme::Baseline),
        "stock router must NOT boot the sensor (§2)"
    );
    assert!(
        run(Scheme::PoWiFi),
        "PoWiFi must boot the sensor at 10 ft (§5.1)"
    );
    powifi::sim::conformance::assert_clean("powifi_powers_what_a_stock_router_cannot");
}

/// Same seed ⇒ byte-identical occupancy series; different seed ⇒ different.
#[test]
fn simulations_are_deterministic_in_the_seed() {
    let _conf = powifi::sim::conformance::check();
    let occupancies = |seed: u64| {
        let (mut w, mut q, s) = build_office(seed, Scheme::PoWiFi, OfficeConfig::default());
        let end = SimTime::from_secs(4);
        q.run_until(&mut w, end);
        s.router.occupancy_series(&w.mac, end)
    };
    let a = occupancies(7);
    let b = occupancies(7);
    let c = occupancies(8);
    assert_eq!(a, b, "same seed must reproduce exactly");
    assert_ne!(a, c, "different seeds must diverge");
    powifi::sim::conformance::assert_clean("simulations_are_deterministic_in_the_seed");
}

/// The four schemes rank as the paper's Fig. 6 requires, end to end.
#[test]
fn scheme_ranking_matches_fig6() {
    let _conf = powifi::sim::conformance::check();
    use powifi::deploy::udp_experiment;
    let t = |s| udp_experiment(s, 25.0, 42, 4).throughput_mbps;
    let baseline = t(Scheme::Baseline);
    let powifi = t(Scheme::PoWiFi);
    let noqueue = t(Scheme::NoQueue);
    let blind = t(Scheme::BlindUdp);
    assert!(
        powifi > 0.85 * baseline,
        "PoWiFi {powifi} vs baseline {baseline}"
    );
    assert!(
        noqueue < 0.8 * baseline && noqueue > 0.3 * baseline,
        "NoQueue {noqueue}"
    );
    assert!(blind < 0.2 * baseline, "BlindUDP {blind}");
    powifi::sim::conformance::assert_clean("scheme_ranking_matches_fig6");
}

/// TCP download completes over a PoWiFi-loaded channel (client experience
/// is preserved, not just average throughput).
#[test]
fn tcp_transfer_completes_under_powifi() {
    let _conf = powifi::sim::conformance::check();
    use powifi::deploy::SimWorld;
    use powifi::net::{start_tcp_flow, tcp_push};
    let (mut w, mut q, s) = build_office(42, Scheme::PoWiFi, OfficeConfig::default());
    let flow = start_tcp_flow(&mut w, s.router.client_iface().sta, s.client);
    q.schedule_at(SimTime::from_millis(100), move |w: &mut SimWorld, q| {
        tcp_push(w, q, flow, 2_000_000);
    });
    q.run_until(&mut w, SimTime::from_secs(15));
    let f = w.net.tcp(flow);
    assert!(
        f.completed_at.is_some(),
        "2 MB transfer did not finish in 15 s"
    );
    assert!(f.mean_mbps() > 2.0, "throughput {}", f.mean_mbps());
    powifi::sim::conformance::assert_clean("tcp_transfer_completes_under_powifi");
}

/// The camera's battery-free pipeline banks real frames from router duty:
/// event-level harvester integration, not the closed-form shortcut.
#[test]
fn camera_banks_frames_from_router_duty() {
    let _conf = powifi::sim::conformance::check();
    let (mut w, mut q, channels) = three_channel_world(42, SimDuration::from_millis(500));
    let rng = SimRng::from_seed(42);
    let r = Router::install(&mut w, &mut q, &channels, RouterConfig::powifi(), &rng);
    let end = SimTime::from_secs(10);
    q.run_until(&mut w, end);
    let duty = r.duty_series(&w.mac, end);
    let mean_duty: f64 = duty
        .iter()
        .map(|d| d.iter().sum::<f64>() / d.len() as f64)
        .sum::<f64>()
        / 3.0;
    // 5 ft: strong exposure.
    let exposure = exposure_at(5.0, mean_duty, &[]);
    let cam = Camera::battery_free();
    let t = cam
        .inter_frame_secs(&exposure)
        .expect("camera in range at 5 ft");
    // Fig. 13 free-space order of magnitude: minutes to tens of minutes.
    assert!(t > 60.0 && t < 7200.0, "inter-frame {t} s");
    powifi::sim::conformance::assert_clean("camera_banks_frames_from_router_duty");
}

/// Link-budget sanity across crates: the calibrated path loss puts the
/// battery-free sensitivity threshold at the paper's ~20 ft range.
#[test]
fn calibrated_range_endpoints_hold() {
    let _conf = powifi::sim::conformance::check();
    let model = sensor_pathloss();
    let tx = Transmitter::powifi_prototype();
    let rx = |ft: f64| {
        model.received(
            tx.eirp(),
            Db(2.0),
            powifi::rf::WifiChannel::CH6.center(),
            Meters::from_feet(ft),
        )
    };
    assert!(rx(18.0).0 > -17.8, "too weak at 18 ft: {}", rx(18.0).0);
    assert!(rx(24.0).0 < -17.8, "too strong at 24 ft: {}", rx(24.0).0);
    assert!(
        rx(30.0).0 < -19.3,
        "recharging threshold extends past 30 ft"
    );
    powifi::sim::conformance::assert_clean("calibrated_range_endpoints_hold");
}

/// The temperature sensor's energy book-keeping is consistent between the
/// closed-form rate and an explicit harvester integration.
#[test]
fn closed_form_and_integrated_rates_agree() {
    let _conf = powifi::sim::conformance::check();
    let exposure = exposure_at(8.0, 0.3, &[]);
    let sensor = TemperatureSensor::battery_recharging();
    let closed = sensor.update_rate(&exposure);
    // Integrate for an hour and divide harvested energy by per-read energy.
    let mut h = Harvester::recharging(powifi::harvest::Battery::nimh_aaa());
    for _ in 0..3600 {
        h.advance_duty(SimDuration::from_secs(1), &exposure);
    }
    let integrated = h.harvested.0 / 3600.0 / powifi::sensors::READ_ENERGY.0;
    let ratio = closed / integrated;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "closed {closed} integrated {integrated}"
    );
    powifi::sim::conformance::assert_clean("closed_form_and_integrated_rates_agree");
}

/// Store accounting: recharging stores accumulate exactly what the
/// harvester reports having delivered.
#[test]
fn battery_bookkeeping_is_consistent() {
    let _conf = powifi::sim::conformance::check();
    let exposure = exposure_at(6.0, 0.3, &[]);
    let mut h = Harvester::recharging(powifi::harvest::Battery::liion_coin());
    let Store::Batt(before) = *h.store() else {
        unreachable!()
    };
    for _ in 0..600 {
        h.advance_duty(SimDuration::from_secs(1), &exposure);
    }
    let Store::Batt(after) = *h.store() else {
        unreachable!()
    };
    let gained_j = (after.charge_mah - before.charge_mah) * 3.6 * after.volts / after.charge_eff;
    assert!(
        (gained_j - h.harvested.0).abs() < 1e-9 + 0.01 * h.harvested.0,
        "store gained {gained_j} J vs harvested {} J",
        h.harvested.0
    );
    powifi::sim::conformance::assert_clean("battery_bookkeeping_is_consistent");
}

/// Cross-experiment occupancy sanity: the router's reported per-channel
/// occupancy can never exceed the monitor's all-stations occupancy.
#[test]
fn router_occupancy_bounded_by_channel_occupancy() {
    let _conf = powifi::sim::conformance::check();
    let (mut w, mut q, s) = build_office(11, Scheme::PoWiFi, OfficeConfig::default());
    let end = SimTime::from_secs(5);
    q.run_until(&mut w, end);
    for iface in &s.router.ifaces {
        let mine = w
            .mac()
            .monitor(iface.medium)
            .mean_of_station(iface.sta, end);
        let all: f64 = w
            .mac()
            .monitor(iface.medium)
            .all_series(end)
            .iter()
            .sum::<f64>()
            / end.as_secs_f64();
        assert!(mine <= all + 1e-9, "router {mine} > channel {all}");
    }
    powifi::sim::conformance::assert_clean("router_occupancy_bounded_by_channel_occupancy");
}

/// The §2 voltage-trace result reproduces at the received power our own
/// path-loss model predicts (not a hand-picked number).
#[test]
fn fig1_trace_under_predicted_power_stays_subthreshold() {
    let _conf = powifi::sim::conformance::check();
    use powifi::harvest::{rectifier_trace, summarize, Rectifier, RectifierNode};
    use powifi::sim::PowerEnvelope;
    let model = sensor_pathloss();
    let rx: Dbm = model.received(
        Transmitter::asus_stock().eirp(),
        Db(2.0),
        powifi::rf::WifiChannel::CH6.center(),
        Meters::from_feet(10.0),
    );
    // 30 % duty bursts, ~500 µs packets.
    let mut env = PowerEnvelope::new();
    let mut t = 0u64;
    while t < 50_000 {
        env.set(SimTime::from_micros(t), 1.0);
        env.set(SimTime::from_micros(t + 500), 0.0);
        t += 1667;
    }
    let trace = rectifier_trace(
        &[(&env, rx)],
        &Rectifier::battery_free(),
        RectifierNode::fig1_default(),
        SimTime::ZERO,
        SimTime::from_millis(50),
        SimDuration::from_micros(10),
    );
    let s = summarize(&trace, 0.30);
    assert!(!s.crossed, "peak {} V at rx {}", s.peak_volts, rx);
    assert!(s.peak_volts > 0.05, "no harvesting at all at rx {rx}");
    powifi::sim::conformance::assert_clean("fig1_trace_under_predicted_power_stays_subthreshold");
}
