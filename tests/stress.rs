//! Randomized scenario stress tests: build arbitrary worlds — any mix of
//! routers, schemes, clients, flows, attackers and link quality — run them,
//! and check the invariants that must hold in *every* PoWiFi simulation.

use powifi::core::{Router, RouterConfig, Scheme};
use powifi::deploy::{three_channel_world, SimWorld};
use powifi::mac::{MacWorld, RateController, StationId};
use powifi::net::{start_tcp_flow, start_udp_flow, tcp_push, Flow};
use powifi::rf::{Bitrate, Db};
use powifi::sim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    scheme: u8,
    clients: usize,
    udp_flows: usize,
    tcp_flows: usize,
    corruption: f64,
    weak_links: bool,
    secs: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u64..10_000,
        0u8..4,
        1usize..5,
        0usize..3,
        0usize..3,
        0.0f64..0.3,
        prop::bool::ANY,
        2u64..5,
    )
        .prop_map(
            |(seed, scheme, clients, udp_flows, tcp_flows, corruption, weak_links, secs)| {
                Scenario {
                    seed,
                    scheme,
                    clients,
                    udp_flows,
                    tcp_flows,
                    corruption,
                    weak_links,
                    secs,
                }
            },
        )
}

fn run_scenario(sc: &Scenario) -> (SimWorld, Router, Vec<u32>, SimTime) {
    let (mut w, mut q, channels) = three_channel_world(sc.seed, SimDuration::from_secs(1));
    let scheme = match sc.scheme {
        0 => Scheme::Baseline,
        1 => Scheme::PoWiFi,
        2 => Scheme::NoQueue,
        _ => Scheme::EqualShare(Bitrate::G24),
    };
    let rng = SimRng::from_seed(sc.seed);
    let router = Router::install(
        &mut w,
        &mut q,
        &channels,
        RouterConfig::with_scheme(scheme),
        &rng,
    );
    let router_sta = router.client_iface().sta;
    let m = channels[0].1;
    if sc.corruption > 0.0 {
        w.mac.set_corruption(m, sc.corruption);
    }
    let clients: Vec<StationId> = (0..sc.clients)
        .map(|_| w.mac.add_station(m, RateController::minstrel(Bitrate::G54)))
        .collect();
    if sc.weak_links {
        for &c in &clients {
            w.mac.set_link_snr(router_sta, c, Db(23.0));
            w.mac.set_link_snr(c, router_sta, Db(23.0));
        }
    }
    let end = SimTime::from_secs(sc.secs);
    let mut flows = Vec::new();
    for i in 0..sc.udp_flows {
        let dst = clients[i % clients.len()];
        flows.push(start_udp_flow(
            &mut w,
            &mut q,
            router_sta,
            dst,
            5.0 + 7.0 * i as f64,
            SimTime::from_millis(10),
            end,
        ));
    }
    for i in 0..sc.tcp_flows {
        let dst = clients[i % clients.len()];
        let flow = start_tcp_flow(&mut w, router_sta, dst);
        flows.push(flow);
        q.schedule_at(SimTime::from_millis(20), move |w: &mut SimWorld, q| {
            tcp_push(w, q, flow, 1_000_000);
        });
    }
    q.run_until(&mut w, end);
    (w, router, flows, end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No panic, and the physical conservation laws hold: each channel's
    /// total occupancy ≤ 1 (airtime cannot be overbooked), the router's
    /// share ≤ the channel total, queues respect their caps, and UDP sinks
    /// never receive more than was offered.
    #[test]
    fn arbitrary_scenarios_respect_conservation_laws(sc in scenario_strategy()) {
        let _conf = powifi::sim::conformance::check();
        let (w, router, flows, end) = run_scenario(&sc);
        for iface in &router.ifaces {
            let mon = w.mac().monitor(iface.medium);
            let all: f64 =
                mon.all_series(end).iter().sum::<f64>() / end.as_secs_f64();
            let mine = mon.mean_of_station(iface.sta, end);
            // tshark metric excludes preamble/IFS, so < 1.0 with margin.
            prop_assert!(all <= 1.0, "channel overbooked: {all}");
            prop_assert!(mine <= all + 1e-9, "router {mine} > channel {all}");
        }
        for &flow in &flows {
            match w.net.flow(flow) {
                Some(Flow::Udp(u)) => {
                    prop_assert!(u.packets <= u.max_seq, "sink got more than sent");
                    prop_assert!(u.loss() >= 0.0 && u.loss() <= 1.0);
                }
                Some(Flow::Tcp(t)) => {
                    // Goodput can never exceed channel capacity.
                    prop_assert!(t.mean_mbps() < 32.0, "tcp {} Mbps", t.mean_mbps());
                }
                None => prop_assert!(false, "flow vanished"),
            }
        }
        // Injector accounting: sends + drops == ticks attempted (no frames
        // invented or lost by the bookkeeping).
        let (sent, _dropped) = router.injector_totals();
        if sc.scheme == 0 {
            prop_assert_eq!(sent, 0, "Baseline must not inject");
        }
        powifi::sim::conformance::assert_clean("arbitrary_scenarios_respect_conservation_laws");
    }

    /// Every scenario is exactly reproducible from its seed.
    #[test]
    fn arbitrary_scenarios_are_reproducible(sc in scenario_strategy()) {
        let _conf = powifi::sim::conformance::check();
        let (w1, r1, _, end) = run_scenario(&sc);
        let (w2, r2, _, _) = run_scenario(&sc);
        let occ1 = r1.occupancy(&w1.mac, end);
        let occ2 = r2.occupancy(&w2.mac, end);
        prop_assert_eq!(occ1, occ2);
        powifi::sim::conformance::assert_clean("arbitrary_scenarios_are_reproducible");
    }
}
